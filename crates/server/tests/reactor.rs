//! End-to-end tests for the epoll-backed event-driven front-end:
//! keep-alive reuse, pipelining, idle and slowloris timeouts,
//! half-closed peers, per-request shedding, connection caps, and the
//! `Connection: close` contract on every close path.

#![cfg(unix)]

use elinda_endpoint::EndpointConfig;
use elinda_server::{percent_encode, serve, ServerConfig, ServerState};
use elinda_store::TripleStore;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

const QUERY: &str = "SELECT ?s WHERE { ?s a <http://e/C> }";

fn test_state() -> Arc<ServerState> {
    let store = TripleStore::from_turtle(
        "@prefix ex: <http://e/> .
         ex:a a ex:C . ex:b a ex:C . ex:c a ex:C .
         ex:a ex:knows ex:b .",
    )
    .unwrap();
    Arc::new(ServerState::new(Arc::new(store), EndpointConfig::full()))
}

fn reactor_config() -> ServerConfig {
    ServerConfig {
        event_loop: true,
        ..ServerConfig::default()
    }
}

/// A client that keeps one socket open across requests and reads
/// exactly one `Content-Length`-framed response at a time, leaving
/// pipelined followers buffered.
struct KeepAliveClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

type ParsedResponse = (u16, Vec<(String, String)>, Vec<u8>);

impl KeepAliveClient {
    fn connect(addr: SocketAddr) -> KeepAliveClient {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        KeepAliveClient {
            stream,
            buf: Vec::new(),
        }
    }

    fn send(&mut self, raw: &str) {
        self.stream.write_all(raw.as_bytes()).expect("send request");
    }

    fn get(&mut self, target: &str) {
        self.send(&format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n"));
    }

    /// Read one full response off the socket.
    fn read_response(&mut self) -> ParsedResponse {
        let header_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            self.fill("response headers");
        };
        let head = std::str::from_utf8(&self.buf[..header_end])
            .unwrap()
            .to_string();
        let mut lines = head.split("\r\n");
        let status: u16 = lines
            .next()
            .unwrap()
            .split(' ')
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        let headers: Vec<(String, String)> = lines
            .map(|line| {
                let (name, value) = line.split_once(':').unwrap();
                (name.trim().to_ascii_lowercase(), value.trim().to_string())
            })
            .collect();
        let length: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .expect("content-length on every response")
            .1
            .parse()
            .unwrap();
        while self.buf.len() < header_end + 4 + length {
            self.fill("response body");
        }
        let body = self.buf[header_end + 4..header_end + 4 + length].to_vec();
        self.buf.drain(..header_end + 4 + length);
        (status, headers, body)
    }

    fn fill(&mut self, waiting_for: &str) {
        let mut scratch = [0u8; 16 * 1024];
        match self.stream.read(&mut scratch) {
            Ok(0) => panic!("connection closed while waiting for {waiting_for}"),
            Ok(n) => self.buf.extend_from_slice(&scratch[..n]),
            Err(e) => panic!("read error while waiting for {waiting_for}: {e}"),
        }
    }

    /// Assert the server closes the connection (EOF) without further
    /// payload bytes.
    fn expect_eof(&mut self) {
        let mut scratch = [0u8; 1024];
        match self.stream.read(&mut scratch) {
            Ok(0) => {}
            Ok(n) => panic!(
                "expected EOF, got {n} more bytes: {:?}",
                String::from_utf8_lossy(&scratch[..n])
            ),
            Err(e) => panic!("expected EOF, got read error: {e}"),
        }
    }
}

fn connection_header(headers: &[(String, String)]) -> &str {
    headers
        .iter()
        .find(|(n, _)| n == "connection")
        .map(|(_, v)| v.as_str())
        .expect("Connection header on every response")
}

#[test]
fn keep_alive_connection_serves_sequential_requests() {
    let handle = serve(test_state(), "127.0.0.1:0", reactor_config()).unwrap();
    let mut client = KeepAliveClient::connect(handle.local_addr());

    for round in 0..3 {
        client.get("/health");
        let (status, headers, body) = client.read_response();
        assert_eq!(status, 200, "round {round}");
        assert_eq!(body, b"ok\n");
        assert_eq!(connection_header(&headers), "keep-alive");
    }
    client.get(&format!("/sparql?query={}", percent_encode(QUERY)));
    let (status, headers, body) = client.read_response();
    assert_eq!(status, 200);
    assert!(String::from_utf8_lossy(&body).contains("bindings"));
    assert_eq!(connection_header(&headers), "keep-alive");

    // All five requests rode one admitted connection.
    assert_eq!(handle.counters().accepted, 1);
    assert_eq!(handle.counters().served, 4);

    // An explicit `Connection: close` request gets a closing response
    // and then EOF.
    client.send("GET /health HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    let (status, headers, _) = client.read_response();
    assert_eq!(status, 200);
    assert_eq!(connection_header(&headers), "close");
    client.expect_eof();
    handle.shutdown();
}

#[test]
fn pipelined_requests_get_ordered_responses_on_one_socket() {
    let handle = serve(test_state(), "127.0.0.1:0", reactor_config()).unwrap();
    let mut client = KeepAliveClient::connect(handle.local_addr());

    // Three requests in one write; responses must come back in order.
    client.send(&format!(
        "GET /health HTTP/1.1\r\nHost: t\r\n\r\n\
         GET /sparql?query={} HTTP/1.1\r\nHost: t\r\n\r\n\
         GET /nope HTTP/1.1\r\nHost: t\r\n\r\n",
        percent_encode(QUERY)
    ));

    let (status, _, body) = client.read_response();
    assert_eq!((status, body.as_slice()), (200, b"ok\n".as_slice()));
    let (status, _, body) = client.read_response();
    assert_eq!(status, 200);
    assert!(String::from_utf8_lossy(&body).contains("bindings"));
    let (status, _, _) = client.read_response();
    assert_eq!(status, 404);

    assert_eq!(handle.counters().accepted, 1);
    assert_eq!(handle.counters().served, 3);
    handle.shutdown();
}

#[test]
fn many_pipelined_requests_all_answered_in_order() {
    let handle = serve(test_state(), "127.0.0.1:0", reactor_config()).unwrap();
    let mut client = KeepAliveClient::connect(handle.local_addr());

    let n = 32;
    let mut batch = String::new();
    for i in 0..n {
        // Distinct targets so an out-of-order response is detectable:
        // even requests hit /health, odd ones a distinct 404 path.
        if i % 2 == 0 {
            batch.push_str("GET /health HTTP/1.1\r\nHost: t\r\n\r\n");
        } else {
            batch.push_str(&format!("GET /missing-{i} HTTP/1.1\r\nHost: t\r\n\r\n"));
        }
    }
    client.send(&batch);
    for i in 0..n {
        let (status, _, _) = client.read_response();
        let expected = if i % 2 == 0 { 200 } else { 404 };
        assert_eq!(status, expected, "response {i} out of order");
    }
    assert_eq!(handle.counters().served, n as u64);
    handle.shutdown();
}

#[test]
fn idle_keep_alive_connection_is_closed_after_the_timeout() {
    let handle = serve(
        test_state(),
        "127.0.0.1:0",
        ServerConfig {
            keep_alive_timeout: Duration::from_millis(200),
            ..reactor_config()
        },
    )
    .unwrap();
    let addr = handle.local_addr();
    let mut client = KeepAliveClient::connect(addr);

    client.get("/health");
    let (status, headers, _) = client.read_response();
    assert_eq!(status, 200);
    assert_eq!(connection_header(&headers), "keep-alive");

    // Idle past the timeout: the server closes silently (no 408 — no
    // request was in progress).
    client.expect_eof();

    // The close is visible on the idle-closed metric.
    let mut probe = KeepAliveClient::connect(addr);
    probe.get("/metrics");
    let (status, _, body) = probe.read_response();
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("elinda_server_idle_closed_total 1"), "{text}");
    assert!(text.contains("elinda_server_event_loop 1"), "{text}");
    handle.shutdown();
}

#[test]
fn slowloris_trickler_gets_408_and_does_not_block_other_clients() {
    let handle = serve(
        test_state(),
        "127.0.0.1:0",
        ServerConfig {
            read_timeout: Duration::from_millis(400),
            drain_timeout: Duration::from_millis(50),
            ..reactor_config()
        },
    )
    .unwrap();
    let addr = handle.local_addr();

    // The trickler sends a byte every 100 ms — each arrival refreshes a
    // naive idle clock, but the whole-request deadline runs from the
    // first byte.
    let mut trickler = KeepAliveClient::connect(addr);
    let started = Instant::now();
    let trickle = thread::spawn(move || {
        for b in [b'G', b'E', b'T', b' ', b'/', b'h'] {
            if trickler.stream.write_all(&[b]).is_err() {
                break; // server already rejected us
            }
            thread::sleep(Duration::from_millis(100));
        }
        trickler
    });

    // Meanwhile well-behaved clients are served promptly.
    for _ in 0..3 {
        let mut ok = KeepAliveClient::connect(addr);
        ok.get("/health");
        let (status, _, _) = ok.read_response();
        assert_eq!(status, 200);
    }

    let mut trickler = trickle.join().unwrap();
    let (status, headers, body) = trickler.read_response();
    assert_eq!(status, 408, "{}", String::from_utf8_lossy(&body));
    assert!(
        String::from_utf8_lossy(&body).contains("timed out"),
        "{}",
        String::from_utf8_lossy(&body)
    );
    // A rejected request always closes, and says so.
    assert_eq!(connection_header(&headers), "close");
    trickler.expect_eof();
    // The deadline ran from the first byte: the 408 landed well before
    // a per-byte-reset clock would have allowed.
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "408 took {:?}",
        started.elapsed()
    );
    handle.shutdown();
}

#[test]
fn half_closed_peer_still_receives_its_response() {
    let handle = serve(test_state(), "127.0.0.1:0", reactor_config()).unwrap();
    let mut client = KeepAliveClient::connect(handle.local_addr());

    // Full request, then FIN: the server must still answer (and close,
    // since nothing further can arrive).
    client.get(&format!("/sparql?query={}", percent_encode(QUERY)));
    client.stream.shutdown(Shutdown::Write).unwrap();
    let (status, _, body) = client.read_response();
    assert_eq!(status, 200);
    assert!(String::from_utf8_lossy(&body).contains("bindings"));
    client.expect_eof();
    handle.shutdown();
}

#[test]
fn half_closed_peer_with_partial_request_is_dropped_silently() {
    let handle = serve(test_state(), "127.0.0.1:0", reactor_config()).unwrap();
    let mut client = KeepAliveClient::connect(handle.local_addr());

    // EOF before a complete request: the blocking front-end's "client
    // vanished" contract — no response bytes at all.
    client.send("GET /hea");
    client.stream.shutdown(Shutdown::Write).unwrap();
    client.expect_eof();
    assert_eq!(handle.counters().served, 0);
    handle.shutdown();
}

#[test]
fn request_cap_closes_the_connection_with_connection_close() {
    let handle = serve(
        test_state(),
        "127.0.0.1:0",
        ServerConfig {
            max_requests_per_conn: 2,
            ..reactor_config()
        },
    )
    .unwrap();
    let mut client = KeepAliveClient::connect(handle.local_addr());

    client.get("/health");
    let (_, headers, _) = client.read_response();
    assert_eq!(connection_header(&headers), "keep-alive");

    client.get("/health");
    let (_, headers, _) = client.read_response();
    assert_eq!(connection_header(&headers), "close");
    client.expect_eof();
    handle.shutdown();
}

#[test]
fn queue_overflow_sheds_per_request_with_503() {
    let handle = serve(
        test_state(),
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            queue_depth: 1,
            handler_delay: Duration::from_millis(150),
            ..reactor_config()
        },
    )
    .unwrap();
    let addr = handle.local_addr();

    let clients: Vec<_> = (0..12)
        .map(|_| {
            thread::spawn(move || {
                let mut client = KeepAliveClient::connect(addr);
                client.get(&format!("/sparql?query={}", percent_encode(QUERY)));
                let (status, headers, body) = client.read_response();
                if status == 503 {
                    // The shed is byte-compatible with the blocking
                    // front-end's 503 and always closes.
                    assert_eq!(body, b"server overloaded, retry later\n");
                    assert_eq!(connection_header(&headers), "close");
                    assert!(headers.iter().any(|(n, v)| n == "retry-after" && v == "1"));
                    client.expect_eof();
                }
                status
            })
        })
        .collect();
    let statuses: Vec<u16> = clients.into_iter().map(|c| c.join().unwrap()).collect();

    assert!(statuses.contains(&503), "no request was shed: {statuses:?}");
    assert!(
        statuses.contains(&200),
        "no request succeeded: {statuses:?}"
    );
    assert!(statuses.iter().all(|s| matches!(s, 200 | 503)));
    assert!(handle.counters().shed >= 1);
    handle.shutdown();
}

#[test]
fn connection_cap_sheds_new_connections_with_503() {
    let handle = serve(
        test_state(),
        "127.0.0.1:0",
        ServerConfig {
            max_connections: 2,
            ..reactor_config()
        },
    )
    .unwrap();
    let addr = handle.local_addr();

    // Fill the cap with two live connections (reading a response proves
    // each is fully admitted, not still in the accept queue).
    let mut first = KeepAliveClient::connect(addr);
    first.get("/health");
    assert_eq!(first.read_response().0, 200);
    let mut second = KeepAliveClient::connect(addr);
    second.get("/health");
    assert_eq!(second.read_response().0, 200);

    // The third connection is turned away at the door.
    let mut third = KeepAliveClient::connect(addr);
    let (status, headers, body) = third.read_response();
    assert_eq!(status, 503);
    assert_eq!(body, b"server overloaded, retry later\n");
    assert_eq!(connection_header(&headers), "close");
    third.expect_eof();
    assert!(handle.counters().shed >= 1);

    // Freeing a slot re-opens the door.
    drop(first);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let mut retry = KeepAliveClient::connect(addr);
        retry.get("/health");
        let (status, _, _) = retry.read_response();
        if status == 200 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "slot never freed after closing a connection"
        );
        thread::sleep(Duration::from_millis(25));
    }
    handle.shutdown();
}

#[test]
fn rejected_requests_close_with_connection_close_and_drain_first() {
    let handle = serve(
        test_state(),
        "127.0.0.1:0",
        ServerConfig {
            drain_timeout: Duration::from_millis(100),
            ..reactor_config()
        },
    )
    .unwrap();
    let addr = handle.local_addr();

    // Malformed request line → 400, Connection: close, EOF.
    let mut bad = KeepAliveClient::connect(addr);
    bad.send("NONSENSE\r\n\r\n");
    let (status, headers, _) = bad.read_response();
    assert_eq!(status, 400);
    assert_eq!(connection_header(&headers), "close");
    bad.expect_eof();

    // Oversized declared body → 413 even though the body never arrives
    // (the drain deadline bounds the wait), Connection: close, EOF.
    let mut big = KeepAliveClient::connect(addr);
    big.send(&format!(
        "POST /sparql HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
        elinda_server::http::MAX_BODY + 1
    ));
    let (status, headers, body) = big.read_response();
    assert_eq!(status, 413, "{}", String::from_utf8_lossy(&body));
    assert!(String::from_utf8_lossy(&body).contains("too large"));
    assert_eq!(connection_header(&headers), "close");
    big.expect_eof();
    handle.shutdown();
}

#[test]
fn shutdown_drains_in_flight_requests_and_closes_idle_connections() {
    let handle = serve(
        test_state(),
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            handler_delay: Duration::from_millis(100),
            ..reactor_config()
        },
    )
    .unwrap();
    let addr = handle.local_addr();

    // One idle keep-alive connection that must be dropped on shutdown.
    let mut idle = KeepAliveClient::connect(addr);
    idle.get("/health");
    assert_eq!(idle.read_response().0, 200);

    // Six slow in-flight requests that must all complete.
    let clients: Vec<_> = (0..6)
        .map(|_| {
            thread::spawn(move || {
                let mut client = KeepAliveClient::connect(addr);
                client.get(&format!("/sparql?query={}", percent_encode(QUERY)));
                client.read_response()
            })
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.counters().accepted < 7 {
        assert!(Instant::now() < deadline, "requests were never admitted");
        thread::sleep(Duration::from_millis(5));
    }
    handle.shutdown();

    for client in clients {
        let (status, headers, body) = client.join().unwrap();
        assert_eq!(status, 200);
        assert!(!body.is_empty());
        // Responses written during shutdown must tell the client the
        // connection is done.
        assert_eq!(connection_header(&headers), "close");
    }
    // The idle connection was dropped, and the listener is gone.
    idle.expect_eof();
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener still accepting after shutdown"
    );
}

#[test]
fn five_thousand_idle_keep_alive_connections_with_a_fixed_worker_pool() {
    if elinda_server::sys::raise_nofile(20_000).map_or(true, |limit| limit < 12_000) {
        eprintln!("skipping: cannot raise RLIMIT_NOFILE high enough");
        return;
    }
    let handle = serve(
        test_state(),
        "127.0.0.1:0",
        ServerConfig {
            workers: 4,
            max_connections: 8192,
            keep_alive_timeout: Duration::from_secs(120),
            ..reactor_config()
        },
    )
    .unwrap();
    let addr = handle.local_addr();

    const CONNS: usize = 5000;
    let mut idle: Vec<TcpStream> = Vec::with_capacity(CONNS);
    for i in 0..CONNS {
        match TcpStream::connect(addr) {
            Ok(stream) => idle.push(stream),
            Err(e) => panic!("connect {i} failed: {e}"),
        }
    }

    // Wait until the reactor has registered all of them.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let mut probe = KeepAliveClient::connect(addr);
        probe.get("/metrics");
        let (status, _, body) = probe.read_response();
        assert_eq!(status, 200);
        let text = String::from_utf8(body).unwrap();
        let open: u64 = text
            .lines()
            .find_map(|l| l.strip_prefix("elinda_server_connections_open "))
            .expect("connections_open gauge")
            .parse()
            .unwrap();
        if open >= CONNS as u64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "only {open}/{CONNS} connections registered"
        );
        thread::sleep(Duration::from_millis(50));
    }

    // With 5k idle sockets parked on the reactor, the fixed pool still
    // serves promptly — including on a sample of the idle connections
    // themselves.
    for i in (0..CONNS).step_by(500) {
        let stream = idle[i].try_clone().unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut client = KeepAliveClient {
            stream,
            buf: Vec::new(),
        };
        client.get("/health");
        let (status, _, body) = client.read_response();
        assert_eq!(status, 200, "idle connection {i} failed to serve");
        assert_eq!(body, b"ok\n");
    }
    drop(idle);
    handle.shutdown();
}

/// Regression (event loop): the 408 path must drain buffered request
/// bytes before responding, and honor the configured drain timeout —
/// the response arrives at roughly `read_timeout + drain_timeout`, not
/// at `read_timeout`, and survives intact.
#[test]
fn reactor_408_after_drain_honors_the_configured_drain_timeout() {
    let read_timeout = Duration::from_millis(200);
    let drain_timeout = Duration::from_millis(600);
    let handle = serve(
        test_state(),
        "127.0.0.1:0",
        ServerConfig {
            read_timeout,
            drain_timeout,
            ..reactor_config()
        },
    )
    .unwrap();
    let mut client = KeepAliveClient::connect(handle.local_addr());

    let started = Instant::now();
    client.send("GET /spar");
    let (status, headers, body) = client.read_response();
    let elapsed = started.elapsed();
    assert_eq!(status, 408);
    assert_eq!(body, b"request timed out waiting for the client\n");
    assert_eq!(connection_header(&headers), "close");
    assert!(
        elapsed >= read_timeout + drain_timeout - Duration::from_millis(50),
        "408 arrived after {elapsed:?}: the drain window was skipped"
    );
    client.expect_eof();
    handle.shutdown();
}

#[test]
fn zero_byte_connection_closes_silently_at_the_idle_timeout() {
    let handle = serve(
        test_state(),
        "127.0.0.1:0",
        ServerConfig {
            keep_alive_timeout: Duration::from_millis(200),
            read_timeout: Duration::from_millis(400),
            ..reactor_config()
        },
    )
    .unwrap();
    let mut client = KeepAliveClient::connect(handle.local_addr());
    // Never send a byte: no request is in progress, so the idle clock
    // (not the 408 request deadline) applies and the close is silent.
    client.expect_eof();
    handle.shutdown();
}

#[test]
fn serve_fails_fast_when_event_loop_is_unsupported() {
    // On targets with epoll the reactor must come up; the stub target
    // must fail `serve` synchronously instead of dying in a thread.
    match serve(test_state(), "127.0.0.1:0", reactor_config()) {
        Ok(handle) => {
            assert!(
                elinda_server::sys::supported(),
                "event loop came up without an epoll backend"
            );
            handle.shutdown();
        }
        Err(e) => {
            assert!(!elinda_server::sys::supported(), "{e}");
            assert_eq!(e.kind(), ErrorKind::Unsupported);
        }
    }
}
