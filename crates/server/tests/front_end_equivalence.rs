//! Differential suite: the event-driven front-end must be
//! byte-identical on the wire to the blocking front-end for every
//! route and every router tier.
//!
//! Two servers with identical stores and endpoint configurations run
//! the same request script; every raw response is compared byte for
//! byte (responses whose bodies are inherently run-dependent, like
//! `/metrics` timings, are compared on the status line only). Clients
//! send `Connection: close` and a fixed `X-Request-Id` so neither
//! keep-alive framing nor generated ids can differ.

#![cfg(unix)]

use elinda_endpoint::decomposer::{property_expansion_sparql, ExpansionDirection};
use elinda_endpoint::{DecomposerMode, EndpointConfig, Parallelism};
use elinda_server::{percent_encode, serve, ServerConfig, ServerState};
use elinda_store::TripleStore;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const QUERY: &str = "SELECT ?s WHERE { ?s a <http://e/Parent> }";

/// A store with a materialized class hierarchy (every Child instance is
/// also typed Parent, DBpedia-style), so the script can reach the
/// incremental tier: a cached Parent chart frontier seeds the Child
/// expansion.
fn test_store() -> Arc<TripleStore> {
    Arc::new(
        TripleStore::from_turtle(
            "@prefix ex: <http://e/> .
             @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
             ex:Child rdfs:subClassOf ex:Parent .
             ex:a a ex:Parent ; ex:p ex:x ; ex:q ex:y .
             ex:b a ex:Parent , ex:Child ; ex:p ex:y .
             ex:c a ex:Parent , ex:Child ; ex:q ex:z .
             ex:d a ex:Parent .",
        )
        .unwrap(),
    )
}

/// One scripted exchange: a raw request (sent whole), or a partial
/// request the client stalls on (exercising the 408 path).
enum Step {
    Full(&'static str, String),
    Partial(&'static str, String),
}

impl Step {
    fn label(&self) -> &'static str {
        match self {
            Step::Full(label, _) | Step::Partial(label, _) => label,
        }
    }
}

fn get(label: &'static str, target: &str) -> Step {
    Step::Full(
        label,
        format!("GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

fn get_sparql(label: &'static str, query: &str, id: &str) -> Step {
    Step::Full(
        label,
        format!(
            "GET /sparql?query={} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nX-Request-Id: {id}\r\n\r\n",
            percent_encode(query)
        ),
    )
}

fn post(label: &'static str, path: &str, content_type: &str, body: &str, id: &str) -> Step {
    Step::Full(
        label,
        format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
             X-Request-Id: {id}\r\nContent-Type: {content_type}\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// The request script covering every route and error path. Order
/// matters: the cache warms exactly the same way on both servers.
fn script() -> Vec<Step> {
    let parent_chart = property_expansion_sparql("http://e/Parent", ExpansionDirection::Outgoing);
    let child_chart = property_expansion_sparql("http://e/Child", ExpansionDirection::Outgoing);
    let form = format!("query={}", percent_encode(&parent_chart));
    vec![
        get("health", "/health"),
        get_sparql("direct get", QUERY, "id-direct-1"),
        get_sparql("chart first sight", &parent_chart, "id-chart-1"),
        get_sparql("chart repeat (cache)", &parent_chart, "id-chart-2"),
        get_sparql("child chart (incremental)", &child_chart, "id-child-1"),
        post(
            "chart via form post",
            "/sparql",
            "application/x-www-form-urlencoded",
            &form,
            "id-form-1",
        ),
        post(
            "raw sparql-query post",
            "/sparql",
            "application/sparql-query",
            QUERY,
            "id-raw-1",
        ),
        get_sparql("query parse error", "SELECT junk", "id-bad-1"),
        Step::Full(
            "missing query param",
            "GET /sparql HTTP/1.1\r\nHost: t\r\nConnection: close\r\nX-Request-Id: id-miss-1\r\n\r\n"
                .to_string(),
        ),
        get("explain", &format!("/explain?query={}", percent_encode(QUERY))),
        get("explain missing param", "/explain"),
        get("not found", "/nope"),
        Step::Full(
            "method not allowed",
            "DELETE /sparql HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n".to_string(),
        ),
        post(
            "update insert",
            "/update",
            "application/sparql-update",
            "INSERT DATA { <http://e/new> a <http://e/Parent> }",
            "id-up-1",
        ),
        get_sparql("read your writes", QUERY, "id-direct-2"),
        post(
            "update malformed",
            "/update",
            "application/sparql-update",
            "not sparql at all",
            "id-up-2",
        ),
        Step::Full(
            "oversized body (413)",
            format!(
                "POST /sparql HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
                 Content-Length: {}\r\n\r\n",
                elinda_server::http::MAX_BODY + 1
            ),
        ),
        Step::Full(
            "conflicting content-length (400)",
            "POST /sparql HTTP/1.1\r\nHost: t\r\nContent-Length: 3\r\nContent-Length: 7\r\n\r\nabcdefg"
                .to_string(),
        ),
        Step::Partial("stalled request (408)", "GET /spar".to_string()),
        get("metrics", "/metrics"),
    ]
}

/// Run `script` against a fresh server and collect every raw response.
fn run_script(
    endpoint_config: EndpointConfig,
    event_loop: bool,
    script: &[Step],
) -> Vec<(&'static str, Vec<u8>)> {
    let state = Arc::new(ServerState::new(test_store(), endpoint_config));
    let handle = serve(
        state,
        "127.0.0.1:0",
        ServerConfig {
            event_loop,
            read_timeout: Duration::from_millis(300),
            drain_timeout: Duration::from_millis(100),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr();
    let responses = script
        .iter()
        .map(|step| {
            let raw = match step {
                Step::Full(_, raw) | Step::Partial(_, raw) => raw,
            };
            (step.label(), exchange_raw(addr, raw))
        })
        .collect();
    handle.shutdown();
    responses
}

/// Send `raw` (possibly a deliberately incomplete request) and read the
/// entire response until the server closes.
fn exchange_raw(addr: SocketAddr, raw: &str) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    response
}

fn status_line(raw: &[u8]) -> &[u8] {
    let end = raw
        .windows(2)
        .position(|w| w == b"\r\n")
        .unwrap_or(raw.len());
    &raw[..end]
}

fn served_by(raw: &[u8]) -> Option<String> {
    let text = String::from_utf8_lossy(raw);
    text.lines().find_map(|l| {
        l.to_ascii_lowercase()
            .strip_prefix("x-elinda-served-by:")
            .map(str::trim)
            .map(str::to_string)
    })
}

/// Labels whose response bodies are run-dependent (latency summaries):
/// compared on the status line only.
fn status_only(label: &str) -> bool {
    label == "metrics"
}

fn assert_equivalent(endpoint_config: EndpointConfig, script: &[Step]) {
    let blocking = run_script(endpoint_config.clone(), false, script);
    let reactor = run_script(endpoint_config, true, script);
    assert_eq!(blocking.len(), reactor.len());
    for ((label, b), (_, r)) in blocking.iter().zip(reactor.iter()) {
        if status_only(label) {
            assert_eq!(
                status_line(b),
                status_line(r),
                "status diverged on `{label}`"
            );
        } else {
            assert_eq!(
                String::from_utf8_lossy(b),
                String::from_utf8_lossy(r),
                "response diverged on `{label}`"
            );
        }
    }
}

#[test]
fn every_route_is_byte_identical_across_front_ends() {
    let script = script();
    let blocking = run_script(EndpointConfig::full(), false, &script);

    // The script actually exercised the tiers it claims to: assert on
    // the blocking run, then prove the reactor run identical.
    let tier = |label: &str| {
        blocking
            .iter()
            .find(|(l, _)| *l == label)
            .and_then(|(_, raw)| served_by(raw))
            .unwrap_or_else(|| panic!("no served-by on `{label}`"))
    };
    assert_eq!(tier("direct get"), "direct");
    assert_eq!(tier("chart first sight"), "decomposer");
    assert_eq!(tier("chart repeat (cache)"), "cache-hit");
    assert_eq!(tier("child chart (incremental)"), "incremental");

    assert_equivalent(EndpointConfig::full(), &script);
}

#[test]
fn hvs_tier_is_byte_identical_across_front_ends() {
    // A zero heavy-threshold marks every answered chart heavy, so the
    // repeat is served from the HVS.
    let mut config = EndpointConfig::full();
    config.hvs.heavy_threshold = Duration::ZERO;
    let chart = property_expansion_sparql("http://e/Parent", ExpansionDirection::Outgoing);
    let script = vec![
        get_sparql("hvs warm-up", &chart, "id-hvs-1"),
        get_sparql("hvs hit", &chart, "id-hvs-2"),
    ];

    let blocking = run_script(config.clone(), false, &script);
    assert_eq!(served_by(&blocking[1].1).as_deref(), Some("hvs"));
    assert_equivalent(config, &script);
}

#[test]
fn precomputed_and_sharded_plans_are_byte_identical_across_front_ends() {
    let chart = property_expansion_sparql("http://e/Parent", ExpansionDirection::Outgoing);
    let script = vec![get_sparql("chart", &chart, "id-plan-1")];

    // Precomputed aggregates.
    let mut precomputed = EndpointConfig::full();
    precomputed.decomposer_mode = DecomposerMode::Precomputed;
    assert_equivalent(precomputed, &script);

    // Sharded parallel evaluation.
    assert_equivalent(EndpointConfig::parallel(Parallelism::fixed(2, 7)), &script);
}
