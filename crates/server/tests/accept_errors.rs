//! Regression test: `accept(2)` failures must be counted (they used to
//! vanish into a silent sleep) and the acceptor must ride out resource
//! exhaustion instead of dropping the listener.
//!
//! The test provokes a real `EMFILE`: it lowers the soft
//! `RLIMIT_NOFILE`, fills the table with descriptors, frees exactly one
//! so a client `connect` can complete its handshake into the backlog,
//! and then watches the acceptor hit `EMFILE` on every `accept` until
//! the descriptors are released — after which the pending connection
//! must still be served.
//!
//! This lives in its own integration-test binary (its own process):
//! the lowered limit would break any other test running concurrently.

#![cfg(unix)]

use elinda_endpoint::EndpointConfig;
use elinda_server::{serve, sys, ServerConfig, ServerState};
use elinda_store::TripleStore;
use std::fs::File;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

#[test]
fn accept_errors_are_counted_and_the_acceptor_recovers() {
    if !sys::supported() {
        return;
    }
    let store =
        Arc::new(TripleStore::from_turtle("@prefix ex: <http://e/> . ex:a a ex:C .").unwrap());
    let state = Arc::new(ServerState::new(store, EndpointConfig::full()));
    let handle = serve(state, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = handle.local_addr();

    // Sanity: the counter starts clean and normal accepts do not bump it.
    let mut probe = TcpStream::connect(addr).unwrap();
    probe
        .write_all(b"GET /health HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let mut out = Vec::new();
    probe.read_to_end(&mut out).unwrap();
    assert_eq!(handle.counters().accept_errors, 0);

    let original = sys::raise_nofile(0).expect("read current limit");

    // Lower the limit and fill the descriptor table.
    sys::set_soft_nofile(256).expect("lower soft limit");
    let mut fillers = Vec::new();
    // Until EMFILE: the table is full.
    while let Ok(f) = File::open("/dev/null") {
        fillers.push(f);
    }
    assert!(!fillers.is_empty(), "never reached the descriptor limit");

    // Free exactly one slot for the client socket: the handshake
    // completes in the listener backlog, but the acceptor's accept(2)
    // now needs a descriptor none remain for.
    fillers.pop();
    let client = TcpStream::connect(addr).expect("connect into the backlog");
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    // The acceptor must observe EMFILE and count it (with backoff, not
    // a hot loop — the counter climbs slowly).
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.counters().accept_errors == 0 {
        assert!(Instant::now() < deadline, "accept EMFILE was never counted");
        thread::sleep(Duration::from_millis(10));
    }

    // Release the descriptors: the backed-off acceptor retries, admits
    // the parked connection, and it is served normally.
    drop(fillers);
    sys::set_soft_nofile(original).expect("restore limit");
    let mut client = client;
    client
        .write_all(b"GET /health HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let mut response = Vec::new();
    client
        .read_to_end(&mut response)
        .expect("parked connection served after recovery");
    let text = String::from_utf8_lossy(&response);
    assert!(text.starts_with("HTTP/1.1 200 "), "{text}");

    // The error shows on /metrics too.
    let mut metrics = TcpStream::connect(addr).unwrap();
    metrics
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let mut body = Vec::new();
    metrics.read_to_end(&mut body).unwrap();
    let text = String::from_utf8_lossy(&body);
    let count: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("elinda_accept_errors "))
        .expect("accept-errors metric")
        .parse()
        .unwrap();
    assert!(count >= 1, "{text}");
    handle.shutdown();
}
