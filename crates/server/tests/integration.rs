//! End-to-end tests over real TCP connections: concurrent clients get
//! byte-identical SPARQL-JSON to the in-process executor, admission
//! control sheds with `503`, and shutdown drains in-flight requests.

use elinda_endpoint::json::encode_solutions;
use elinda_endpoint::{
    BreakerConfig, EndpointConfig, QueryEngine, QueryOutcome, ResilienceConfig, RetryPolicy,
    ServeError,
};
use elinda_server::{percent_encode, serve, ServerConfig, ServerState};
use elinda_store::TripleStore;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const QUERY: &str = "SELECT ?s WHERE { ?s a <http://e/C> }";

fn test_state() -> Arc<ServerState> {
    let store = TripleStore::from_turtle(
        "@prefix ex: <http://e/> .
         ex:a a ex:C . ex:b a ex:C . ex:c a ex:C .
         ex:a ex:knows ex:b .",
    )
    .unwrap();
    Arc::new(ServerState::new(Arc::new(store), EndpointConfig::full()))
}

/// A raw one-shot HTTP exchange: returns (status, headers, body).
fn exchange(addr: SocketAddr, request: &str) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has header terminator");
    let head = std::str::from_utf8(&raw[..header_end]).unwrap();
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap();
    let status: u16 = status_line.split(' ').nth(1).unwrap().parse().unwrap();
    let headers = lines
        .map(|line| {
            let (name, value) = line.split_once(':').unwrap();
            (name.trim().to_ascii_lowercase(), value.trim().to_string())
        })
        .collect();
    (status, headers, raw[header_end + 4..].to_vec())
}

fn get(addr: SocketAddr, target: &str) -> (u16, Vec<(String, String)>, Vec<u8>) {
    exchange(addr, &format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn header<'h>(headers: &'h [(String, String)], name: &str) -> Option<&'h str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

#[test]
fn concurrent_clients_get_byte_identical_sparql_json() {
    let state = test_state();
    let expected = {
        let outcome = state.endpoint().inner().execute(QUERY).unwrap();
        encode_solutions(&outcome.solutions, state.store()).into_bytes()
    };

    let handle = serve(
        Arc::clone(&state),
        "127.0.0.1:0",
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr();

    let clients: Vec<_> = (0..8)
        .map(|i| {
            let expected = expected.clone();
            thread::spawn(move || {
                for round in 0..5 {
                    let (status, headers, body) = if (i + round) % 2 == 0 {
                        get(addr, &format!("/sparql?query={}", percent_encode(QUERY)))
                    } else {
                        let form = format!("query={}", percent_encode(QUERY));
                        exchange(
                            addr,
                            &format!(
                                "POST /sparql HTTP/1.1\r\nHost: t\r\n\
                                 Content-Type: application/x-www-form-urlencoded\r\n\
                                 Content-Length: {}\r\n\r\n{form}",
                                form.len()
                            ),
                        )
                    };
                    assert_eq!(status, 200);
                    assert_eq!(
                        header(&headers, "content-type"),
                        Some("application/sparql-results+json")
                    );
                    assert!(header(&headers, "x-elinda-served-by").is_some());
                    assert_eq!(body, expected, "client {i} round {round}");
                }
            })
        })
        .collect();
    for client in clients {
        client.join().unwrap();
    }

    let counters = handle.counters();
    assert_eq!(counters.accepted, 40);
    assert_eq!(counters.shed, 0);
    handle.shutdown();
}

/// Extends `concurrent_clients_get_byte_identical_sparql_json`: the same
/// hammer pattern, but the served queries are heavy property expansions
/// and the endpoint fans each one across an intra-query worker pool.
/// With 4 server workers × 2 threads/query the pools compose; the test
/// asserts no deadlock or panic (every request completes with 200) and
/// that every response is byte-identical to the sequential baseline.
#[test]
fn concurrent_clients_with_parallel_evaluation_match_sequential_baseline() {
    use elinda_endpoint::decomposer::{property_expansion_sparql, ExpansionDirection};
    use elinda_endpoint::Parallelism;

    let store = Arc::new(
        TripleStore::from_turtle(
            "@prefix ex: <http://e/> .
             ex:a a ex:C ; ex:knows ex:b ; ex:likes ex:c .
             ex:b a ex:C ; ex:knows ex:c .
             ex:c a ex:C .
             ex:d a ex:D ; ex:knows ex:a .",
        )
        .unwrap(),
    );
    let queries: Vec<String> = [ExpansionDirection::Outgoing, ExpansionDirection::Incoming]
        .into_iter()
        .flat_map(|dir| {
            ["http://e/C", "http://e/D"]
                .into_iter()
                .map(move |class| property_expansion_sparql(class, dir))
        })
        .collect();
    // Baseline: the sequential decomposer, in-process.
    let sequential = ServerState::new(Arc::clone(&store), EndpointConfig::decomposer_only());
    let expected: Vec<Vec<u8>> = queries
        .iter()
        .map(|q| sequential.execute_json(q).unwrap().0.into_bytes())
        .collect();

    let mut config = EndpointConfig::decomposer_only();
    config.parallelism = Parallelism::fixed(2, 7);
    let state = Arc::new(ServerState::new(store, config));
    let handle = serve(
        state,
        "127.0.0.1:0",
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr();

    let clients: Vec<_> = (0..8)
        .map(|i| {
            let queries = queries.clone();
            let expected = expected.clone();
            thread::spawn(move || {
                for round in 0..5 {
                    let pick = (i + round) % queries.len();
                    let (status, headers, body) = get(
                        addr,
                        &format!("/sparql?query={}", percent_encode(&queries[pick])),
                    );
                    assert_eq!(status, 200);
                    assert_eq!(header(&headers, "x-elinda-served-by"), Some("decomposer"));
                    assert_eq!(
                        body, expected[pick],
                        "client {i} round {round} query {pick}"
                    );
                }
            })
        })
        .collect();
    for client in clients {
        client.join().unwrap();
    }

    let counters = handle.counters();
    assert_eq!(counters.accepted, 40);
    assert_eq!(counters.shed, 0);

    // Every request went through the parallel path; /metrics exposes the
    // per-shard timings and the speedup gauge.
    let (status, _, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("elinda_parallel_queries_total 40"), "{text}");
    assert!(text.contains("elinda_parallel_shard_busy_us{shard=\"6\"}"));
    assert!(text.contains("elinda_parallel_speedup"));

    handle.shutdown();
}

#[test]
fn raw_sparql_query_post_body_is_accepted() {
    let state = test_state();
    let handle = serve(state, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let (status, headers, body) = exchange(
        handle.local_addr(),
        &format!(
            "POST /sparql HTTP/1.1\r\nHost: t\r\n\
             Content-Type: application/sparql-query\r\n\
             Content-Length: {}\r\n\r\n{QUERY}",
            QUERY.len()
        ),
    );
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-elinda-served-by"), Some("direct"));
    assert!(std::str::from_utf8(&body).unwrap().contains("bindings"));
    handle.shutdown();
}

#[test]
fn health_metrics_and_errors() {
    let state = test_state();
    let handle = serve(state, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = handle.local_addr();

    let (status, _, body) = get(addr, "/health");
    assert_eq!((status, body.as_slice()), (200, b"ok\n".as_slice()));

    let (status, _, _) = get(
        addr,
        &format!("/sparql?query={}", percent_encode("SELECT junk")),
    );
    assert_eq!(status, 400);

    let (status, _, _) = get(addr, "/sparql");
    assert_eq!(status, 400); // missing query parameter

    let (status, _, _) = get(addr, "/nope");
    assert_eq!(status, 404);

    let (status, _, _) = exchange(addr, "DELETE /sparql HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 405);

    get(addr, &format!("/sparql?query={}", percent_encode(QUERY)));
    let (status, _, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("elinda_component_queries_total{component=\"direct\"} 1"));
    assert!(text.contains("elinda_component_latency_p95_us{component=\"direct\"}"));
    assert!(text.contains("elinda_server_accepted_total"));
    assert!(text.contains("elinda_server_workers 4"));

    handle.shutdown();
}

#[test]
fn queue_overflow_sheds_with_503() {
    let state = test_state();
    let handle = serve(
        state,
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            queue_depth: 1,
            handler_delay: Duration::from_millis(150),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr();

    // One slow worker + depth-1 queue: a burst of 12 concurrent clients
    // must overflow admission control.
    let clients: Vec<_> = (0..12)
        .map(|_| {
            thread::spawn(move || {
                let (status, _, _) = get(addr, &format!("/sparql?query={}", percent_encode(QUERY)));
                status
            })
        })
        .collect();
    let statuses: Vec<u16> = clients.into_iter().map(|c| c.join().unwrap()).collect();

    assert!(statuses.contains(&503), "no request was shed: {statuses:?}");
    assert!(
        statuses.contains(&200),
        "no request succeeded: {statuses:?}"
    );
    assert!(statuses.iter().all(|s| matches!(s, 200 | 503)));
    let counters = handle.counters();
    assert!(counters.shed >= 1);
    assert_eq!(counters.accepted + counters.shed, 12);
    handle.shutdown();
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let state = test_state();
    let handle = serve(
        state,
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            handler_delay: Duration::from_millis(100),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr();

    let clients: Vec<_> = (0..6)
        .map(|_| {
            thread::spawn(move || get(addr, &format!("/sparql?query={}", percent_encode(QUERY))))
        })
        .collect();
    // Wait for admission (not completion: the 100 ms handler delay and
    // two workers keep most requests queued or in flight), then shut
    // down: every accepted request must still get a full response.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while handle.counters().accepted < 6 {
        assert!(
            std::time::Instant::now() < deadline,
            "requests were never admitted"
        );
        thread::sleep(Duration::from_millis(5));
    }
    handle.shutdown();

    for client in clients {
        let (status, _, body) = client.join().unwrap();
        assert_eq!(status, 200);
        assert!(!body.is_empty());
    }

    // The listener is gone: new connections are refused.
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener still accepting after shutdown"
    );
}

#[test]
fn stalled_client_gets_408_and_releases_the_worker() {
    let state = test_state();
    let handle = serve(
        Arc::clone(&state),
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            read_timeout: Duration::from_millis(200),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr();

    // Send half a request line and stall: the single worker must time
    // the read out, answer 408, and move on.
    let mut stalled = TcpStream::connect(addr).unwrap();
    stalled
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stalled.write_all(b"GET /spar").unwrap();
    let mut raw = Vec::new();
    stalled.read_to_end(&mut raw).expect("read 408 response");
    let head = std::str::from_utf8(&raw).unwrap();
    assert!(head.starts_with("HTTP/1.1 408 "), "{head}");

    // The worker survived the stalled client and still serves.
    let (status, _, body) = get(addr, &format!("/sparql?query={}", percent_encode(QUERY)));
    assert_eq!(status, 200);
    assert!(!body.is_empty());
    handle.shutdown();
}

#[test]
fn panicking_query_returns_500_without_killing_the_worker() {
    /// An engine that panics on every query — a stand-in for an engine
    /// bug a request must not turn into a dead worker thread.
    struct Panicking;
    impl QueryEngine for Panicking {
        fn execute(&self, _q: &str) -> Result<QueryOutcome, ServeError> {
            panic!("engine bug");
        }
        fn data_epoch(&self) -> u64 {
            0
        }
    }

    let store =
        Arc::new(TripleStore::from_turtle("@prefix ex: <http://e/> . ex:a a ex:C .").unwrap());
    let state = Arc::new(ServerState::with_engine(
        store,
        Box::new(Panicking),
        ResilienceConfig::default(),
        false,
    ));
    let handle = serve(
        state,
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr();

    for round in 0..3 {
        let (status, _, body) = get(addr, &format!("/sparql?query={}", percent_encode(QUERY)));
        assert_eq!(status, 500, "round {round}");
        assert!(String::from_utf8(body)
            .unwrap()
            .contains("internal server error"));
        // The same (single) worker keeps serving after each panic.
        let (status, _, _) = get(addr, "/health");
        assert_eq!(status, 200, "worker died after panic (round {round})");
    }
    handle.shutdown();
}

#[test]
fn metrics_expose_resilience_counters_over_http() {
    /// Fails transiently on every call.
    struct Down;
    impl QueryEngine for Down {
        fn execute(&self, _q: &str) -> Result<QueryOutcome, ServeError> {
            Err(ServeError::Transient("connection refused".into()))
        }
        fn data_epoch(&self) -> u64 {
            0
        }
    }

    let store = Arc::new(
        TripleStore::from_turtle("@prefix ex: <http://e/> . ex:a a ex:C . ex:b a ex:C .").unwrap(),
    );
    let resilience = ResilienceConfig {
        retry: RetryPolicy::new(2, Duration::from_micros(10), Duration::from_micros(50)),
        breaker: BreakerConfig {
            failure_threshold: 100,
            open_cooldown: Duration::from_millis(100),
        },
        ..ResilienceConfig::default()
    };
    let state = Arc::new(ServerState::with_engine(
        store,
        Box::new(Down),
        resilience,
        true,
    ));
    let handle = serve(state, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = handle.local_addr();

    // The dead primary is retried, then the local fallback answers; the
    // response is explicitly marked degraded.
    let (status, headers, body) = get(addr, &format!("/sparql?query={}", percent_encode(QUERY)));
    assert_eq!(status, 200);
    assert_eq!(
        header(&headers, "x-elinda-served-by"),
        Some("degraded-local")
    );
    assert!(std::str::from_utf8(&body).unwrap().contains("bindings"));

    let (status, _, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("elinda_resilience_retries_total 2"), "{text}");
    assert!(
        text.contains("elinda_resilience_degraded_total 1"),
        "{text}"
    );
    assert!(text.contains("elinda_resilience_deadline_expiries_total 0"));
    assert!(text.contains("elinda_resilience_unavailable_total 0"));
    assert!(text.contains("elinda_breaker_transitions_total{transition=\"opened\"} 0"));
    assert!(text.contains("elinda_component_queries_total{component=\"degraded-local\"} 1"));
    handle.shutdown();
}

#[test]
fn exhausted_request_deadline_maps_to_504() {
    let state = test_state();
    let handle = serve(
        state,
        "127.0.0.1:0",
        ServerConfig {
            // A budget no query can meet: every request 504s.
            request_deadline: Some(Duration::from_nanos(1)),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr();

    let (status, _, body) = get(addr, &format!("/sparql?query={}", percent_encode(QUERY)));
    assert_eq!(status, 504);
    assert!(String::from_utf8(body)
        .unwrap()
        .contains("deadline exceeded"));

    let (_, _, body) = get(addr, "/metrics");
    let text = String::from_utf8(body).unwrap();
    assert!(
        text.contains("elinda_resilience_deadline_expiries_total 1"),
        "{text}"
    );
    handle.shutdown();
}

// ---------------------------------------------------------------------------
// Request-scoped tracing, /explain, and HTTP framing limits
// ---------------------------------------------------------------------------

#[test]
fn every_sparql_response_carries_a_request_id() {
    let state = test_state();
    let handle = serve(state, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = handle.local_addr();

    // Success.
    let (status, headers, _) = get(addr, &format!("/sparql?query={}", percent_encode(QUERY)));
    assert_eq!(status, 200);
    let generated = header(&headers, "x-request-id")
        .expect("id on 200")
        .to_string();
    assert_eq!(generated.len(), 16);
    assert!(generated.bytes().all(|b| b.is_ascii_hexdigit()));

    // Query error: still tagged.
    let (status, headers, _) = get(
        addr,
        &format!("/sparql?query={}", percent_encode("SELECT junk")),
    );
    assert_eq!(status, 400);
    assert!(header(&headers, "x-request-id").is_some());

    // Missing query parameter: still tagged.
    let (status, headers, _) = get(addr, "/sparql");
    assert_eq!(status, 400);
    assert!(header(&headers, "x-request-id").is_some());

    // A well-formed client-supplied id is echoed back verbatim.
    let (_, headers, _) = exchange(
        addr,
        &format!(
            "GET /sparql?query={} HTTP/1.1\r\nHost: t\r\nX-Request-Id: client-abc.1\r\n\r\n",
            percent_encode(QUERY)
        ),
    );
    assert_eq!(header(&headers, "x-request-id"), Some("client-abc.1"));

    // A hostile id (whitespace → header injection risk) is replaced.
    let (_, headers, _) = exchange(
        addr,
        &format!(
            "GET /sparql?query={} HTTP/1.1\r\nHost: t\r\nX-Request-Id: two words\r\n\r\n",
            percent_encode(QUERY)
        ),
    );
    let replaced = header(&headers, "x-request-id").unwrap();
    assert_ne!(replaced, "two words");
    assert_eq!(replaced.len(), 16);
    handle.shutdown();
}

#[test]
fn sampled_trace_is_retrievable_and_stage_sum_tracks_end_to_end_latency() {
    use elinda_datagen::{generate_dbpedia, DbpediaConfig};
    use elinda_endpoint::decomposer::{property_expansion_sparql, ExpansionDirection};

    // A paper-shape store so the traced request does real work and the
    // stage spans dwarf the untraced gaps between them.
    let store = Arc::new(generate_dbpedia(&DbpediaConfig::tiny()));
    let state = Arc::new(ServerState::new(Arc::clone(&store), EndpointConfig::full()));
    let handle = serve(
        Arc::clone(&state),
        "127.0.0.1:0",
        ServerConfig {
            trace_sample: 1.0,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr();

    let heavy = property_expansion_sparql(
        "http://dbpedia.org/ontology/Person",
        ExpansionDirection::Outgoing,
    );
    let (status, headers, _) = get(addr, &format!("/sparql?query={}", percent_encode(&heavy)));
    assert_eq!(status, 200);
    let id = header(&headers, "x-request-id").unwrap().to_string();

    // The span tree is retrievable over HTTP by that id.
    let (status, headers, body) = get(addr, &format!("/debug/trace/{id}"));
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "content-type"), Some("application/json"));
    let json = String::from_utf8(body).unwrap();
    assert!(json.contains(&format!("\"id\":\"{id}\"")), "{json}");
    assert!(json.contains("\"outcome\":\"ok\""), "{json}");
    for stage in ["admission", "hvs", "parse", "route", "eval", "serialize"] {
        assert!(
            json.contains(&format!("\"name\":\"{stage}\"")),
            "missing {stage}: {json}"
        );
    }

    // Acceptance: the root-level stage spans tile the request — their
    // summed wall time is within 10% of the end-to-end total.
    let trace = state.trace_ring().get(&id).expect("trace in ring");
    let total = trace.total.as_secs_f64();
    let staged = trace.stage_total().as_secs_f64();
    assert!(
        staged <= total,
        "stages exceed the request: {staged} > {total}"
    );
    assert!(
        staged >= total * 0.9,
        "stage sum {:.1}us covers less than 90% of end-to-end {:.1}us",
        staged * 1e6,
        total * 1e6
    );

    // An unknown id is a 404, not a panic or an empty 200.
    let (status, _, _) = get(addr, "/debug/trace/does-not-exist");
    assert_eq!(status, 404);

    // /metrics exposes the per-stage histograms fed by the sample.
    let (_, _, body) = get(addr, "/metrics");
    let text = String::from_utf8(body).unwrap();
    assert!(
        text.contains("elinda_stage_latency_count{stage=\"eval\"} 1"),
        "{text}"
    );
    assert!(
        text.contains("elinda_stage_latency_p95_us{stage=\"serialize\"}"),
        "{text}"
    );
    handle.shutdown();
}

#[test]
fn explain_reports_the_route_without_executing() {
    let state = test_state();
    let handle = serve(Arc::clone(&state), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = handle.local_addr();

    let (status, headers, body) = get(addr, &format!("/explain?query={}", percent_encode(QUERY)));
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "content-type"), Some("application/json"));
    let json = String::from_utf8(body).unwrap();
    assert!(json.contains("\"path\":\"direct\""), "{json}");
    assert!(json.contains("\"hvs_hit\":false"), "{json}");

    // A malformed query is explained (parse error surfaced), not run.
    let (status, _, body) = get(
        addr,
        &format!("/explain?query={}", percent_encode("SELECT junk")),
    );
    assert_eq!(status, 200);
    let json = String::from_utf8(body).unwrap();
    assert!(json.contains("\"path\":\"invalid\""), "{json}");
    assert!(json.contains("\"parse_error\""), "{json}");

    let (status, _, _) = get(addr, "/explain");
    assert_eq!(status, 400);

    // Nothing above executed a query.
    let (_, _, body) = get(addr, "/metrics");
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("elinda_queries_total 0"), "{text}");
    handle.shutdown();
}

#[test]
fn oversized_header_line_and_header_flood_get_400_not_oom() {
    let state = test_state();
    let handle = serve(state, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = handle.local_addr();

    // A 64 KiB header line: rejected at the 8 KiB cap.
    let huge = format!(
        "GET /sparql HTTP/1.1\r\nHost: t\r\nX-Huge: {}\r\n\r\n",
        "a".repeat(64 * 1024)
    );
    let (status, _, _) = exchange(addr, &huge);
    assert_eq!(status, 400);

    // 100 header lines: rejected at the 64-header cap.
    let mut flood = String::from("GET /sparql HTTP/1.1\r\n");
    for i in 0..100 {
        flood.push_str(&format!("X-Filler-{i}: 1\r\n"));
    }
    flood.push_str("\r\n");
    let (status, _, _) = exchange(addr, &flood);
    assert_eq!(status, 400);

    // The worker survived both and still serves.
    let (status, _, _) = get(addr, "/health");
    assert_eq!(status, 200);
    handle.shutdown();
}

#[test]
fn conflicting_content_lengths_get_400_over_the_wire() {
    let state = test_state();
    let handle = serve(state, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let (status, _, body) = exchange(
        handle.local_addr(),
        "POST /sparql HTTP/1.1\r\nHost: t\r\nContent-Length: 3\r\nContent-Length: 7\r\n\r\nabcdefg",
    );
    assert_eq!(status, 400);
    assert!(String::from_utf8(body).unwrap().contains("content-length"));
    handle.shutdown();
}

#[test]
fn breaker_open_503_derives_retry_after_from_remaining_cooldown() {
    /// Fails transiently on every call, tripping the breaker.
    struct Down;
    impl QueryEngine for Down {
        fn execute(&self, _q: &str) -> Result<QueryOutcome, ServeError> {
            Err(ServeError::Transient("connection refused".into()))
        }
        fn data_epoch(&self) -> u64 {
            0
        }
    }

    let store =
        Arc::new(TripleStore::from_turtle("@prefix ex: <http://e/> . ex:a a ex:C .").unwrap());
    let resilience = ResilienceConfig {
        retry: RetryPolicy::disabled(),
        breaker: BreakerConfig {
            failure_threshold: 1,
            open_cooldown: Duration::from_secs(30),
        },
        ..ResilienceConfig::default()
    };
    let state = Arc::new(ServerState::with_engine(
        store,
        Box::new(Down),
        resilience,
        false,
    ));
    let handle = serve(state, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = handle.local_addr();
    let target = format!("/sparql?query={}", percent_encode(QUERY));

    // First request trips the breaker (502 from the transient failure).
    let (status, _, _) = get(addr, &target);
    assert_eq!(status, 502);

    // With the breaker open, the shed 503 tells the client how long the
    // remaining cooldown actually is — not a hardcoded second.
    let (status, headers, _) = get(addr, &target);
    assert_eq!(status, 503);
    let retry_after: u64 = header(&headers, "retry-after")
        .expect("Retry-After on breaker-open 503")
        .parse()
        .expect("integral seconds");
    assert!(
        (25..=30).contains(&retry_after),
        "expected ~30s of cooldown, got {retry_after}"
    );
    handle.shutdown();
}

/// Regression test for percent-encoded IRI normalization of cache keys.
///
/// A GET client that writes `<http://e/%43>` and a POST client that
/// writes `<http://e/C>` are asking the same chart question; before the
/// key normalization fix the two spellings hashed to different cache
/// entries, so semantically identical requests could diverge (duplicate
/// work at best, inconsistent epochs at worst). Now both must converge
/// on one entry: the second request is a cache hit with byte-identical
/// SPARQL-JSON.
#[test]
fn percent_encoded_get_and_plain_post_share_one_cache_key() {
    use elinda_endpoint::decomposer::{property_expansion_sparql, ExpansionDirection};

    let state = test_state();
    let handle = serve(Arc::clone(&state), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = handle.local_addr();

    // A recognized chart query (only those are cached), in two spellings
    // of the same IRI: `%43` is the unreserved octet for `C`. The GET
    // target re-encodes the query for the URL layer, so the `%` itself
    // travels as `%25` and the server-decoded query text still contains
    // the literal `%43` escape inside the IRI.
    let plain = property_expansion_sparql("http://e/C", ExpansionDirection::Outgoing);
    let escaped = plain.replace("http://e/C", "http://e/%43");
    assert_ne!(plain, escaped);

    let (status, headers, first_body) =
        get(addr, &format!("/sparql?query={}", percent_encode(&escaped)));
    assert_eq!(status, 200);
    let first_tier = header(&headers, "x-elinda-served-by")
        .expect("served-by header")
        .to_string();
    assert_ne!(first_tier, "cache-hit", "first sight cannot be a hit");

    let form = format!("query={}", percent_encode(&plain));
    let (status, headers, second_body) = exchange(
        addr,
        &format!(
            "POST /sparql HTTP/1.1\r\nHost: t\r\n\
             Content-Type: application/x-www-form-urlencoded\r\n\
             Content-Length: {}\r\n\r\n{form}",
            form.len()
        ),
    );
    assert_eq!(status, 200);
    assert_eq!(
        header(&headers, "x-elinda-served-by"),
        Some("cache-hit"),
        "the plain POST spelling must land on the GET spelling's entry"
    );
    assert_eq!(
        second_body, first_body,
        "both spellings must serve identical bytes"
    );

    // And the reverse direction: a *differently* escaped GET revisit
    // (lowercase hex, escaping the `e` of the authority) still hits.
    let other = plain.replace("http://e/C", "http://%65/C");
    let (status, headers, third_body) =
        get(addr, &format!("/sparql?query={}", percent_encode(&other)));
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-elinda-served-by"), Some("cache-hit"));
    assert_eq!(third_body, first_body);
    handle.shutdown();
}

/// POST a SPARQL UPDATE as a raw `application/sparql-update` body.
fn post_update(addr: SocketAddr, update: &str) -> (u16, Vec<(String, String)>, Vec<u8>) {
    exchange(
        addr,
        &format!(
            "POST /update HTTP/1.1\r\nHost: t\r\n\
             Content-Type: application/sparql-update\r\n\
             Content-Length: {}\r\n\r\n{update}",
            update.len()
        ),
    )
}

#[test]
fn update_over_http_is_read_your_writes_and_compaction_is_invisible() {
    let state = test_state();
    let handle = serve(
        Arc::clone(&state),
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr();
    let target = format!("/sparql?query={}", percent_encode(QUERY));

    let (status, _, before) = get(addr, &target);
    assert_eq!(status, 200);
    assert!(!String::from_utf8_lossy(&before).contains("http://e/new"));

    let (status, headers, body) =
        post_update(addr, "INSERT DATA { <http://e/new> a <http://e/C> }");
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    assert_eq!(header(&headers, "content-type"), Some("application/json"));
    let report = String::from_utf8_lossy(&body).into_owned();
    assert!(report.contains("\"inserted\":1"), "{report}");
    assert!(header(&headers, "x-request-id").is_some());

    // The write is visible to the very next chart request, before any
    // compaction has run.
    let (status, _, after) = get(addr, &target);
    assert_eq!(status, 200);
    assert!(String::from_utf8_lossy(&after).contains("http://e/new"));

    // Fold the overlay: the same request must serve identical bytes.
    state.compact_now().expect("staged novelty compacts");
    let (status, _, compacted) = get(addr, &target);
    assert_eq!(status, 200);
    assert_eq!(after, compacted, "compaction must not change results");

    // /metrics shows the overlay drained back to zero.
    let (status, _, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let metrics = String::from_utf8_lossy(&metrics).into_owned();
    assert!(metrics.contains("elinda_novelty_triples 0"), "{metrics}");
    assert!(metrics.contains("elinda_compaction_total 1"), "{metrics}");
    handle.shutdown();
}

#[test]
fn update_endpoint_hardening_405_400_413() {
    let state = test_state();
    let handle = serve(Arc::clone(&state), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = handle.local_addr();

    // Non-POST methods on /update are refused, not 404.
    let (status, _, _) = get(addr, "/update");
    assert_eq!(status, 405);

    // An unparsable UPDATE string is the client's fault: 400.
    let (status, _, body) = post_update(addr, "INSERT DATA { ?v a <http://e/C> }");
    assert_eq!(status, 400);
    assert!(String::from_utf8_lossy(&body).contains("malformed"));
    let (status, _, _) = post_update(addr, "not sparql at all");
    assert_eq!(status, 400);

    // A POST with no update text at all is also 400.
    let (status, _, body) = exchange(
        addr,
        "POST /update HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n",
    );
    assert_eq!(status, 400);
    assert!(String::from_utf8_lossy(&body).contains("update"));

    // A body over the framing limit gets 413, not a generic 400.
    let (status, _, body) = exchange(
        addr,
        &format!(
            "POST /update HTTP/1.1\r\nHost: t\r\n\
             Content-Type: application/sparql-update\r\n\
             Content-Length: {}\r\n\r\n",
            elinda_server::http::MAX_BODY + 1
        ),
    );
    assert_eq!(status, 413, "{}", String::from_utf8_lossy(&body));
    assert!(String::from_utf8_lossy(&body).contains("too large"));

    // Nothing above staged any novelty.
    assert_eq!(state.novelty_stats().unwrap().novelty_triples, 0);
    handle.shutdown();
}

#[test]
fn background_compactor_folds_writes_without_manual_intervention() {
    let state = test_state();
    let handle = serve(
        Arc::clone(&state),
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            compact_interval: Some(Duration::from_millis(25)),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr();

    let (status, _, _) = post_update(
        addr,
        "INSERT DATA { <http://e/bg> a <http://e/C> . <http://e/bg2> a <http://e/C> }",
    );
    assert_eq!(status, 200);

    // The compactor thread folds the overlay on its own; poll /metrics
    // until the staged-novelty gauge returns to zero.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let (status, _, metrics) = get(addr, "/metrics");
        assert_eq!(status, 200);
        let metrics = String::from_utf8_lossy(&metrics).into_owned();
        if metrics.contains("elinda_novelty_triples 0")
            && !metrics.contains("elinda_compaction_total 0")
        {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "compactor never folded:\n{metrics}"
        );
        thread::sleep(Duration::from_millis(10));
    }

    // The folded write is still served.
    let (status, _, body) = get(addr, &format!("/sparql?query={}", percent_encode(QUERY)));
    assert_eq!(status, 200);
    assert!(String::from_utf8_lossy(&body).contains("http://e/bg"));

    // Shutdown joins the compactor promptly instead of sleeping out an
    // interval-less wait.
    let start = std::time::Instant::now();
    handle.shutdown();
    assert!(start.elapsed() < Duration::from_secs(2));
}

#[test]
fn blocking_408_drains_for_the_configured_drain_timeout_before_responding() {
    // Regression for two bugs at once: the 408 path used to respond
    // without draining (the error often died as a TCP RST before the
    // client could read it), and `drain_timeout` used to be hardcoded.
    // A silent client costs the full drain window, so the 408 lands at
    // ~read_timeout + drain_timeout — timing proves both the drain and
    // the plumbing.
    let state = test_state();
    let read_timeout = Duration::from_millis(200);
    let drain_timeout = Duration::from_millis(600);
    let handle = serve(
        Arc::clone(&state),
        "127.0.0.1:0",
        ServerConfig {
            read_timeout,
            drain_timeout,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr();

    let mut stalled = TcpStream::connect(addr).unwrap();
    stalled
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stalled.write_all(b"GET /spar").unwrap();
    let start = std::time::Instant::now();
    let mut raw = Vec::new();
    stalled.read_to_end(&mut raw).expect("read 408 response");
    let elapsed = start.elapsed();
    let head = std::str::from_utf8(&raw).unwrap();
    assert!(head.starts_with("HTTP/1.1 408 "), "{head}");
    assert!(
        head.to_ascii_lowercase().contains("connection: close"),
        "{head}"
    );
    assert!(
        elapsed >= read_timeout + drain_timeout - Duration::from_millis(50),
        "408 arrived after {elapsed:?}; expected ≥ read + drain ≈ 800ms"
    );
    handle.shutdown();

    // The same stall against a short drain window responds much
    // sooner: the window really is the configured knob.
    let handle = serve(
        test_state(),
        "127.0.0.1:0",
        ServerConfig {
            read_timeout,
            drain_timeout: Duration::from_millis(50),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr();
    let mut stalled = TcpStream::connect(addr).unwrap();
    stalled
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stalled.write_all(b"GET /spar").unwrap();
    let start = std::time::Instant::now();
    let mut raw = Vec::new();
    stalled.read_to_end(&mut raw).expect("read 408 response");
    let elapsed = start.elapsed();
    assert!(
        elapsed < read_timeout + Duration::from_millis(400),
        "short drain window still took {elapsed:?}"
    );
    handle.shutdown();
}
