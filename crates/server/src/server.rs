//! The serving loop: a front-end feeding a bounded request queue
//! drained by a fixed pool of worker threads.
//!
//! Two front-ends share that queue. The default blocking front-end is
//! a non-blocking acceptor handing whole connections to workers (one
//! request per connection, `Connection: close`). With
//! [`ServerConfig::event_loop`] the epoll-backed [`crate::reactor`]
//! owns every socket instead: it parses requests incrementally, keeps
//! connections alive between requests, pipelines, and hands complete
//! requests (not connections) to the same workers.
//!
//! Admission control is explicit either way: when the queue is full
//! the front-end answers `503 Service Unavailable` itself instead of
//! letting latency grow without bound. Shutdown is graceful: the
//! front-end stops admitting, workers drain every queued item, and
//! [`ServerHandle::shutdown`] returns only once all of them exited.

use crate::http::{parse_query_pairs, Request, Response};
use crate::state::{served_by_name, ServerState};
use elinda_endpoint::resilience::Deadline;
use elinda_endpoint::{ServeError, TraceCtx};
use std::collections::VecDeque;
use std::io::{self, BufReader, Write};

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads answering queries concurrently.
    pub workers: usize,
    /// Maximum queued connections awaiting a worker; beyond this the
    /// acceptor sheds load with `503`.
    pub queue_depth: usize,
    /// Per-connection socket read timeout, so a stalled client cannot
    /// pin a worker forever.
    pub read_timeout: Duration,
    /// Artificial delay added before handling each request. Zero in
    /// production; tests and saturation benchmarks raise it to make
    /// queue overflow and shutdown draining deterministic.
    pub handler_delay: Duration,
    /// Per-request execution budget created at admission and propagated
    /// down the whole query path (router → parallel executor → remote
    /// calls). A request that exhausts it gets `504 Gateway Timeout`
    /// (or a degraded answer) instead of hanging. `None` disables the
    /// budget.
    pub request_deadline: Option<Duration>,
    /// Fraction of `/sparql` requests traced end-to-end (span tree,
    /// ring retention, per-stage histograms), in `[0.0, 1.0]`. Sampling
    /// is deterministic per request sequence number. `0.0` (the
    /// default) makes the tracing layer a no-op; the default can be
    /// overridden with the `ELINDA_TRACE_SAMPLE` environment variable.
    pub trace_sample: f64,
    /// Period of the background compactor thread folding the novelty
    /// overlay into the base store. The thread also wakes early when
    /// staged novelty crosses the overlay's size threshold. `None` (the
    /// default) spawns no compactor: writes accumulate in the overlay
    /// until [`crate::state::ServerState::compact_now`] is called.
    pub compact_interval: Option<Duration>,
    /// How long the shed / rejected-request paths keep reading leftover
    /// client bytes before giving up. Draining before answering stops
    /// the kernel from RST-ing the socket (destroying the error
    /// response) over unread data; this bounds how long a slow-writing
    /// client can occupy the draining thread.
    pub drain_timeout: Duration,
    /// Serve connections with the epoll-backed event-driven front-end
    /// ([`crate::reactor`]) instead of the blocking
    /// connection-per-worker model: HTTP/1.1 keep-alive, request
    /// pipelining, and thousands of idle connections without pinning
    /// threads. Requires a supported target ([`crate::sys::supported`]);
    /// [`serve`] fails with `Unsupported` otherwise.
    pub event_loop: bool,
    /// Maximum simultaneously open connections under the event loop;
    /// beyond this the reactor answers `503` and closes immediately.
    /// Ignored by the blocking front-end.
    pub max_connections: usize,
    /// How long an idle keep-alive connection (no request in progress)
    /// may sit between requests before the reactor closes it. Ignored
    /// by the blocking front-end, which never keeps connections alive.
    pub keep_alive_timeout: Duration,
    /// Requests served on one connection before the reactor closes it
    /// (`Connection: close` on the final response), bounding how long
    /// any single client can monopolize a connection slot. Ignored by
    /// the blocking front-end.
    pub max_requests_per_conn: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            read_timeout: Duration::from_secs(5),
            handler_delay: Duration::ZERO,
            request_deadline: None,
            trace_sample: default_trace_sample(),
            compact_interval: None,
            drain_timeout: Duration::from_millis(250),
            event_loop: false,
            max_connections: 8192,
            keep_alive_timeout: Duration::from_secs(30),
            max_requests_per_conn: 1000,
        }
    }
}

/// The default trace-sampling rate: `ELINDA_TRACE_SAMPLE` if set and
/// parseable (clamped to `[0.0, 1.0]`), else `0.0` (tracing off).
fn default_trace_sample() -> f64 {
    std::env::var("ELINDA_TRACE_SAMPLE")
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .map(|v| v.clamp(0.0, 1.0))
        .unwrap_or(0.0)
}

/// Monotonic serving counters, exposed on `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerCounters {
    /// Connections admitted by the front-end (handed to the worker
    /// pool under the blocking front-end, registered with the reactor
    /// under the event loop).
    pub accepted: u64,
    /// Responses written by workers (including error responses).
    pub served: u64,
    /// Requests answered `503` by admission control.
    pub shed: u64,
    /// `accept(2)` failures (excluding `WouldBlock`), which previously
    /// vanished into a silent sleep. Resource-exhaustion errors
    /// (`EMFILE`/`ENFILE`) additionally back the acceptor off
    /// exponentially instead of hot-looping.
    pub accept_errors: u64,
}

/// One unit of queued work: the blocking front-end enqueues whole
/// connections; the reactor enqueues already-parsed requests and takes
/// the response back over the completion channel.
pub(crate) enum Work {
    Conn(TcpStream),
    Job { token: u64, request: Request },
}

/// A worker's answer to a reactor [`Work::Job`], keyed by the
/// reactor's connection token.
pub(crate) struct Completion {
    pub(crate) token: u64,
    pub(crate) response: Response,
}

/// The cross-platform spelling of the reactor's wake pipe: the write
/// end workers poke after pushing a completion. Only ever constructed
/// on unix (the reactor is unavailable elsewhere); the non-unix alias
/// exists so `Shared` needs no cfg-dependent shape.
#[cfg(unix)]
pub(crate) type WakePipe = UnixStream;
#[cfg(not(unix))]
pub(crate) type WakePipe = TcpStream;

pub(crate) struct Shared {
    pub(crate) state: Arc<ServerState>,
    pub(crate) config: ServerConfig,
    pub(crate) queue: Mutex<VecDeque<Work>>,
    pub(crate) available: Condvar,
    pub(crate) shutdown: AtomicBool,
    pub(crate) accepted: AtomicU64,
    pub(crate) served: AtomicU64,
    pub(crate) shed: AtomicU64,
    pub(crate) accept_errors: AtomicU64,
    /// Connections currently open under the reactor (gauge).
    pub(crate) connections_open: AtomicU64,
    /// Keep-alive connections closed for idling past the timeout.
    pub(crate) idle_closed: AtomicU64,
    /// Monotone per-`/sparql` sequence number driving deterministic
    /// trace sampling and generated request ids.
    pub(crate) request_seq: AtomicU64,
    /// Responses finished by workers, awaiting reactor pickup.
    pub(crate) completions: Mutex<Vec<Completion>>,
    /// Write end of the reactor's wake pipe (reactor mode only).
    pub(crate) wake_tx: Mutex<Option<WakePipe>>,
}

impl Shared {
    fn counters(&self) -> ServerCounters {
        ServerCounters {
            accepted: self.accepted.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            accept_errors: self.accept_errors.load(Ordering::Relaxed),
        }
    }

    /// Hand a reactor-parsed request to the worker pool under the same
    /// bounded-queue admission control as whole connections. `false`
    /// means the queue is full and the caller must shed.
    pub(crate) fn enqueue_job(&self, token: u64, request: Request) -> bool {
        let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        if queue.len() >= self.config.queue_depth {
            return false;
        }
        queue.push_back(Work::Job { token, request });
        drop(queue);
        self.available.notify_one();
        true
    }

    /// Deliver a finished response to the reactor and wake it.
    fn complete(&self, completion: Completion) {
        self.completions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(completion);
        self.wake_reactor();
    }

    /// Poke the reactor's wake pipe. A full pipe buffer is fine: the
    /// reactor already has a wake-up pending and drains the pipe
    /// wholesale.
    pub(crate) fn wake_reactor(&self) {
        let guard = self.wake_tx.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(pipe) = guard.as_ref() {
            let _ = (&*pipe).write(&[1]);
        }
    }
}

/// A running server; dropping it shuts the server down.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    compactor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound address (use with port `0` in tests).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current serving counters.
    pub fn counters(&self) -> ServerCounters {
        self.shared.counters()
    }

    /// Stop accepting, drain every queued connection, and wait for all
    /// threads to exit.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        // The reactor parks in epoll_wait; poke its wake pipe so it
        // observes the shutdown flag immediately (no-op in blocking
        // mode, where no pipe exists).
        self.shared.wake_reactor();
        // The compactor parks on the overlay's work condvar; poke it so
        // it observes the shutdown flag instead of sleeping out its
        // full interval.
        if let Some(novelty) = self.shared.state.novelty() {
            novelty.notify();
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(compactor) = self.compactor.take() {
            let _ = compactor.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Bind `addr` and start serving `state` with `config`.
pub fn serve(
    state: Arc<ServerState>,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let shared = Arc::new(Shared {
        state,
        config: config.clone(),
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        shutdown: AtomicBool::new(false),
        accepted: AtomicU64::new(0),
        served: AtomicU64::new(0),
        shed: AtomicU64::new(0),
        accept_errors: AtomicU64::new(0),
        connections_open: AtomicU64::new(0),
        idle_closed: AtomicU64::new(0),
        request_seq: AtomicU64::new(0),
        completions: Mutex::new(Vec::new()),
        wake_tx: Mutex::new(None),
    });

    let workers: Vec<_> = (0..config.workers.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name(format!("elinda-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker thread")
        })
        .collect();

    let acceptor = if config.event_loop {
        spawn_reactor(listener, &shared)?
    } else {
        let shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("elinda-acceptor".into())
            .spawn(move || accept_loop(listener, &shared))
            .expect("spawn acceptor thread")
    };

    // Background compaction: one thread folding the novelty overlay on
    // a period, woken early when staged writes cross the overlay's size
    // threshold. Only spawned when both an interval is configured and
    // the state actually has a write path.
    let compactor = match (config.compact_interval, shared.state.novelty()) {
        (Some(interval), Some(_)) => {
            let shared = Arc::clone(&shared);
            Some(
                thread::Builder::new()
                    .name("elinda-compactor".into())
                    .spawn(move || compactor_loop(&shared, interval))
                    .expect("spawn compactor thread"),
            )
        }
        _ => None,
    };

    Ok(ServerHandle {
        shared,
        addr: local,
        acceptor: Some(acceptor),
        workers,
        compactor,
    })
}

/// Build the reactor synchronously (so a missing epoll backend fails
/// `serve` instead of a background thread) and run it on the thread
/// that replaces the blocking acceptor.
#[cfg(unix)]
fn spawn_reactor(listener: TcpListener, shared: &Arc<Shared>) -> io::Result<JoinHandle<()>> {
    let (wake_rx, wake_tx) = UnixStream::pair()?;
    wake_rx.set_nonblocking(true)?;
    wake_tx.set_nonblocking(true)?;
    let reactor = crate::reactor::Reactor::new(listener, Arc::clone(shared), wake_rx)?;
    *shared.wake_tx.lock().unwrap_or_else(|e| e.into_inner()) = Some(wake_tx);
    thread::Builder::new()
        .name("elinda-reactor".into())
        .spawn(move || reactor.run())
        .map_err(io::Error::other)
}

#[cfg(not(unix))]
fn spawn_reactor(_listener: TcpListener, _shared: &Arc<Shared>) -> io::Result<JoinHandle<()>> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "the event-driven front-end requires a unix target with epoll",
    ))
}

fn compactor_loop(shared: &Shared, interval: Duration) {
    let Some(novelty) = shared.state.novelty().cloned() else {
        return;
    };
    while !shared.shutdown.load(Ordering::Acquire) {
        // Returns early on a threshold signal (or a shutdown poke),
        // else after the full interval; either way a clean overlay
        // makes compact_now a no-op.
        let _signaled = novelty.wait_for_work(interval);
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        shared.state.compact_now();
    }
}

/// Pacing for the accept loop's error handling. Transient
/// per-connection failures (an aborted handshake) get the base pause;
/// resource exhaustion (`EMFILE`/`ENFILE`, no buffers/memory) doubles
/// the pause up to a ceiling — retrying instantly cannot succeed until
/// descriptors free up, and hot-looping starves the threads that would
/// free them. Any successful accept resets the ramp.
pub(crate) struct AcceptBackoff {
    delay: Duration,
}

impl AcceptBackoff {
    const BASE: Duration = Duration::from_millis(2);
    const CEILING: Duration = Duration::from_millis(1000);

    pub(crate) fn new() -> AcceptBackoff {
        AcceptBackoff { delay: Self::BASE }
    }

    pub(crate) fn on_success(&mut self) {
        self.delay = Self::BASE;
    }

    /// The pause to take after a (non-`WouldBlock`) accept error.
    pub(crate) fn on_error(&mut self, e: &io::Error) -> Duration {
        if is_resource_exhaustion(e) {
            let current = self.delay;
            self.delay = (self.delay * 2).min(Self::CEILING);
            current
        } else {
            Self::BASE
        }
    }
}

/// Whether an accept error means the process is out of a shared
/// resource (so immediate retry is futile). The stable
/// `io::ErrorKind` set has no variants for these yet; match raw
/// errnos: `ENOMEM`=12, `ENFILE`=23, `EMFILE`=24, `ENOBUFS`=105.
fn is_resource_exhaustion(e: &io::Error) -> bool {
    matches!(e.raw_os_error(), Some(12 | 23 | 24 | 105))
}

fn accept_loop(listener: TcpListener, shared: &Shared) {
    let mut backoff = AcceptBackoff::new();
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                backoff.on_success();
                // The listener is non-blocking so the loop can observe
                // shutdown; handled connections must block normally.
                let _ = stream.set_nonblocking(false);
                let enqueued = {
                    let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                    if queue.len() < shared.config.queue_depth {
                        queue.push_back(Work::Conn(stream));
                        true
                    } else {
                        drop(queue);
                        shed(stream, shared);
                        false
                    }
                };
                if enqueued {
                    shared.accepted.fetch_add(1, Ordering::Relaxed);
                    shared.available.notify_one();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(e) => {
                shared.accept_errors.fetch_add(1, Ordering::Relaxed);
                thread::sleep(backoff.on_error(&e));
            }
        }
    }
    // Dropping the listener here closes the accept socket, so clients
    // connecting after shutdown are refused rather than left hanging.
}

fn shed(stream: TcpStream, shared: &Shared) {
    shared.shed.fetch_add(1, Ordering::Relaxed);
    // Drain the request before answering: closing a socket with unread
    // received data makes the kernel send RST, which can destroy the
    // 503 before the client reads it. The timeout bounds how long a
    // slow-writing client can occupy the acceptor.
    let _ = stream.set_read_timeout(Some(shared.config.drain_timeout));
    let mut reader = BufReader::new(stream);
    let _ = Request::parse(&mut reader);
    let mut stream = reader.into_inner();
    let response = shed_response();
    let _ = response.write_to(&mut stream);
}

/// The admission-control 503, shared by both front-ends so shedding is
/// byte-identical whichever one answered.
pub(crate) fn shed_response() -> Response {
    Response::text(503, "server overloaded, retry later\n").header("Retry-After", "1")
}

fn worker_loop(shared: &Shared) {
    loop {
        let work = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(work) = queue.pop_front() {
                    break Some(work);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                let (guard, _) = shared
                    .available
                    .wait_timeout(queue, Duration::from_millis(100))
                    .unwrap_or_else(|e| e.into_inner());
                queue = guard;
            }
        };
        match work {
            Some(Work::Conn(stream)) => {
                handle_connection(stream, shared);
                shared.served.fetch_add(1, Ordering::Relaxed);
            }
            Some(Work::Job { token, request }) => {
                if !shared.config.handler_delay.is_zero() {
                    thread::sleep(shared.config.handler_delay);
                }
                // Same panic fence as the blocking path: a poisoned
                // query costs this request a 500, not the pool a
                // worker — and the reactor always gets its completion.
                let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    route(&request, shared)
                }))
                .unwrap_or_else(|_| Response::text(500, "internal server error\n"));
                shared.served.fetch_add(1, Ordering::Relaxed);
                shared.complete(Completion { token, response });
            }
            // Shutdown requested and the queue is fully drained.
            None => return,
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    if !shared.config.handler_delay.is_zero() {
        thread::sleep(shared.config.handler_delay);
    }
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.read_timeout));
    let mut reader = BufReader::new(stream);
    let response = match Request::parse(&mut reader) {
        // A panic while routing (a poisoned query, a bug in an engine)
        // must cost this request a 500, not the pool a worker.
        Ok(request) => {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| route(&request, shared)))
                .unwrap_or_else(|_| Response::text(500, "internal server error\n"))
        }
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            // The reject may leave unread request bytes (an oversized
            // header, a flood of them); closing with them unread makes
            // the kernel RST the connection and destroy the 400 before
            // the client sees it. Discard a bounded amount first.
            drain_rejected_request(&mut reader, shared.config.drain_timeout);
            Response::text(400, format!("bad request: {e}\n"))
        }
        // A body beyond MAX_BODY: tell the client the payload (not the
        // request framing) is the problem. Same drain rationale as 400.
        Err(e) if e.kind() == io::ErrorKind::InvalidInput => {
            drain_rejected_request(&mut reader, shared.config.drain_timeout);
            Response::text(413, format!("payload too large: {e}\n"))
        }
        // The client sent part of a request and then stalled until the
        // socket read timeout: tell it so instead of silently dropping.
        // The partial request's bytes are still unread in the kernel
        // buffer; exactly like the 400/413 paths, closing without
        // draining them would RST the socket and destroy the 408
        // before the client reads it.
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
            ) =>
        {
            drain_rejected_request(&mut reader, shared.config.drain_timeout);
            Response::text(408, "request timed out waiting for the client\n")
        }
        // Client vanished before sending a full request.
        Err(_) => return,
    };
    let mut stream = reader.into_inner();
    let _ = response.write_to(&mut stream);
    let _ = stream.flush();
}

/// Read and discard whatever the client already sent of a rejected
/// request, bounded in bytes and time, so the error response survives
/// the close.
fn drain_rejected_request(reader: &mut BufReader<TcpStream>, timeout: Duration) {
    let _ = reader.get_ref().set_read_timeout(Some(timeout));
    let mut scratch = [0u8; 4096];
    let mut drained = 0usize;
    while drained < crate::http::MAX_BODY {
        match io::Read::read(reader, &mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

fn route(request: &Request, shared: &Shared) -> Response {
    if let Some(id) = request.path.strip_prefix("/debug/trace/") {
        return if request.method == "GET" {
            debug_trace(id, shared)
        } else {
            Response::text(405, "method not allowed\n")
        };
    }
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/health") => Response::text(200, "ok\n"),
        ("GET", "/metrics") => metrics(shared),
        ("GET", "/explain") => explain(request, shared),
        ("GET", "/sparql") | ("POST", "/sparql") => sparql(request, shared),
        ("POST", "/update") => update(request, shared),
        ("POST", "/shard/eval") => shard_eval(request, shared),
        (_, "/health" | "/metrics" | "/sparql" | "/explain" | "/update" | "/shard/eval") => {
            Response::text(405, "method not allowed\n")
        }
        _ => Response::text(404, "not found\n"),
    }
}

/// `GET /debug/trace/<id>`: the full span tree of a recently sampled
/// request, as JSON, or `404` once it has been evicted from the ring.
fn debug_trace(id: &str, shared: &Shared) -> Response {
    match shared.state.trace_ring().get(id) {
        Some(trace) => Response::json(200, trace.to_json()),
        None => Response::text(404, "no sampled trace with that id\n"),
    }
}

/// `GET /explain?query=…`: the router's predicted serving path (HVS
/// hit, recognized shape, sharding) without executing the query.
fn explain(request: &Request, shared: &Shared) -> Response {
    let Some(query) = request.param("query") else {
        return Response::text(400, "missing required `query` parameter\n");
    };
    match shared.state.explain(query) {
        Some(report) => Response::json(200, report.to_json()),
        None => Response::text(404, "no local router available to explain against\n"),
    }
}

fn metrics(shared: &Shared) -> Response {
    let counters = shared.counters();
    let depth = shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len();
    let mut body = shared.state.metrics_text();
    body.push_str(&format!(
        "elinda_server_accepted_total {}\n",
        counters.accepted
    ));
    body.push_str(&format!("elinda_server_served_total {}\n", counters.served));
    body.push_str(&format!("elinda_server_shed_total {}\n", counters.shed));
    body.push_str(&format!(
        "elinda_accept_errors {}\n",
        counters.accept_errors
    ));
    body.push_str(&format!("elinda_server_queue_depth {depth}\n"));
    body.push_str(&format!(
        "elinda_server_workers {}\n",
        shared.config.workers
    ));
    body.push_str(&format!(
        "elinda_server_event_loop {}\n",
        u8::from(shared.config.event_loop)
    ));
    body.push_str(&format!(
        "elinda_server_connections_open {}\n",
        shared.connections_open.load(Ordering::Relaxed)
    ));
    body.push_str(&format!(
        "elinda_server_idle_closed_total {}\n",
        shared.idle_closed.load(Ordering::Relaxed)
    ));
    Response::text(200, body)
}

/// Extract the query text per the SPARQL protocol: `?query=` on GET,
/// and on POST either a raw `application/sparql-query` body or a
/// `query=` pair in a form-encoded body.
fn query_text(request: &Request) -> Option<String> {
    if request.method == "GET" {
        return request.param("query").map(str::to_string);
    }
    let content_type = request.header("content-type").unwrap_or("");
    let body = String::from_utf8_lossy(&request.body);
    if content_type.starts_with("application/sparql-query") {
        return Some(body.into_owned());
    }
    parse_query_pairs(&body)
        .into_iter()
        .find(|(name, _)| name == "query")
        .map(|(_, value)| value)
        .or_else(|| request.param("query").map(str::to_string))
}

/// SplitMix64: the one-liner generator used for deterministic request
/// ids and sampling decisions (no RNG state to contend on).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A client-supplied `X-Request-Id` is honored only if it is short and
/// header/log-safe; anything else is replaced with a generated id.
fn valid_request_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b'-'))
}

/// 16 hex chars, unique per (process, request sequence number).
fn generate_request_id(seq: u64) -> String {
    let salt = u64::from(std::process::id()) << 32;
    format!("{:016x}", splitmix64(seq ^ salt))
}

/// Deterministic sampling: request `seq` is traced iff its hashed
/// sequence number falls below the configured rate.
fn is_sampled(rate: f64, seq: u64) -> bool {
    if rate <= 0.0 {
        return false;
    }
    if rate >= 1.0 {
        return true;
    }
    // Top 53 bits → a uniform float in [0, 1).
    let unit = (splitmix64(seq) >> 11) as f64 / (1u64 << 53) as f64;
    unit < rate
}

fn sparql(request: &Request, shared: &Shared) -> Response {
    let seq = shared.request_seq.fetch_add(1, Ordering::Relaxed);
    let request_id = request
        .header("x-request-id")
        .filter(|id| valid_request_id(id))
        .map(str::to_string)
        .unwrap_or_else(|| generate_request_id(seq));
    let trace = if is_sampled(shared.config.trace_sample, seq) {
        TraceCtx::sampled(request_id.clone())
    } else {
        TraceCtx::disabled()
    };

    // Admission: protocol handling before the engine sees the query —
    // extracting the query text and minting the execution budget.
    let (query, deadline) = {
        let mut span = trace.span("admission");
        let query = query_text(request);
        let deadline = match shared.config.request_deadline {
            Some(budget) => Deadline::within(budget),
            None => Deadline::unbounded(),
        };
        if trace.is_enabled() {
            span.tag("method", request.method.clone());
            span.tag(
                "outcome",
                if query.is_some() {
                    "ok"
                } else {
                    "missing_query"
                },
            );
        }
        (query, deadline)
    };
    let Some(query) = query else {
        return Response::text(400, "missing required `query` parameter\n")
            .header("X-Request-Id", request_id);
    };

    let response = match shared.state.execute_json_traced(&query, deadline, trace) {
        Ok((body, served_by)) => {
            Response::sparql_json(200, body).header("X-Elinda-Served-By", served_by_name(served_by))
        }
        Err(ServeError::Query(e)) => Response::text(400, format!("query error: {e}\n")),
        Err(ServeError::DeadlineExceeded) => {
            Response::text(504, "deadline exceeded before an answer was produced\n")
        }
        Err(ServeError::Unavailable(msg)) => {
            Response::text(503, format!("backend unavailable: {msg}\n"))
                .header("Retry-After", retry_after_secs(shared).to_string())
        }
        Err(ServeError::Transient(msg)) => {
            Response::text(502, format!("upstream failure: {msg}\n"))
        }
        Err(ServeError::Malformed(msg)) => {
            Response::text(400, format!("malformed request: {msg}\n"))
        }
    };
    response.header("X-Request-Id", request_id)
}

/// The fabric's internal partial-aggregate route: a shard-role process
/// answers a decomposed chart query with a text-keyed partial over its
/// own subject-hash partition. A process not running in shard role has
/// nothing behind this path and answers 404.
fn shard_eval(request: &Request, shared: &Shared) -> Response {
    let seq = shared.request_seq.fetch_add(1, Ordering::Relaxed);
    let request_id = request
        .header("x-request-id")
        .filter(|id| valid_request_id(id))
        .map(str::to_string)
        .unwrap_or_else(|| generate_request_id(seq));
    let Some(evaluator) = shared.state.shard_evaluator() else {
        return Response::text(404, "not serving a shard role\n")
            .header("X-Request-Id", request_id);
    };
    let Some(query) = query_text(request) else {
        return Response::text(400, "missing required `query` parameter\n")
            .header("X-Request-Id", request_id);
    };
    let response = match evaluator.eval(&query) {
        Ok(body) => Response::json(200, body),
        Err(ServeError::Malformed(msg)) => {
            Response::text(400, format!("malformed request: {msg}\n"))
        }
        Err(ServeError::Query(e)) => Response::text(400, format!("query error: {e}\n")),
        Err(ServeError::DeadlineExceeded) => {
            Response::text(504, "deadline exceeded before an answer was produced\n")
        }
        Err(ServeError::Unavailable(msg)) => {
            Response::text(503, format!("backend unavailable: {msg}\n"))
        }
        Err(ServeError::Transient(msg)) => {
            Response::text(502, format!("upstream failure: {msg}\n"))
        }
    };
    response.header("X-Request-Id", request_id)
}

/// Extract the update text per the SPARQL protocol: a raw
/// `application/sparql-update` body, or an `update=` pair in a
/// form-encoded body (or the query string as a last resort).
fn update_text(request: &Request) -> Option<String> {
    let content_type = request.header("content-type").unwrap_or("");
    let body = String::from_utf8_lossy(&request.body);
    if content_type.starts_with("application/sparql-update") {
        return Some(body.into_owned());
    }
    parse_query_pairs(&body)
        .into_iter()
        .find(|(name, _)| name == "update")
        .map(|(_, value)| value)
        .or_else(|| request.param("update").map(str::to_string))
}

/// `POST /update`: apply a SPARQL UPDATE (`INSERT DATA`/`DELETE DATA`)
/// to the novelty overlay and report what changed as JSON. The next
/// read observes the write (read-your-writes); the background compactor
/// folds it into the base store later.
fn update(request: &Request, shared: &Shared) -> Response {
    let seq = shared.request_seq.fetch_add(1, Ordering::Relaxed);
    let request_id = request
        .header("x-request-id")
        .filter(|id| valid_request_id(id))
        .map(str::to_string)
        .unwrap_or_else(|| generate_request_id(seq));
    let trace = if is_sampled(shared.config.trace_sample, seq) {
        TraceCtx::sampled(request_id.clone())
    } else {
        TraceCtx::disabled()
    };

    let Some(text) = update_text(request) else {
        return Response::text(400, "missing required `update` parameter\n")
            .header("X-Request-Id", request_id);
    };
    let response = match shared.state.apply_update_traced(&text, trace) {
        Ok(outcome) => Response::json(
            200,
            format!(
                "{{\"inserted\":{},\"deleted\":{},\"noops\":{},\"novelty\":{},\"epoch\":{}}}",
                outcome.inserted, outcome.deleted, outcome.noops, outcome.novelty, outcome.epoch
            ),
        ),
        Err(ServeError::Malformed(msg)) => {
            Response::text(400, format!("malformed update: {msg}\n"))
        }
        Err(ServeError::Unavailable(msg)) => {
            Response::text(503, format!("write path unavailable: {msg}\n"))
        }
        Err(e) => Response::text(500, format!("update failed: {e}\n")),
    };
    response.header("X-Request-Id", request_id)
}

/// Seconds a shed client should wait before retrying: the breaker's
/// remaining open-state cooldown rounded up, and at least one second.
/// Falls back to one second when the breaker is not open (the 503 came
/// from somewhere else in the stack).
fn retry_after_secs(shared: &Shared) -> u64 {
    shared
        .state
        .breaker_cooldown()
        .map(|remaining| (remaining.as_secs_f64().ceil() as u64).max(1))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_id_validation_accepts_safe_tokens_only() {
        assert!(valid_request_id("abc-123_X.y"));
        assert!(!valid_request_id(""));
        assert!(!valid_request_id(&"a".repeat(65)));
        assert!(!valid_request_id("has space"));
        assert!(!valid_request_id("crlf\r\ninjection"));
    }

    #[test]
    fn generated_request_ids_are_hex_and_distinct() {
        let a = generate_request_id(0);
        let b = generate_request_id(1);
        assert_eq!(a.len(), 16);
        assert!(a.bytes().all(|c| c.is_ascii_hexdigit()));
        assert_ne!(a, b);
    }

    #[test]
    fn accept_backoff_ramps_on_resource_errors_and_resets() {
        let mut backoff = AcceptBackoff::new();
        let emfile = io::Error::from_raw_os_error(24);
        let aborted = io::Error::new(io::ErrorKind::ConnectionAborted, "aborted");

        // Transient errors never ramp.
        assert_eq!(backoff.on_error(&aborted), AcceptBackoff::BASE);
        assert_eq!(backoff.on_error(&aborted), AcceptBackoff::BASE);

        // Resource exhaustion doubles, capped at the ceiling.
        let mut last = Duration::ZERO;
        for _ in 0..16 {
            let pause = backoff.on_error(&emfile);
            assert!(pause >= last);
            assert!(pause <= AcceptBackoff::CEILING);
            last = pause;
        }
        assert_eq!(last, AcceptBackoff::CEILING);

        // A transient error mid-ramp keeps the ramp.
        assert_eq!(backoff.on_error(&aborted), AcceptBackoff::BASE);
        assert_eq!(backoff.on_error(&emfile), AcceptBackoff::CEILING);

        // Success resets it.
        backoff.on_success();
        assert_eq!(backoff.on_error(&emfile), AcceptBackoff::BASE);
    }

    #[test]
    fn resource_exhaustion_classification_matches_errnos() {
        for errno in [12, 23, 24, 105] {
            assert!(is_resource_exhaustion(&io::Error::from_raw_os_error(errno)));
        }
        // ECONNABORTED (103) and EINTR (4) are transient, not resource
        // exhaustion.
        assert!(!is_resource_exhaustion(&io::Error::from_raw_os_error(103)));
        assert!(!is_resource_exhaustion(&io::Error::from_raw_os_error(4)));
        assert!(!is_resource_exhaustion(&io::Error::new(
            io::ErrorKind::WouldBlock,
            "no os error"
        )));
    }

    #[test]
    fn sampling_rates_hit_their_extremes_and_scale() {
        assert!((0..100).all(|seq| !is_sampled(0.0, seq)));
        assert!((0..100).all(|seq| is_sampled(1.0, seq)));
        let hits = (0..10_000).filter(|&seq| is_sampled(0.25, seq)).count();
        assert!((1500..3500).contains(&hits), "0.25 sampled {hits}/10000");
        // Deterministic: the same sequence number decides the same way.
        assert_eq!(is_sampled(0.25, 42), is_sampled(0.25, 42));
    }
}
