//! The serving loop: a non-blocking acceptor feeding a bounded request
//! queue drained by a fixed pool of worker threads.
//!
//! Admission control is explicit: when the queue is full the acceptor
//! answers `503 Service Unavailable` itself instead of letting latency
//! grow without bound. Shutdown is graceful: the acceptor stops
//! admitting, workers drain every queued connection, and
//! [`ServerHandle::shutdown`] returns only once all of them exited.

use crate::http::{parse_query_pairs, Request, Response};
use crate::state::{served_by_name, ServerState};
use elinda_endpoint::resilience::Deadline;
use elinda_endpoint::ServeError;
use std::collections::VecDeque;
use std::io::{self, BufReader, Write};

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads answering queries concurrently.
    pub workers: usize,
    /// Maximum queued connections awaiting a worker; beyond this the
    /// acceptor sheds load with `503`.
    pub queue_depth: usize,
    /// Per-connection socket read timeout, so a stalled client cannot
    /// pin a worker forever.
    pub read_timeout: Duration,
    /// Artificial delay added before handling each request. Zero in
    /// production; tests and saturation benchmarks raise it to make
    /// queue overflow and shutdown draining deterministic.
    pub handler_delay: Duration,
    /// Per-request execution budget created at admission and propagated
    /// down the whole query path (router → parallel executor → remote
    /// calls). A request that exhausts it gets `504 Gateway Timeout`
    /// (or a degraded answer) instead of hanging. `None` disables the
    /// budget.
    pub request_deadline: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            read_timeout: Duration::from_secs(5),
            handler_delay: Duration::ZERO,
            request_deadline: None,
        }
    }
}

/// Monotonic serving counters, exposed on `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerCounters {
    /// Connections handed to the worker pool.
    pub accepted: u64,
    /// Responses written by workers (including error responses).
    pub served: u64,
    /// Connections answered `503` by admission control.
    pub shed: u64,
}

struct Shared {
    state: Arc<ServerState>,
    config: ServerConfig,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    shutdown: AtomicBool,
    accepted: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
}

impl Shared {
    fn counters(&self) -> ServerCounters {
        ServerCounters {
            accepted: self.accepted.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
        }
    }
}

/// A running server; dropping it shuts the server down.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound address (use with port `0` in tests).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current serving counters.
    pub fn counters(&self) -> ServerCounters {
        self.shared.counters()
    }

    /// Stop accepting, drain every queued connection, and wait for all
    /// threads to exit.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Bind `addr` and start serving `state` with `config`.
pub fn serve(
    state: Arc<ServerState>,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let shared = Arc::new(Shared {
        state,
        config: config.clone(),
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        shutdown: AtomicBool::new(false),
        accepted: AtomicU64::new(0),
        served: AtomicU64::new(0),
        shed: AtomicU64::new(0),
    });

    let workers: Vec<_> = (0..config.workers.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name(format!("elinda-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker thread")
        })
        .collect();

    let acceptor = {
        let shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("elinda-acceptor".into())
            .spawn(move || accept_loop(listener, &shared))
            .expect("spawn acceptor thread")
    };

    Ok(ServerHandle {
        shared,
        addr: local,
        acceptor: Some(acceptor),
        workers,
    })
}

fn accept_loop(listener: TcpListener, shared: &Shared) {
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                // The listener is non-blocking so the loop can observe
                // shutdown; handled connections must block normally.
                let _ = stream.set_nonblocking(false);
                let enqueued = {
                    let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                    if queue.len() < shared.config.queue_depth {
                        queue.push_back(stream);
                        true
                    } else {
                        drop(queue);
                        shed(stream, shared);
                        false
                    }
                };
                if enqueued {
                    shared.accepted.fetch_add(1, Ordering::Relaxed);
                    shared.available.notify_one();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => thread::sleep(Duration::from_millis(2)),
        }
    }
    // Dropping the listener here closes the accept socket, so clients
    // connecting after shutdown are refused rather than left hanging.
}

fn shed(stream: TcpStream, shared: &Shared) {
    shared.shed.fetch_add(1, Ordering::Relaxed);
    // Drain the request before answering: closing a socket with unread
    // received data makes the kernel send RST, which can destroy the
    // 503 before the client reads it. The timeout bounds how long a
    // slow-writing client can occupy the acceptor.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut reader = BufReader::new(stream);
    let _ = Request::parse(&mut reader);
    let mut stream = reader.into_inner();
    let response =
        Response::text(503, "server overloaded, retry later\n").header("Retry-After", "1");
    let _ = response.write_to(&mut stream);
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                let (guard, _) = shared
                    .available
                    .wait_timeout(queue, Duration::from_millis(100))
                    .unwrap_or_else(|e| e.into_inner());
                queue = guard;
            }
        };
        match stream {
            Some(stream) => {
                handle_connection(stream, shared);
                shared.served.fetch_add(1, Ordering::Relaxed);
            }
            // Shutdown requested and the queue is fully drained.
            None => return,
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    if !shared.config.handler_delay.is_zero() {
        thread::sleep(shared.config.handler_delay);
    }
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.read_timeout));
    let mut reader = BufReader::new(stream);
    let response = match Request::parse(&mut reader) {
        // A panic while routing (a poisoned query, a bug in an engine)
        // must cost this request a 500, not the pool a worker.
        Ok(request) => {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| route(&request, shared)))
                .unwrap_or_else(|_| Response::text(500, "internal server error\n"))
        }
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            Response::text(400, format!("bad request: {e}\n"))
        }
        // The client sent part of a request and then stalled until the
        // socket read timeout: tell it so instead of silently dropping.
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
            ) =>
        {
            Response::text(408, "request timed out waiting for the client\n")
        }
        // Client vanished before sending a full request.
        Err(_) => return,
    };
    let mut stream = reader.into_inner();
    let _ = response.write_to(&mut stream);
    let _ = stream.flush();
}

fn route(request: &Request, shared: &Shared) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/health") => Response::text(200, "ok\n"),
        ("GET", "/metrics") => metrics(shared),
        ("GET", "/sparql") | ("POST", "/sparql") => sparql(request, shared),
        (_, "/health" | "/metrics" | "/sparql") => Response::text(405, "method not allowed\n"),
        _ => Response::text(404, "not found\n"),
    }
}

fn metrics(shared: &Shared) -> Response {
    let counters = shared.counters();
    let depth = shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len();
    let mut body = shared.state.metrics_text();
    body.push_str(&format!(
        "elinda_server_accepted_total {}\n",
        counters.accepted
    ));
    body.push_str(&format!("elinda_server_served_total {}\n", counters.served));
    body.push_str(&format!("elinda_server_shed_total {}\n", counters.shed));
    body.push_str(&format!("elinda_server_queue_depth {depth}\n"));
    body.push_str(&format!(
        "elinda_server_workers {}\n",
        shared.config.workers
    ));
    Response::text(200, body)
}

/// Extract the query text per the SPARQL protocol: `?query=` on GET,
/// and on POST either a raw `application/sparql-query` body or a
/// `query=` pair in a form-encoded body.
fn query_text(request: &Request) -> Option<String> {
    if request.method == "GET" {
        return request.param("query").map(str::to_string);
    }
    let content_type = request.header("content-type").unwrap_or("");
    let body = String::from_utf8_lossy(&request.body);
    if content_type.starts_with("application/sparql-query") {
        return Some(body.into_owned());
    }
    parse_query_pairs(&body)
        .into_iter()
        .find(|(name, _)| name == "query")
        .map(|(_, value)| value)
        .or_else(|| request.param("query").map(str::to_string))
}

fn sparql(request: &Request, shared: &Shared) -> Response {
    let Some(query) = query_text(request) else {
        return Response::text(400, "missing required `query` parameter\n");
    };
    let deadline = match shared.config.request_deadline {
        Some(budget) => Deadline::within(budget),
        None => Deadline::unbounded(),
    };
    match shared.state.execute_json_with(&query, deadline) {
        Ok((body, served_by)) => {
            Response::sparql_json(200, body).header("X-Elinda-Served-By", served_by_name(served_by))
        }
        Err(ServeError::Query(e)) => Response::text(400, format!("query error: {e}\n")),
        Err(ServeError::DeadlineExceeded) => {
            Response::text(504, "deadline exceeded before an answer was produced\n")
        }
        Err(ServeError::Unavailable(msg)) => {
            Response::text(503, format!("backend unavailable: {msg}\n")).header("Retry-After", "1")
        }
        Err(ServeError::Transient(msg)) => {
            Response::text(502, format!("upstream failure: {msg}\n"))
        }
    }
}
