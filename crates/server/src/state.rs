//! Shared serving state: one [`TripleStore`] and one metered eLinda
//! endpoint, owned behind `Arc`s and queried concurrently by every
//! worker thread.

use elinda_endpoint::json::encode_solutions;
use elinda_endpoint::{ElindaEndpoint, EndpointConfig, MeteredEndpoint, QueryEngine, ServedBy};
use elinda_sparql::exec::QueryError;
use elinda_store::TripleStore;
use std::sync::Arc;

/// The four serving components, in /metrics and report order.
pub const COMPONENTS: [ServedBy; 4] = [
    ServedBy::Direct,
    ServedBy::Hvs,
    ServedBy::Decomposer,
    ServedBy::Remote,
];

/// Stable lowercase name for a serving component, used in the
/// `X-Elinda-Served-By` response header and `/metrics` labels.
pub fn served_by_name(component: ServedBy) -> &'static str {
    match component {
        ServedBy::Direct => "direct",
        ServedBy::Hvs => "hvs",
        ServedBy::Decomposer => "decomposer",
        ServedBy::Remote => "remote",
    }
}

/// Everything a worker needs to answer a request.
///
/// The store is held in an `Arc` shared with the endpoint (which owns
/// its own clone), so the whole state is a cheap-to-share, `Send + Sync`
/// value: workers execute queries through `&self` and the endpoint's
/// interior mutability (HVS cache, metrics) handles concurrent updates.
pub struct ServerState {
    store: Arc<TripleStore>,
    endpoint: MeteredEndpoint<ElindaEndpoint<Arc<TripleStore>>>,
}

impl ServerState {
    /// Build serving state over a store with the given endpoint
    /// configuration.
    pub fn new(store: Arc<TripleStore>, config: EndpointConfig) -> ServerState {
        let endpoint = MeteredEndpoint::new(ElindaEndpoint::new(Arc::clone(&store), config));
        ServerState { store, endpoint }
    }

    /// The shared store.
    pub fn store(&self) -> &TripleStore {
        &self.store
    }

    /// The metered endpoint.
    pub fn endpoint(&self) -> &MeteredEndpoint<ElindaEndpoint<Arc<TripleStore>>> {
        &self.endpoint
    }

    /// Execute a query and encode the result in the SPARQL-JSON wire
    /// format, reporting which component served it.
    pub fn execute_json(&self, query: &str) -> Result<(String, ServedBy), QueryError> {
        let outcome = self.endpoint.execute(query)?;
        let body = encode_solutions(&outcome.solutions, &self.store);
        Ok((body, outcome.served_by))
    }

    /// Per-component latency metrics in a line-oriented text format
    /// (count, mean and tail percentiles in microseconds).
    pub fn metrics_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "elinda_queries_total {}\n",
            self.endpoint.total_queries()
        ));
        for component in COMPONENTS {
            let name = served_by_name(component);
            let summary = self.endpoint.summary(component);
            out.push_str(&format!(
                "elinda_component_queries_total{{component=\"{name}\"}} {}\n",
                summary.count
            ));
            out.push_str(&format!(
                "elinda_component_latency_mean_us{{component=\"{name}\"}} {}\n",
                summary.mean().as_micros()
            ));
            for (label, value) in [
                ("p50", summary.p50()),
                ("p95", summary.p95()),
                ("p99", summary.p99()),
            ] {
                out.push_str(&format!(
                    "elinda_component_latency_{label}_us{{component=\"{name}\"}} {}\n",
                    value.unwrap_or_default().as_micros()
                ));
            }
        }
        if let Some(stats) = self.endpoint.inner().parallel_stats() {
            out.push_str(&format!(
                "elinda_parallel_queries_total {}\n",
                stats.queries
            ));
            for (i, busy) in stats.shard_busy.iter().enumerate() {
                out.push_str(&format!(
                    "elinda_parallel_shard_busy_us{{shard=\"{i}\"}} {}\n",
                    busy.as_micros()
                ));
            }
            out.push_str(&format!(
                "elinda_parallel_wall_us {}\n",
                stats.wall.as_micros()
            ));
            out.push_str(&format!("elinda_parallel_speedup {:.3}\n", stats.speedup()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> ServerState {
        let store =
            TripleStore::from_turtle("@prefix ex: <http://e/> . ex:a a ex:C . ex:b a ex:C .")
                .unwrap();
        ServerState::new(Arc::new(store), EndpointConfig::full())
    }

    #[test]
    fn execute_json_matches_in_process_encoding() {
        let s = state();
        let q = "SELECT ?s WHERE { ?s a <http://e/C> }";
        let (body, served_by) = s.execute_json(q).unwrap();
        let direct = s.endpoint().inner().execute(q).unwrap();
        assert_eq!(body, encode_solutions(&direct.solutions, s.store()));
        assert_eq!(served_by, ServedBy::Direct);
    }

    #[test]
    fn execute_json_surfaces_query_errors() {
        assert!(state().execute_json("SELECT nonsense").is_err());
    }

    #[test]
    fn metrics_text_reports_parallel_gauges_when_enabled() {
        use elinda_endpoint::decomposer::{property_expansion_sparql, ExpansionDirection};
        use elinda_endpoint::Parallelism;

        let store = TripleStore::from_turtle("@prefix ex: <http://e/> . ex:a a ex:C ; ex:p ex:b .")
            .unwrap();
        let mut config = EndpointConfig::full();
        config.parallelism = Parallelism::fixed(2, 4);
        let s = ServerState::new(Arc::new(store), config);
        // No parallel queries yet: the gauges are present but zeroed.
        assert!(s.metrics_text().contains("elinda_parallel_queries_total 0"));
        let q = property_expansion_sparql("http://e/C", ExpansionDirection::Outgoing);
        s.execute_json(&q).unwrap();
        let text = s.metrics_text();
        assert!(text.contains("elinda_parallel_queries_total 1"));
        assert!(text.contains("elinda_parallel_shard_busy_us{shard=\"0\"}"));
        assert!(text.contains("elinda_parallel_shard_busy_us{shard=\"3\"}"));
        assert!(text.contains("elinda_parallel_wall_us"));
        assert!(text.contains("elinda_parallel_speedup"));
        // A sequential endpoint emits no parallel section at all.
        assert!(!state().metrics_text().contains("elinda_parallel"));
    }

    #[test]
    fn metrics_text_reports_each_component() {
        let s = state();
        s.execute_json("SELECT ?s WHERE { ?s a <http://e/C> }")
            .unwrap();
        let text = s.metrics_text();
        assert!(text.contains("elinda_queries_total 1"));
        for component in COMPONENTS {
            let name = served_by_name(component);
            assert!(text.contains(&format!(
                "elinda_component_queries_total{{component=\"{name}\"}}"
            )));
            assert!(text.contains(&format!(
                "elinda_component_latency_p99_us{{component=\"{name}\"}}"
            )));
        }
    }
}
