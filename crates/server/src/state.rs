//! Shared serving state: one [`TripleStore`] and one metered, fault-
//! tolerant eLinda endpoint, owned behind `Arc`s and queried
//! concurrently by every worker thread.
//!
//! The serving stack is `MeteredEndpoint<ResilientEndpoint>`: the
//! resilient wrapper supplies per-request deadlines, retry/backoff, the
//! circuit breaker, and the degradation ladder; the metering wrapper
//! sits outside it so degraded serves are measured per component like
//! every other path.

use elinda_endpoint::json::encode_solutions;
use elinda_endpoint::resilience::Deadline;
use elinda_endpoint::{
    decode_update, encode_update, ApplyOutcome, BreakerState, CompactionReport, ElindaEndpoint,
    EndpointConfig, ExplainReport, FabricConfig, FabricCoordinator, LatencySummary,
    MeteredEndpoint, NoveltyConfig, NoveltyStats, NoveltyStore, QueryContext, QueryEngine,
    ResilienceConfig, ResilienceStats, ResilientEndpoint, ServeError, ServedBy, ShardEvaluator,
    StageStats, TraceCtx, TraceRing,
};
use elinda_sparql::parse_update;
use elinda_store::{StoreBackend, TripleStore, Wal, WalError, WalRecovery};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How many sampled traces the in-memory ring retains for
/// `GET /debug/trace/<id>`.
pub const TRACE_RING_CAPACITY: usize = 64;

/// The serving components, in /metrics and report order.
pub const COMPONENTS: [ServedBy; 9] = [
    ServedBy::Direct,
    ServedBy::Hvs,
    ServedBy::Decomposer,
    ServedBy::Remote,
    ServedBy::CacheHit,
    ServedBy::Incremental,
    ServedBy::Fabric,
    ServedBy::DegradedStale,
    ServedBy::DegradedLocal,
];

/// Stable lowercase name for a serving component, used in the
/// `X-Elinda-Served-By` response header and `/metrics` labels.
pub fn served_by_name(component: ServedBy) -> &'static str {
    match component {
        ServedBy::Direct => "direct",
        ServedBy::Hvs => "hvs",
        ServedBy::Decomposer => "decomposer",
        ServedBy::Remote => "remote",
        ServedBy::CacheHit => "cache-hit",
        ServedBy::Incremental => "incremental",
        ServedBy::Fabric => "fabric",
        ServedBy::DegradedStale => "degraded-stale",
        ServedBy::DegradedLocal => "degraded-local",
    }
}

/// Everything a worker needs to answer a request.
///
/// The store is held in an `Arc` shared with the endpoint (which owns
/// its own clone), so the whole state is a cheap-to-share, `Send + Sync`
/// value: workers execute queries through `&self` and the endpoint's
/// interior mutability (HVS cache, breaker, metrics) handles concurrent
/// updates.
pub struct ServerState {
    store: Arc<TripleStore>,
    /// The router, kept aside for the parallel-execution gauges; `None`
    /// when the state was built over a custom engine
    /// ([`ServerState::with_engine`]).
    router: Option<Arc<ElindaEndpoint<Arc<TripleStore>>>>,
    /// The write path: the novelty overlay `POST /update` applies into
    /// and the background compactor folds down. `None` when the state
    /// was built over a custom engine — the local store is then only a
    /// read fallback and accepting writes against it would silently
    /// diverge from the primary.
    novelty: Option<Arc<NoveltyStore>>,
    /// Where compacted bases go for durability. `None` means memory-only
    /// serving (the pre-persistence behaviour, bit for bit).
    backend: Option<Arc<dyn StoreBackend>>,
    /// The durable write-ahead log. When attached, `POST /update` acks
    /// only after the record is appended (and fsynced per the sync
    /// policy), and compaction seals + discards log segments once the
    /// folded base is durably persisted.
    wal: Option<Arc<Wal>>,
    /// What WAL recovery replayed at startup, frozen for `/metrics`.
    wal_replay: WalReplayReport,
    endpoint: MeteredEndpoint<ResilientEndpoint>,
    /// The scatter-gather coordinator, kept aside for the
    /// `elinda_fabric_*` metrics. `Some` only in coordinator role.
    fabric: Option<Arc<FabricCoordinator>>,
    /// The shard-side partial-aggregate evaluator behind
    /// `POST /shard/eval`. `Some` only in shard role.
    shard_eval: Option<Arc<ShardEvaluator>>,
    traces: TraceRing,
    stage_stats: StageStats,
    persist_stats: PersistStats,
}

/// What replaying the WAL tail did at startup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalReplayReport {
    /// Log records decoded and re-applied into the novelty overlay.
    pub replayed_records: u64,
    /// Ground triples those records carried (including no-ops).
    pub replayed_triples: u64,
    /// Bytes truncated from the log tail as torn or corrupt.
    pub truncated_bytes: u64,
    /// Whether a torn tail was detected (and truncated) during the scan.
    pub torn: bool,
}

/// Persistence counters for `/metrics`.
#[derive(Default)]
struct PersistStats {
    /// Generations committed by post-compaction persists.
    persisted: AtomicU64,
    /// Persist attempts that failed (the in-memory fold still stands;
    /// the previous on-disk generation keeps serving restarts).
    failures: AtomicU64,
    /// The latest committed generation number (0 before any persist).
    generation: AtomicU64,
}

impl ServerState {
    /// Build serving state over a store with the given endpoint
    /// configuration and default (pass-through) resilience policies.
    pub fn new(store: Arc<TripleStore>, config: EndpointConfig) -> ServerState {
        ServerState::with_resilience(store, config, ResilienceConfig::default())
    }

    /// Build serving state with explicit resilience policies (deadline
    /// default, retry, breaker) and the default novelty-overlay
    /// threshold.
    pub fn with_resilience(
        store: Arc<TripleStore>,
        config: EndpointConfig,
        resilience: ResilienceConfig,
    ) -> ServerState {
        ServerState::with_write_config(store, config, resilience, NoveltyConfig::default())
    }

    /// [`ServerState::with_resilience`] with an explicit write-path
    /// configuration (the novelty size threshold that signals the
    /// background compactor).
    pub fn with_write_config(
        store: Arc<TripleStore>,
        config: EndpointConfig,
        resilience: ResilienceConfig,
        novelty_config: NoveltyConfig,
    ) -> ServerState {
        let novelty = Arc::new(NoveltyStore::new(Arc::clone(&store), novelty_config));
        let router = Arc::new(ElindaEndpoint::with_novelty(
            Arc::clone(&store),
            config,
            Arc::clone(&novelty),
        ));
        let mut resilient = ResilientEndpoint::new(Box::new(Arc::clone(&router)), resilience);
        if let Some(cache) = router.result_cache() {
            resilient = resilient.with_stale_source(Arc::clone(cache));
        }
        ServerState {
            store,
            router: Some(router),
            novelty: Some(novelty),
            backend: None,
            wal: None,
            wal_replay: WalReplayReport::default(),
            endpoint: MeteredEndpoint::new(resilient),
            fabric: None,
            shard_eval: None,
            traces: TraceRing::new(TRACE_RING_CAPACITY),
            stage_stats: StageStats::new(),
            persist_stats: PersistStats::default(),
        }
    }

    /// [`ServerState::with_write_config`] over a [`StoreBackend`]: the
    /// startup store is the backend's committed snapshot, and every
    /// successful compaction is persisted back through it as a new
    /// generation (reported in the [`CompactionReport`]).
    pub fn with_backend(
        backend: Arc<dyn StoreBackend>,
        config: EndpointConfig,
        resilience: ResilienceConfig,
        novelty_config: NoveltyConfig,
    ) -> ServerState {
        let mut state =
            ServerState::with_write_config(backend.snapshot(), config, resilience, novelty_config);
        if let Some(generation) = backend.committed_generation() {
            state
                .persist_stats
                .generation
                .store(generation, Ordering::Relaxed);
        }
        state.backend = Some(backend);
        state
    }

    /// Attach an opened write-ahead log and replay its recovered tail
    /// into the novelty overlay: every record the log acked after the
    /// last persisted generation is re-applied (ground `INSERT DATA` /
    /// `DELETE DATA` replay is idempotent, so records already folded
    /// into the loaded base are harmless no-ops). Must run before the
    /// state starts serving; after it, `apply_update` acks only once
    /// the record is durable per the log's sync policy.
    ///
    /// A record that fails to decode is structural corruption *behind a
    /// valid checksum* — the typed error propagates and the server
    /// refuses to start rather than silently inventing or dropping
    /// acked writes.
    pub fn attach_wal(
        &mut self,
        wal: Arc<Wal>,
        recovery: &WalRecovery,
    ) -> Result<WalReplayReport, WalError> {
        let novelty = self.novelty.as_ref().ok_or_else(|| {
            WalError::corrupt("wal", "no write path to replay into (custom engine state)")
        })?;
        let mut report = WalReplayReport {
            truncated_bytes: recovery.truncated_bytes,
            torn: recovery.torn.is_some(),
            ..WalReplayReport::default()
        };
        for record in &recovery.records {
            let label = format!("wal record #{}", record.seq);
            let update = decode_update(&label, &record.payload)?;
            report.replayed_triples += update.triple_count() as u64;
            report.replayed_records += 1;
            // Plain apply: these records are already in the log.
            novelty.apply(&update);
        }
        if let Some(router) = self.router.as_ref() {
            if report.replayed_records > 0 {
                router.refresh();
            }
        }
        self.wal = Some(wal);
        self.wal_replay = report;
        Ok(report)
    }

    /// The attached write-ahead log, if any.
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.wal.as_ref()
    }

    /// What WAL recovery replayed at startup (zeroes when no WAL is
    /// attached or the log was clean).
    pub fn wal_replay(&self) -> WalReplayReport {
        self.wal_replay
    }

    /// Build serving state whose primary engine is arbitrary — a faulty
    /// simulated remote, a panicking stub — wrapped in the resilient
    /// stack, with the local eLinda router as the degradation-ladder
    /// fallback.
    pub fn with_engine(
        store: Arc<TripleStore>,
        primary: Box<dyn QueryEngine>,
        resilience: ResilienceConfig,
        local_fallback: bool,
    ) -> ServerState {
        let router = Arc::new(ElindaEndpoint::new(
            Arc::clone(&store),
            EndpointConfig::full(),
        ));
        let mut resilient = ResilientEndpoint::new(primary, resilience);
        if local_fallback {
            resilient = resilient.with_fallback(Box::new(Arc::clone(&router)));
        }
        if let Some(cache) = router.result_cache() {
            resilient = resilient.with_stale_source(Arc::clone(cache));
        }
        ServerState {
            store,
            router: Some(router),
            novelty: None,
            backend: None,
            wal: None,
            wal_replay: WalReplayReport::default(),
            endpoint: MeteredEndpoint::new(resilient),
            fabric: None,
            shard_eval: None,
            traces: TraceRing::new(TRACE_RING_CAPACITY),
            stage_stats: StageStats::new(),
            persist_stats: PersistStats::default(),
        }
    }

    /// Build coordinator-role serving state: the primary engine is a
    /// [`FabricCoordinator`] scattering recognized chart queries across
    /// the shard fleet, with the local eLinda router both as its
    /// delegate for non-chart queries and as the degradation-ladder
    /// fallback when the gather fails — the "partial coverage →
    /// stale/local fallback" rung. Coordinator state has no write path:
    /// shard processes each hold their own copy of the dataset, so a
    /// local-only update would silently diverge the fleet.
    pub fn with_fabric(
        store: Arc<TripleStore>,
        fabric: FabricConfig,
        config: EndpointConfig,
        resilience: ResilienceConfig,
    ) -> ServerState {
        let router = Arc::new(ElindaEndpoint::new(Arc::clone(&store), config));
        let coordinator = Arc::new(FabricCoordinator::new(
            Arc::clone(&store),
            fabric,
            Box::new(Arc::clone(&router)),
        ));
        let mut resilient = ResilientEndpoint::new(Box::new(Arc::clone(&coordinator)), resilience)
            .with_fallback(Box::new(Arc::clone(&router)));
        if let Some(cache) = router.result_cache() {
            resilient = resilient.with_stale_source(Arc::clone(cache));
        }
        ServerState {
            store,
            router: Some(router),
            novelty: None,
            backend: None,
            wal: None,
            wal_replay: WalReplayReport::default(),
            endpoint: MeteredEndpoint::new(resilient),
            fabric: Some(coordinator),
            shard_eval: None,
            traces: TraceRing::new(TRACE_RING_CAPACITY),
            stage_stats: StageStats::new(),
            persist_stats: PersistStats::default(),
        }
    }

    /// Switch this state into shard role: partition the loaded store as
    /// shard `shard_id` of `num_shards` and start answering
    /// `POST /shard/eval` with partial aggregates over that partition.
    /// The ordinary read path keeps serving the full local store.
    pub fn enable_shard_eval(&mut self, shard_id: usize, num_shards: usize) -> Result<(), String> {
        let evaluator = ShardEvaluator::new(Arc::clone(&self.store), shard_id, num_shards)?;
        self.shard_eval = Some(Arc::new(evaluator));
        Ok(())
    }

    /// The scatter-gather coordinator, in coordinator role.
    pub fn fabric(&self) -> Option<&Arc<FabricCoordinator>> {
        self.fabric.as_ref()
    }

    /// The shard-side partial-aggregate evaluator, in shard role.
    pub fn shard_evaluator(&self) -> Option<&Arc<ShardEvaluator>> {
        self.shard_eval.as_ref()
    }

    /// The shared store.
    pub fn store(&self) -> &TripleStore {
        &self.store
    }

    /// The metered resilient endpoint.
    pub fn endpoint(&self) -> &MeteredEndpoint<ResilientEndpoint> {
        &self.endpoint
    }

    /// The fault-tolerance counters (retries, breaker transitions,
    /// deadline expiries, degraded serves).
    pub fn resilience_stats(&self) -> ResilienceStats {
        self.endpoint.inner().stats()
    }

    /// Execute a query with no deadline and encode the result in the
    /// SPARQL-JSON wire format, reporting which component served it.
    pub fn execute_json(&self, query: &str) -> Result<(String, ServedBy), ServeError> {
        self.execute_json_with(query, Deadline::unbounded())
    }

    /// [`ServerState::execute_json`] under a per-request deadline.
    pub fn execute_json_with(
        &self,
        query: &str,
        deadline: Deadline,
    ) -> Result<(String, ServedBy), ServeError> {
        self.execute_json_traced(query, deadline, TraceCtx::disabled())
    }

    /// [`ServerState::execute_json_with`] under a request-scoped trace
    /// context. If the trace is sampled, the finished span tree is
    /// folded into the per-stage latency histograms and retained in the
    /// ring for `GET /debug/trace/<id>`; a disabled trace adds no work.
    pub fn execute_json_traced(
        &self,
        query: &str,
        deadline: Deadline,
        trace: TraceCtx,
    ) -> Result<(String, ServedBy), ServeError> {
        let ctx = QueryContext::with_deadline_and_trace(deadline, trace.clone());
        let result = self.endpoint.execute_with(query, &ctx).map(|outcome| {
            let body = {
                let _span = trace.span("serialize");
                // Resolve term ids against the novelty view when the
                // write path is live: solutions touching uncompacted
                // inserts reference terms the base store never interned.
                // The view's interner is append-only across update and
                // compaction generations, so resolving an older
                // outcome's ids against the latest view is always sound.
                let view = self.novelty.as_ref().map(|n| n.view());
                let store: &TripleStore = view.as_deref().unwrap_or(&self.store);
                encode_solutions(&outcome.solutions, store)
            };
            (body, outcome.served_by)
        });
        if trace.is_enabled() {
            let outcome_tag = match &result {
                Ok(_) => "ok".to_string(),
                Err(e) => format!("error/{}", serve_error_kind(e)),
            };
            drop(ctx);
            if let Some(finished) = trace.finish(&outcome_tag) {
                self.stage_stats.observe(&finished);
                self.traces.push(finished);
            }
        }
        result
    }

    /// Parse and apply a SPARQL UPDATE (`INSERT DATA` / `DELETE DATA`)
    /// against the novelty overlay. An unparsable update string maps to
    /// [`ServeError::Malformed`] (HTTP 400); a state built over a custom
    /// engine has no write path and answers [`ServeError::Unavailable`].
    pub fn apply_update(&self, text: &str) -> Result<ApplyOutcome, ServeError> {
        self.apply_update_traced(text, TraceCtx::disabled())
    }

    /// [`ServerState::apply_update`] under a request-scoped trace: the
    /// parse and apply work is recorded as `parse` and `write` stages.
    pub fn apply_update_traced(
        &self,
        text: &str,
        trace: TraceCtx,
    ) -> Result<ApplyOutcome, ServeError> {
        let novelty = self.novelty.as_ref().ok_or_else(|| {
            ServeError::Unavailable("no local write path over a custom engine".into())
        })?;
        let result = (|| {
            let update = {
                let _span = trace.span("parse");
                parse_update(text).map_err(|e| ServeError::Malformed(e.to_string()))?
            };
            let outcome = {
                let mut span = trace.span("write");
                let outcome = match self.wal.as_ref() {
                    None => novelty.apply(&update),
                    Some(wal) => {
                        // Durability ordering: the record is appended
                        // under the overlay write lock (log order ==
                        // apply order) and fsynced per the sync policy
                        // before the request is acked. Append failures
                        // leave the overlay untouched; a sync failure
                        // leaves the update applied in memory but
                        // unacked — the client must retry, and ground
                        // replay is idempotent.
                        let payload = encode_update(&update);
                        let mut pos = None;
                        let outcome = novelty
                            .apply_with(&update, |_| wal.append(&payload).map(|p| pos = Some(p)))
                            .map_err(|e| {
                                ServeError::Unavailable(format!(
                                    "write-ahead log append failed: {e}"
                                ))
                            })?;
                        if let Some(pos) = pos {
                            wal.sync_to(pos).map_err(|e| {
                                ServeError::Unavailable(format!("write-ahead log sync failed: {e}"))
                            })?;
                        }
                        outcome
                    }
                };
                if trace.is_enabled() {
                    span.tag("inserted", outcome.inserted.to_string());
                    span.tag("deleted", outcome.deleted.to_string());
                    span.tag("novelty", outcome.novelty.to_string());
                }
                outcome
            };
            Ok(outcome)
        })();
        if trace.is_enabled() {
            let outcome_tag = match &result {
                Ok(_) => "ok".to_string(),
                Err(e) => format!("error/{}", serve_error_kind(e)),
            };
            if let Some(finished) = trace.finish(&outcome_tag) {
                self.stage_stats.observe(&finished);
                self.traces.push(finished);
            }
        }
        result
    }

    /// Fold the novelty overlay into a new base store and refresh the
    /// router's index generation, recording the work as a `compact`
    /// stage. `None` when there is nothing staged (or no write path).
    pub fn compact_now(&self) -> Option<CompactionReport> {
        let router = self.router.as_ref()?;
        let novelty = self.novelty.as_ref()?;
        if !novelty.is_dirty() {
            return None;
        }
        let trace = TraceCtx::sampled(format!("compact-e{}", novelty.epoch()));
        // When a WAL is attached, seal its active segment at the exact
        // fold point (under the overlay write lock): every record in the
        // sealed prefix is covered by the folded base, every later
        // record is novelty on top of it.
        let mut sealed: Option<Result<u64, WalError>> = None;
        let mut report = {
            let mut span = trace.span("compact");
            let report = match self.wal.as_ref() {
                None => router.compact(),
                Some(wal) => router.compact_with(|| sealed = Some(wal.seal())),
            };
            if let Some(r) = &report {
                span.tag("folded", r.folded.to_string());
                span.tag("epoch", r.epoch.to_string());
            }
            report
        };
        // Commit the freshly folded base through the backend so a
        // restart resumes from it. A persist failure does not undo the
        // in-memory fold — the previous on-disk generation stays
        // committed and keeps serving restarts — so it is counted and
        // logged, not propagated.
        if let (Some(r), Some(backend)) = (report.as_mut(), self.backend.as_ref()) {
            let mut span = trace.span("persist");
            match backend.persist(&novelty.base()) {
                Ok(Some(generation)) => {
                    r.persisted_generation = Some(generation);
                    self.persist_stats.persisted.fetch_add(1, Ordering::Relaxed);
                    self.persist_stats
                        .generation
                        .store(generation, Ordering::Relaxed);
                    span.tag("generation", generation.to_string());
                }
                Ok(None) => {}
                Err(e) => {
                    self.persist_stats.failures.fetch_add(1, Ordering::Relaxed);
                    span.tag("error", e.to_string());
                    eprintln!(
                        "persist-error: generation={} kind={} error={e}",
                        self.persist_stats.generation.load(Ordering::Relaxed),
                        e.kind()
                    );
                }
            }
        }
        // WAL rotation: the sealed prefix becomes garbage only once the
        // folded base it describes is durably committed. On a seal
        // failure, a failed persist, or a memory-only backend, the
        // segments stay — recovery replay is idempotent, so replaying
        // already-folded records on top of an older base is safe.
        if let Some(wal) = self.wal.as_ref() {
            match sealed {
                Some(Ok(sealed_through)) => {
                    let durable = report
                        .as_ref()
                        .is_some_and(|r| r.persisted_generation.is_some());
                    if durable {
                        if let Err(e) = wal.discard_sealed(sealed_through) {
                            eprintln!(
                                "wal-error: op=discard segment={sealed_through} kind={} error={e}",
                                e.kind()
                            );
                        }
                    }
                }
                Some(Err(e)) => {
                    eprintln!("wal-error: op=seal kind={} error={e}", e.kind());
                }
                None => {}
            }
        }
        // A concurrent compactor may have won the race; only a real
        // fold is worth a trace-ring slot and a histogram sample.
        if report.is_some() {
            if let Some(finished) = trace.finish("ok") {
                self.stage_stats.observe(&finished);
                self.traces.push(finished);
            }
        }
        report
    }

    /// Drain-time flush of the write path: fold and persist any staged
    /// novelty (which also seals and rotates the WAL when the fold is
    /// durable), then force a final WAL fsync so the log covers every
    /// acked write byte-for-byte before the process exits. Errors are
    /// logged, not propagated — shutdown proceeds regardless, and
    /// recovery replay covers whatever the flush could not.
    pub fn shutdown_flush(&self) -> Option<CompactionReport> {
        let report = self.compact_now();
        if let Some(wal) = self.wal.as_ref() {
            if let Err(e) = wal.sync() {
                eprintln!("wal-error: op=shutdown-sync kind={} error={e}", e.kind());
            }
        }
        report
    }

    /// The storage backend, when one is attached.
    pub fn backend(&self) -> Option<&Arc<dyn StoreBackend>> {
        self.backend.as_ref()
    }

    /// The novelty overlay, when the write path is live.
    pub fn novelty(&self) -> Option<&Arc<NoveltyStore>> {
        self.novelty.as_ref()
    }

    /// Write-path counters (updates, staged novelty, compactions);
    /// `None` when the state has no write path.
    pub fn novelty_stats(&self) -> Option<NoveltyStats> {
        self.novelty.as_ref().map(|n| n.stats())
    }

    /// The ring of recently sampled traces.
    pub fn trace_ring(&self) -> &TraceRing {
        &self.traces
    }

    /// Snapshot of the per-stage latency histograms fed by sampled
    /// traces (canonical stages first, even when unobserved).
    pub fn stage_snapshot(&self) -> Vec<(String, LatencySummary)> {
        self.stage_stats.snapshot()
    }

    /// Predict how the router would serve `query` without executing it.
    /// `None` when the state was built over a custom engine and no
    /// local router exists.
    pub fn explain(&self, query: &str) -> Option<ExplainReport> {
        self.router.as_ref().map(|r| r.explain(query))
    }

    /// Snapshot of the router's result-cache counters; `None` when the
    /// state has no local router or its cache is disabled.
    pub fn cache_stats(&self) -> Option<elinda_endpoint::CacheStats> {
        self.router.as_ref().and_then(|r| r.cache_stats())
    }

    /// Remaining open-state cooldown of the circuit breaker, `None`
    /// unless the breaker is currently open. Drives `Retry-After` on
    /// breaker-shed 503 responses.
    pub fn breaker_cooldown(&self) -> Option<Duration> {
        self.endpoint.inner().breaker().cooldown_remaining()
    }

    /// Per-component latency metrics plus fault-tolerance counters in a
    /// line-oriented text format (counts, mean and tail percentiles in
    /// microseconds).
    pub fn metrics_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "elinda_queries_total {}\n",
            self.endpoint.total_queries()
        ));
        for component in COMPONENTS {
            let name = served_by_name(component);
            let summary = self.endpoint.summary(component);
            out.push_str(&format!(
                "elinda_component_queries_total{{component=\"{name}\"}} {}\n",
                summary.count
            ));
            out.push_str(&format!(
                "elinda_component_latency_mean_us{{component=\"{name}\"}} {}\n",
                summary.mean().as_micros()
            ));
            for (label, value) in [
                ("p50", summary.p50()),
                ("p95", summary.p95()),
                ("p99", summary.p99()),
            ] {
                out.push_str(&format!(
                    "elinda_component_latency_{label}_us{{component=\"{name}\"}} {}\n",
                    value.unwrap_or_default().as_micros()
                ));
            }
        }
        let res = self.resilience_stats();
        out.push_str(&format!(
            "elinda_resilience_retries_total {}\n",
            res.retries
        ));
        out.push_str(&format!(
            "elinda_resilience_deadline_expiries_total {}\n",
            res.deadline_expiries
        ));
        out.push_str(&format!(
            "elinda_resilience_degraded_total {}\n",
            res.degraded_serves
        ));
        out.push_str(&format!(
            "elinda_resilience_unavailable_total {}\n",
            res.unavailable
        ));
        for (transition, count) in [
            ("opened", res.breaker.opened),
            ("half_opened", res.breaker.half_opened),
            ("closed", res.breaker.closed),
            ("rejected", res.breaker.rejected),
        ] {
            out.push_str(&format!(
                "elinda_breaker_transitions_total{{transition=\"{transition}\"}} {count}\n"
            ));
        }
        for (stage, summary) in self.stage_stats.snapshot() {
            out.push_str(&format!(
                "elinda_stage_latency_count{{stage=\"{stage}\"}} {}\n",
                summary.count
            ));
            out.push_str(&format!(
                "elinda_stage_latency_mean_us{{stage=\"{stage}\"}} {}\n",
                summary.mean().as_micros()
            ));
            for (label, value) in [
                ("p50", summary.p50()),
                ("p95", summary.p95()),
                ("p99", summary.p99()),
            ] {
                out.push_str(&format!(
                    "elinda_stage_latency_{label}_us{{stage=\"{stage}\"}} {}\n",
                    value.unwrap_or_default().as_micros()
                ));
            }
        }
        if let Some(stats) = self.router.as_ref().and_then(|r| r.parallel_stats()) {
            out.push_str(&format!(
                "elinda_parallel_queries_total {}\n",
                stats.queries
            ));
            for (i, busy) in stats.shard_busy.iter().enumerate() {
                out.push_str(&format!(
                    "elinda_parallel_shard_busy_us{{shard=\"{i}\"}} {}\n",
                    busy.as_micros()
                ));
            }
            out.push_str(&format!(
                "elinda_parallel_wall_us {}\n",
                stats.wall.as_micros()
            ));
            out.push_str(&format!("elinda_parallel_speedup {:.3}\n", stats.speedup()));
        }
        if let Some(router) = self.router.as_ref() {
            if let Some(stats) = router.cache_stats() {
                for (name, value) in [
                    ("hits", stats.hits),
                    ("misses", stats.misses),
                    ("stale_hits", stats.stale_hits),
                    ("insertions", stats.insertions),
                    ("evictions", stats.evictions),
                    ("invalidations", stats.invalidations),
                    ("frontier_hits", stats.frontier_hits),
                    ("frontier_misses", stats.frontier_misses),
                    ("frontier_insertions", stats.frontier_insertions),
                ] {
                    out.push_str(&format!("elinda_cache_{name}_total {value}\n"));
                }
                out.push_str(&format!("elinda_cache_entries {}\n", router.cache_len()));
                out.push_str(&format!("elinda_cache_bytes {}\n", router.cache_bytes()));
            }
        }
        if let Some(fabric) = self.fabric.as_ref() {
            let stats = fabric.stats();
            out.push_str("elinda_fabric_role{role=\"coordinator\"} 1\n");
            out.push_str(&format!("elinda_fabric_shards {}\n", fabric.num_shards()));
            for (name, value) in [
                ("scatter_queries_total", stats.scattered),
                ("gathered_total", stats.gathered),
                ("gather_failures_total", stats.gather_failures),
                ("local_queries_total", stats.local),
            ] {
                out.push_str(&format!("elinda_fabric_{name} {value}\n"));
            }
            for (i, client) in fabric.clients().iter().enumerate() {
                let s = client.stats();
                for (name, value) in [
                    ("requests", s.requests),
                    ("failures", s.failures),
                    ("reconnects", s.reconnects),
                    ("breaker_rejected", s.breaker_rejected),
                ] {
                    out.push_str(&format!(
                        "elinda_fabric_shard_{name}_total{{shard=\"{i}\"}} {value}\n"
                    ));
                }
                out.push_str(&format!(
                    "elinda_fabric_shard_breaker_open{{shard=\"{i}\"}} {}\n",
                    u8::from(client.breaker().state() == BreakerState::Open)
                ));
            }
        }
        if let Some(eval) = self.shard_eval.as_ref() {
            out.push_str("elinda_fabric_role{role=\"shard\"} 1\n");
            out.push_str(&format!("elinda_fabric_shard_id {}\n", eval.shard_id()));
            out.push_str(&format!("elinda_fabric_shards {}\n", eval.num_shards()));
            out.push_str(&format!(
                "elinda_fabric_partition_triples {}\n",
                eval.partition_len()
            ));
            out.push_str(&format!(
                "elinda_fabric_partials_total {}\n",
                eval.partials_served()
            ));
            out.push_str(&format!(
                "elinda_fabric_partial_rejects_total {}\n",
                eval.rejects()
            ));
        }
        if let Some(stats) = self.novelty_stats() {
            out.push_str(&format!("elinda_updates_total {}\n", stats.updates));
            for (name, value) in [
                ("applied_inserts", stats.inserts),
                ("applied_deletes", stats.deletes),
                ("noops", stats.noops),
            ] {
                out.push_str(&format!("elinda_novelty_{name}_total {value}\n"));
            }
            out.push_str(&format!(
                "elinda_novelty_triples {}\n",
                stats.novelty_triples
            ));
            out.push_str(&format!(
                "elinda_novelty_max_triples {}\n",
                self.novelty.as_ref().map_or(0, |n| n.max_triples())
            ));
            out.push_str(&format!("elinda_compaction_total {}\n", stats.compactions));
            out.push_str(&format!(
                "elinda_compaction_folded_triples_total {}\n",
                stats.folded_triples
            ));
            out.push_str(&format!(
                "elinda_compaction_last_us {}\n",
                stats.last_compaction_us
            ));
            out.push_str(&format!("elinda_data_epoch {}\n", stats.epoch));
            out.push_str(&format!("elinda_base_epoch {}\n", stats.base_epoch));
        }
        if let Some(backend) = self.backend.as_ref() {
            out.push_str(&format!("elinda_store_backend{{kind=\"{}\"}} 1\n", {
                // `describe()` may embed a path; metrics label only the
                // kind before the first parenthesis.
                let desc = backend.describe();
                desc.split('(').next().unwrap_or("unknown").to_string()
            }));
            out.push_str(&format!(
                "elinda_persist_generations_total {}\n",
                self.persist_stats.persisted.load(Ordering::Relaxed)
            ));
            out.push_str(&format!(
                "elinda_persist_failures_total {}\n",
                self.persist_stats.failures.load(Ordering::Relaxed)
            ));
            out.push_str(&format!(
                "elinda_persist_current_generation {}\n",
                self.persist_stats.generation.load(Ordering::Relaxed)
            ));
        }
        if let Some(wal) = self.wal.as_ref() {
            let stats = wal.stats();
            out.push_str(&format!(
                "elinda_wal_sync_policy{{policy=\"{}\"}} 1\n",
                wal.config().sync.name()
            ));
            for (name, value) in [
                ("appended_records_total", stats.appended_records),
                ("appended_bytes_total", stats.appended_bytes),
                ("fsyncs_total", stats.fsyncs),
                ("sync_failures_total", stats.sync_failures),
                ("last_fsync_us", stats.last_fsync_us),
                ("group_commit_last_batch", stats.last_batch),
                ("group_commit_max_batch", stats.max_batch),
                ("active_segment", stats.active_segment),
                ("discarded_segments_total", stats.discarded_segments),
                ("replayed_records", self.wal_replay.replayed_records),
                ("replayed_triples", self.wal_replay.replayed_triples),
                ("recovery_truncated_bytes", self.wal_replay.truncated_bytes),
                ("recovery_torn", self.wal_replay.torn as u64),
            ] {
                out.push_str(&format!("elinda_wal_{name} {value}\n"));
            }
        }
        out
    }
}

/// Stable lowercase tag for a [`ServeError`] variant, used as the
/// trace-outcome suffix (`error/<kind>`).
fn serve_error_kind(err: &ServeError) -> &'static str {
    match err {
        ServeError::Query(_) => "query",
        ServeError::DeadlineExceeded => "deadline",
        ServeError::Transient(_) => "transient",
        ServeError::Unavailable(_) => "unavailable",
        ServeError::Malformed(_) => "malformed",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elinda_endpoint::{BreakerConfig, QueryOutcome, RetryPolicy};
    use std::time::Duration;

    fn state() -> ServerState {
        let store =
            TripleStore::from_turtle("@prefix ex: <http://e/> . ex:a a ex:C . ex:b a ex:C .")
                .unwrap();
        ServerState::new(Arc::new(store), EndpointConfig::full())
    }

    #[test]
    fn execute_json_matches_in_process_encoding() {
        let s = state();
        let q = "SELECT ?s WHERE { ?s a <http://e/C> }";
        let (body, served_by) = s.execute_json(q).unwrap();
        let direct = s.endpoint().inner().execute(q).unwrap();
        assert_eq!(body, encode_solutions(&direct.solutions, s.store()));
        assert_eq!(served_by, ServedBy::Direct);
    }

    #[test]
    fn execute_json_surfaces_query_errors() {
        assert!(matches!(
            state().execute_json("SELECT nonsense"),
            Err(ServeError::Query(_))
        ));
    }

    #[test]
    fn expired_deadline_is_reported_and_counted() {
        let s = state();
        let err = s
            .execute_json_with(
                "SELECT ?s WHERE { ?s a <http://e/C> }",
                Deadline::at(std::time::Instant::now() - Duration::from_millis(1)),
            )
            .unwrap_err();
        assert!(matches!(err, ServeError::DeadlineExceeded));
        assert_eq!(s.resilience_stats().deadline_expiries, 1);
        assert!(s
            .metrics_text()
            .contains("elinda_resilience_deadline_expiries_total 1"));
    }

    #[test]
    fn flaky_primary_retries_then_degrades_to_local() {
        /// Fails transiently forever.
        struct Down;
        impl QueryEngine for Down {
            fn execute(&self, _q: &str) -> Result<QueryOutcome, ServeError> {
                Err(ServeError::Transient("connection refused".into()))
            }
            fn data_epoch(&self) -> u64 {
                0
            }
        }
        let store =
            TripleStore::from_turtle("@prefix ex: <http://e/> . ex:a a ex:C . ex:b a ex:C .")
                .unwrap();
        let resilience = ResilienceConfig {
            retry: RetryPolicy::new(2, Duration::from_micros(10), Duration::from_micros(50)),
            breaker: BreakerConfig {
                failure_threshold: 100,
                open_cooldown: Duration::from_millis(100),
            },
            ..ResilienceConfig::default()
        };
        let s = ServerState::with_engine(Arc::new(store), Box::new(Down), resilience, true);
        let (_, served_by) = s
            .execute_json("SELECT ?s WHERE { ?s a <http://e/C> }")
            .unwrap();
        assert_eq!(served_by, ServedBy::DegradedLocal);
        let stats = s.resilience_stats();
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.degraded_serves, 1);
        let text = s.metrics_text();
        assert!(text.contains("elinda_resilience_retries_total 2"));
        assert!(text.contains("elinda_resilience_degraded_total 1"));
        assert!(text.contains("component=\"degraded-local\"} 1"));
    }

    #[test]
    fn metrics_text_reports_parallel_gauges_when_enabled() {
        use elinda_endpoint::decomposer::{property_expansion_sparql, ExpansionDirection};
        use elinda_endpoint::Parallelism;

        let store = TripleStore::from_turtle("@prefix ex: <http://e/> . ex:a a ex:C ; ex:p ex:b .")
            .unwrap();
        let mut config = EndpointConfig::full();
        config.parallelism = Parallelism::fixed(2, 4);
        let s = ServerState::new(Arc::new(store), config);
        // No parallel queries yet: the gauges are present but zeroed.
        assert!(s.metrics_text().contains("elinda_parallel_queries_total 0"));
        let q = property_expansion_sparql("http://e/C", ExpansionDirection::Outgoing);
        s.execute_json(&q).unwrap();
        let text = s.metrics_text();
        assert!(text.contains("elinda_parallel_queries_total 1"));
        assert!(text.contains("elinda_parallel_shard_busy_us{shard=\"0\"}"));
        assert!(text.contains("elinda_parallel_shard_busy_us{shard=\"3\"}"));
        assert!(text.contains("elinda_parallel_wall_us"));
        assert!(text.contains("elinda_parallel_speedup"));
        // A sequential endpoint emits no parallel section at all.
        assert!(!state().metrics_text().contains("elinda_parallel"));
    }

    #[test]
    fn traced_execution_populates_ring_and_stage_histograms() {
        let s = state();
        let q = "SELECT ?s WHERE { ?s a <http://e/C> }";
        s.execute_json_traced(q, Deadline::unbounded(), TraceCtx::sampled("req-1"))
            .unwrap();
        let finished = s.trace_ring().get("req-1").expect("sampled trace retained");
        assert_eq!(finished.outcome, "ok");
        assert!(!finished.spans.is_empty());
        assert!(finished.stage_total() <= finished.total);
        let text = s.metrics_text();
        assert!(text.contains("elinda_stage_latency_count{stage=\"serialize\"} 1"));
        assert!(text.contains("elinda_stage_latency_count{stage=\"eval\"} 1"));
        // Untraced requests leave the ring and histograms untouched.
        s.execute_json(q).unwrap();
        assert!(s
            .metrics_text()
            .contains("elinda_stage_latency_count{stage=\"eval\"} 1"));
    }

    #[test]
    fn traced_failure_records_error_outcome() {
        let s = state();
        let err = s
            .execute_json_traced(
                "SELECT nonsense",
                Deadline::unbounded(),
                TraceCtx::sampled("req-bad"),
            )
            .unwrap_err();
        assert!(matches!(err, ServeError::Query(_)));
        let finished = s.trace_ring().get("req-bad").unwrap();
        assert_eq!(finished.outcome, "error/query");
    }

    #[test]
    fn apply_update_is_read_your_writes_and_compaction_preserves_it() {
        let s = state();
        let q = "SELECT ?s WHERE { ?s a <http://e/C> }";
        let (before, _) = s.execute_json(q).unwrap();
        assert!(!before.contains("http://e/new"));

        let outcome = s
            .apply_update("INSERT DATA { <http://e/new> a <http://e/C> }")
            .unwrap();
        assert_eq!(outcome.inserted, 1);
        assert_eq!(outcome.novelty, 1);
        // The very next read observes the write — and its result body
        // resolves the freshly interned term (the base store has never
        // seen it).
        let (after, _) = s.execute_json(q).unwrap();
        assert!(after.contains("http://e/new"));

        // Folding the overlay must not change a single byte.
        let report = s.compact_now().expect("staged novelty compacts");
        assert_eq!(report.folded, 1);
        let (compacted, _) = s.execute_json(q).unwrap();
        assert_eq!(after, compacted);
        // A second compaction with nothing staged is a no-op.
        assert!(s.compact_now().is_none());
        let stats = s.novelty_stats().unwrap();
        assert_eq!(stats.novelty_triples, 0);
        assert_eq!(stats.compactions, 1);
    }

    #[test]
    fn malformed_update_maps_to_malformed_error() {
        let s = state();
        let err = s
            .apply_update("INSERT DATA { ?v a <http://e/C> }")
            .unwrap_err();
        assert!(matches!(err, ServeError::Malformed(_)));
        assert_eq!(serve_error_kind(&err), "malformed");
        let err = s.apply_update("SELECT ?s WHERE { ?s ?p ?o }").unwrap_err();
        assert!(matches!(err, ServeError::Malformed(_)));
    }

    #[test]
    fn custom_engine_state_has_no_write_path() {
        let store = TripleStore::from_turtle("@prefix ex: <http://e/> . ex:a a ex:C .").unwrap();
        /// Serves nothing; only here to occupy the primary slot.
        struct Stub;
        impl QueryEngine for Stub {
            fn execute(&self, _q: &str) -> Result<QueryOutcome, ServeError> {
                Err(ServeError::Transient("stub".into()))
            }
            fn data_epoch(&self) -> u64 {
                0
            }
        }
        let s = ServerState::with_engine(
            Arc::new(store),
            Box::new(Stub),
            ResilienceConfig::default(),
            true,
        );
        assert!(matches!(
            s.apply_update("INSERT DATA { <http://e/x> a <http://e/C> }"),
            Err(ServeError::Unavailable(_))
        ));
        assert!(s.compact_now().is_none());
        assert!(s.novelty_stats().is_none());
    }

    #[test]
    fn metrics_text_reports_write_path_counters() {
        let s = state();
        let text = s.metrics_text();
        assert!(text.contains("elinda_updates_total 0"));
        assert!(text.contains("elinda_novelty_triples 0"));
        s.apply_update("INSERT DATA { <http://e/x> a <http://e/C> . <http://e/y> a <http://e/C> }")
            .unwrap();
        let text = s.metrics_text();
        assert!(text.contains("elinda_updates_total 1"));
        assert!(text.contains("elinda_novelty_applied_inserts_total 2"));
        assert!(text.contains("elinda_novelty_triples 2"));
        assert!(text.contains("elinda_compaction_total 0"));
        s.compact_now().unwrap();
        let text = s.metrics_text();
        assert!(text.contains("elinda_novelty_triples 0"));
        assert!(text.contains("elinda_compaction_total 1"));
        assert!(text.contains("elinda_compaction_folded_triples_total 2"));
        // Two per-triple bumps plus the compaction-point bump.
        assert!(text.contains("elinda_data_epoch 3"));
        assert!(text.contains("elinda_base_epoch 3"));
    }

    #[test]
    fn traced_update_and_compaction_feed_stage_histograms() {
        let s = state();
        s.apply_update_traced(
            "INSERT DATA { <http://e/x> a <http://e/C> }",
            TraceCtx::sampled("write-1"),
        )
        .unwrap();
        let finished = s.trace_ring().get("write-1").unwrap();
        assert_eq!(finished.outcome, "ok");
        s.compact_now().unwrap();
        let text = s.metrics_text();
        assert!(text.contains("elinda_stage_latency_count{stage=\"write\"} 1"));
        assert!(text.contains("elinda_stage_latency_count{stage=\"compact\"} 1"));
        // The compaction trace landed in the ring under its epoch id.
        assert!(s.trace_ring().get("compact-e1").is_some());
    }

    #[test]
    fn backend_state_persists_compactions_across_restart() {
        use elinda_store::test_dirs::{cleanup, fresh_dir};
        use elinda_store::PersistentBackend;

        let dir = fresh_dir("state-backend");
        let store = Arc::new(
            TripleStore::from_turtle("@prefix ex: <http://e/> . ex:a a ex:C . ex:b a ex:C .")
                .unwrap(),
        );
        let backend = Arc::new(PersistentBackend::initialize(&dir, store).unwrap());
        let s = ServerState::with_backend(
            Arc::clone(&backend) as Arc<dyn StoreBackend>,
            EndpointConfig::full(),
            ResilienceConfig::default(),
            NoveltyConfig::default(),
        );
        assert!(s
            .metrics_text()
            .contains("elinda_persist_current_generation 1"));

        s.apply_update("INSERT DATA { <http://e/new> a <http://e/C> }")
            .unwrap();
        let report = s.compact_now().unwrap();
        assert_eq!(report.persisted_generation, Some(2));
        assert_eq!(backend.generation(), 2);
        let text = s.metrics_text();
        assert!(text.contains("elinda_store_backend{kind=\"persistent\"} 1"));
        assert!(text.contains("elinda_persist_generations_total 1"));
        assert!(text.contains("elinda_persist_failures_total 0"));
        assert!(text.contains("elinda_persist_current_generation 2"));

        // A restart reopens the committed generation: the compacted
        // write is on disk, no datagen or update replay involved.
        let reopened = PersistentBackend::open(&dir).unwrap();
        assert_eq!(reopened.generation(), 2);
        let snap = reopened.snapshot();
        assert!(snap.lookup_iri("http://e/new").is_some());
        assert_eq!(snap.len(), 3);
        cleanup(&dir);
    }

    #[test]
    fn memory_backend_compaction_reports_no_generation() {
        use elinda_store::MemoryBackend;

        let store =
            Arc::new(TripleStore::from_turtle("@prefix ex: <http://e/> . ex:a a ex:C .").unwrap());
        let s = ServerState::with_backend(
            Arc::new(MemoryBackend::new(store)),
            EndpointConfig::full(),
            ResilienceConfig::default(),
            NoveltyConfig::default(),
        );
        s.apply_update("INSERT DATA { <http://e/x> a <http://e/C> }")
            .unwrap();
        let report = s.compact_now().unwrap();
        assert_eq!(report.persisted_generation, None);
        let text = s.metrics_text();
        assert!(text.contains("elinda_store_backend{kind=\"memory\"} 1"));
        assert!(text.contains("elinda_persist_generations_total 0"));
    }

    #[test]
    fn explain_predicts_without_executing() {
        let s = state();
        let report = s.explain("SELECT ?s WHERE { ?s a <http://e/C> }").unwrap();
        assert_eq!(report.path, "direct");
        assert_eq!(report.recognized, Some(false));
        assert_eq!(s.endpoint().total_queries(), 0, "explain must not execute");
    }

    #[test]
    fn metrics_text_reports_each_component() {
        let s = state();
        s.execute_json("SELECT ?s WHERE { ?s a <http://e/C> }")
            .unwrap();
        let text = s.metrics_text();
        assert!(text.contains("elinda_queries_total 1"));
        for component in COMPONENTS {
            let name = served_by_name(component);
            assert!(text.contains(&format!(
                "elinda_component_queries_total{{component=\"{name}\"}}"
            )));
            assert!(text.contains(&format!(
                "elinda_component_latency_p99_us{{component=\"{name}\"}}"
            )));
        }
        for transition in ["opened", "half_opened", "closed", "rejected"] {
            assert!(text.contains(&format!(
                "elinda_breaker_transitions_total{{transition=\"{transition}\"}} 0"
            )));
        }
    }
}
