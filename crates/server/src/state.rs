//! Shared serving state: one [`TripleStore`] and one metered, fault-
//! tolerant eLinda endpoint, owned behind `Arc`s and queried
//! concurrently by every worker thread.
//!
//! The serving stack is `MeteredEndpoint<ResilientEndpoint>`: the
//! resilient wrapper supplies per-request deadlines, retry/backoff, the
//! circuit breaker, and the degradation ladder; the metering wrapper
//! sits outside it so degraded serves are measured per component like
//! every other path.

use elinda_endpoint::json::encode_solutions;
use elinda_endpoint::resilience::Deadline;
use elinda_endpoint::{
    ElindaEndpoint, EndpointConfig, ExplainReport, LatencySummary, MeteredEndpoint, QueryContext,
    QueryEngine, ResilienceConfig, ResilienceStats, ResilientEndpoint, ServeError, ServedBy,
    StageStats, TraceCtx, TraceRing,
};
use elinda_store::TripleStore;
use std::sync::Arc;
use std::time::Duration;

/// How many sampled traces the in-memory ring retains for
/// `GET /debug/trace/<id>`.
pub const TRACE_RING_CAPACITY: usize = 64;

/// The serving components, in /metrics and report order.
pub const COMPONENTS: [ServedBy; 8] = [
    ServedBy::Direct,
    ServedBy::Hvs,
    ServedBy::Decomposer,
    ServedBy::Remote,
    ServedBy::CacheHit,
    ServedBy::Incremental,
    ServedBy::DegradedStale,
    ServedBy::DegradedLocal,
];

/// Stable lowercase name for a serving component, used in the
/// `X-Elinda-Served-By` response header and `/metrics` labels.
pub fn served_by_name(component: ServedBy) -> &'static str {
    match component {
        ServedBy::Direct => "direct",
        ServedBy::Hvs => "hvs",
        ServedBy::Decomposer => "decomposer",
        ServedBy::Remote => "remote",
        ServedBy::CacheHit => "cache-hit",
        ServedBy::Incremental => "incremental",
        ServedBy::DegradedStale => "degraded-stale",
        ServedBy::DegradedLocal => "degraded-local",
    }
}

/// Everything a worker needs to answer a request.
///
/// The store is held in an `Arc` shared with the endpoint (which owns
/// its own clone), so the whole state is a cheap-to-share, `Send + Sync`
/// value: workers execute queries through `&self` and the endpoint's
/// interior mutability (HVS cache, breaker, metrics) handles concurrent
/// updates.
pub struct ServerState {
    store: Arc<TripleStore>,
    /// The router, kept aside for the parallel-execution gauges; `None`
    /// when the state was built over a custom engine
    /// ([`ServerState::with_engine`]).
    router: Option<Arc<ElindaEndpoint<Arc<TripleStore>>>>,
    endpoint: MeteredEndpoint<ResilientEndpoint>,
    traces: TraceRing,
    stage_stats: StageStats,
}

impl ServerState {
    /// Build serving state over a store with the given endpoint
    /// configuration and default (pass-through) resilience policies.
    pub fn new(store: Arc<TripleStore>, config: EndpointConfig) -> ServerState {
        ServerState::with_resilience(store, config, ResilienceConfig::default())
    }

    /// Build serving state with explicit resilience policies (deadline
    /// default, retry, breaker).
    pub fn with_resilience(
        store: Arc<TripleStore>,
        config: EndpointConfig,
        resilience: ResilienceConfig,
    ) -> ServerState {
        let router = Arc::new(ElindaEndpoint::new(Arc::clone(&store), config));
        let mut resilient = ResilientEndpoint::new(Box::new(Arc::clone(&router)), resilience);
        if let Some(cache) = router.result_cache() {
            resilient = resilient.with_stale_source(Arc::clone(cache));
        }
        ServerState {
            store,
            router: Some(router),
            endpoint: MeteredEndpoint::new(resilient),
            traces: TraceRing::new(TRACE_RING_CAPACITY),
            stage_stats: StageStats::new(),
        }
    }

    /// Build serving state whose primary engine is arbitrary — a faulty
    /// simulated remote, a panicking stub — wrapped in the resilient
    /// stack, with the local eLinda router as the degradation-ladder
    /// fallback.
    pub fn with_engine(
        store: Arc<TripleStore>,
        primary: Box<dyn QueryEngine>,
        resilience: ResilienceConfig,
        local_fallback: bool,
    ) -> ServerState {
        let router = Arc::new(ElindaEndpoint::new(
            Arc::clone(&store),
            EndpointConfig::full(),
        ));
        let mut resilient = ResilientEndpoint::new(primary, resilience);
        if local_fallback {
            resilient = resilient.with_fallback(Box::new(Arc::clone(&router)));
        }
        if let Some(cache) = router.result_cache() {
            resilient = resilient.with_stale_source(Arc::clone(cache));
        }
        ServerState {
            store,
            router: Some(router),
            endpoint: MeteredEndpoint::new(resilient),
            traces: TraceRing::new(TRACE_RING_CAPACITY),
            stage_stats: StageStats::new(),
        }
    }

    /// The shared store.
    pub fn store(&self) -> &TripleStore {
        &self.store
    }

    /// The metered resilient endpoint.
    pub fn endpoint(&self) -> &MeteredEndpoint<ResilientEndpoint> {
        &self.endpoint
    }

    /// The fault-tolerance counters (retries, breaker transitions,
    /// deadline expiries, degraded serves).
    pub fn resilience_stats(&self) -> ResilienceStats {
        self.endpoint.inner().stats()
    }

    /// Execute a query with no deadline and encode the result in the
    /// SPARQL-JSON wire format, reporting which component served it.
    pub fn execute_json(&self, query: &str) -> Result<(String, ServedBy), ServeError> {
        self.execute_json_with(query, Deadline::unbounded())
    }

    /// [`ServerState::execute_json`] under a per-request deadline.
    pub fn execute_json_with(
        &self,
        query: &str,
        deadline: Deadline,
    ) -> Result<(String, ServedBy), ServeError> {
        self.execute_json_traced(query, deadline, TraceCtx::disabled())
    }

    /// [`ServerState::execute_json_with`] under a request-scoped trace
    /// context. If the trace is sampled, the finished span tree is
    /// folded into the per-stage latency histograms and retained in the
    /// ring for `GET /debug/trace/<id>`; a disabled trace adds no work.
    pub fn execute_json_traced(
        &self,
        query: &str,
        deadline: Deadline,
        trace: TraceCtx,
    ) -> Result<(String, ServedBy), ServeError> {
        let ctx = QueryContext::with_deadline_and_trace(deadline, trace.clone());
        let result = self.endpoint.execute_with(query, &ctx).map(|outcome| {
            let body = {
                let _span = trace.span("serialize");
                encode_solutions(&outcome.solutions, &self.store)
            };
            (body, outcome.served_by)
        });
        if trace.is_enabled() {
            let outcome_tag = match &result {
                Ok(_) => "ok".to_string(),
                Err(e) => format!("error/{}", serve_error_kind(e)),
            };
            drop(ctx);
            if let Some(finished) = trace.finish(&outcome_tag) {
                self.stage_stats.observe(&finished);
                self.traces.push(finished);
            }
        }
        result
    }

    /// The ring of recently sampled traces.
    pub fn trace_ring(&self) -> &TraceRing {
        &self.traces
    }

    /// Snapshot of the per-stage latency histograms fed by sampled
    /// traces (canonical stages first, even when unobserved).
    pub fn stage_snapshot(&self) -> Vec<(String, LatencySummary)> {
        self.stage_stats.snapshot()
    }

    /// Predict how the router would serve `query` without executing it.
    /// `None` when the state was built over a custom engine and no
    /// local router exists.
    pub fn explain(&self, query: &str) -> Option<ExplainReport> {
        self.router.as_ref().map(|r| r.explain(query))
    }

    /// Snapshot of the router's result-cache counters; `None` when the
    /// state has no local router or its cache is disabled.
    pub fn cache_stats(&self) -> Option<elinda_endpoint::CacheStats> {
        self.router.as_ref().and_then(|r| r.cache_stats())
    }

    /// Remaining open-state cooldown of the circuit breaker, `None`
    /// unless the breaker is currently open. Drives `Retry-After` on
    /// breaker-shed 503 responses.
    pub fn breaker_cooldown(&self) -> Option<Duration> {
        self.endpoint.inner().breaker().cooldown_remaining()
    }

    /// Per-component latency metrics plus fault-tolerance counters in a
    /// line-oriented text format (counts, mean and tail percentiles in
    /// microseconds).
    pub fn metrics_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "elinda_queries_total {}\n",
            self.endpoint.total_queries()
        ));
        for component in COMPONENTS {
            let name = served_by_name(component);
            let summary = self.endpoint.summary(component);
            out.push_str(&format!(
                "elinda_component_queries_total{{component=\"{name}\"}} {}\n",
                summary.count
            ));
            out.push_str(&format!(
                "elinda_component_latency_mean_us{{component=\"{name}\"}} {}\n",
                summary.mean().as_micros()
            ));
            for (label, value) in [
                ("p50", summary.p50()),
                ("p95", summary.p95()),
                ("p99", summary.p99()),
            ] {
                out.push_str(&format!(
                    "elinda_component_latency_{label}_us{{component=\"{name}\"}} {}\n",
                    value.unwrap_or_default().as_micros()
                ));
            }
        }
        let res = self.resilience_stats();
        out.push_str(&format!(
            "elinda_resilience_retries_total {}\n",
            res.retries
        ));
        out.push_str(&format!(
            "elinda_resilience_deadline_expiries_total {}\n",
            res.deadline_expiries
        ));
        out.push_str(&format!(
            "elinda_resilience_degraded_total {}\n",
            res.degraded_serves
        ));
        out.push_str(&format!(
            "elinda_resilience_unavailable_total {}\n",
            res.unavailable
        ));
        for (transition, count) in [
            ("opened", res.breaker.opened),
            ("half_opened", res.breaker.half_opened),
            ("closed", res.breaker.closed),
            ("rejected", res.breaker.rejected),
        ] {
            out.push_str(&format!(
                "elinda_breaker_transitions_total{{transition=\"{transition}\"}} {count}\n"
            ));
        }
        for (stage, summary) in self.stage_stats.snapshot() {
            out.push_str(&format!(
                "elinda_stage_latency_count{{stage=\"{stage}\"}} {}\n",
                summary.count
            ));
            out.push_str(&format!(
                "elinda_stage_latency_mean_us{{stage=\"{stage}\"}} {}\n",
                summary.mean().as_micros()
            ));
            for (label, value) in [
                ("p50", summary.p50()),
                ("p95", summary.p95()),
                ("p99", summary.p99()),
            ] {
                out.push_str(&format!(
                    "elinda_stage_latency_{label}_us{{stage=\"{stage}\"}} {}\n",
                    value.unwrap_or_default().as_micros()
                ));
            }
        }
        if let Some(stats) = self.router.as_ref().and_then(|r| r.parallel_stats()) {
            out.push_str(&format!(
                "elinda_parallel_queries_total {}\n",
                stats.queries
            ));
            for (i, busy) in stats.shard_busy.iter().enumerate() {
                out.push_str(&format!(
                    "elinda_parallel_shard_busy_us{{shard=\"{i}\"}} {}\n",
                    busy.as_micros()
                ));
            }
            out.push_str(&format!(
                "elinda_parallel_wall_us {}\n",
                stats.wall.as_micros()
            ));
            out.push_str(&format!("elinda_parallel_speedup {:.3}\n", stats.speedup()));
        }
        if let Some(router) = self.router.as_ref() {
            if let Some(stats) = router.cache_stats() {
                for (name, value) in [
                    ("hits", stats.hits),
                    ("misses", stats.misses),
                    ("stale_hits", stats.stale_hits),
                    ("insertions", stats.insertions),
                    ("evictions", stats.evictions),
                    ("invalidations", stats.invalidations),
                    ("frontier_hits", stats.frontier_hits),
                    ("frontier_misses", stats.frontier_misses),
                    ("frontier_insertions", stats.frontier_insertions),
                ] {
                    out.push_str(&format!("elinda_cache_{name}_total {value}\n"));
                }
                out.push_str(&format!("elinda_cache_entries {}\n", router.cache_len()));
                out.push_str(&format!("elinda_cache_bytes {}\n", router.cache_bytes()));
            }
        }
        out
    }
}

/// Stable lowercase tag for a [`ServeError`] variant, used as the
/// trace-outcome suffix (`error/<kind>`).
fn serve_error_kind(err: &ServeError) -> &'static str {
    match err {
        ServeError::Query(_) => "query",
        ServeError::DeadlineExceeded => "deadline",
        ServeError::Transient(_) => "transient",
        ServeError::Unavailable(_) => "unavailable",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elinda_endpoint::{BreakerConfig, QueryOutcome, RetryPolicy};
    use std::time::Duration;

    fn state() -> ServerState {
        let store =
            TripleStore::from_turtle("@prefix ex: <http://e/> . ex:a a ex:C . ex:b a ex:C .")
                .unwrap();
        ServerState::new(Arc::new(store), EndpointConfig::full())
    }

    #[test]
    fn execute_json_matches_in_process_encoding() {
        let s = state();
        let q = "SELECT ?s WHERE { ?s a <http://e/C> }";
        let (body, served_by) = s.execute_json(q).unwrap();
        let direct = s.endpoint().inner().execute(q).unwrap();
        assert_eq!(body, encode_solutions(&direct.solutions, s.store()));
        assert_eq!(served_by, ServedBy::Direct);
    }

    #[test]
    fn execute_json_surfaces_query_errors() {
        assert!(matches!(
            state().execute_json("SELECT nonsense"),
            Err(ServeError::Query(_))
        ));
    }

    #[test]
    fn expired_deadline_is_reported_and_counted() {
        let s = state();
        let err = s
            .execute_json_with(
                "SELECT ?s WHERE { ?s a <http://e/C> }",
                Deadline::at(std::time::Instant::now() - Duration::from_millis(1)),
            )
            .unwrap_err();
        assert!(matches!(err, ServeError::DeadlineExceeded));
        assert_eq!(s.resilience_stats().deadline_expiries, 1);
        assert!(s
            .metrics_text()
            .contains("elinda_resilience_deadline_expiries_total 1"));
    }

    #[test]
    fn flaky_primary_retries_then_degrades_to_local() {
        /// Fails transiently forever.
        struct Down;
        impl QueryEngine for Down {
            fn execute(&self, _q: &str) -> Result<QueryOutcome, ServeError> {
                Err(ServeError::Transient("connection refused".into()))
            }
            fn data_epoch(&self) -> u64 {
                0
            }
        }
        let store =
            TripleStore::from_turtle("@prefix ex: <http://e/> . ex:a a ex:C . ex:b a ex:C .")
                .unwrap();
        let resilience = ResilienceConfig {
            retry: RetryPolicy::new(2, Duration::from_micros(10), Duration::from_micros(50)),
            breaker: BreakerConfig {
                failure_threshold: 100,
                open_cooldown: Duration::from_millis(100),
            },
            ..ResilienceConfig::default()
        };
        let s = ServerState::with_engine(Arc::new(store), Box::new(Down), resilience, true);
        let (_, served_by) = s
            .execute_json("SELECT ?s WHERE { ?s a <http://e/C> }")
            .unwrap();
        assert_eq!(served_by, ServedBy::DegradedLocal);
        let stats = s.resilience_stats();
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.degraded_serves, 1);
        let text = s.metrics_text();
        assert!(text.contains("elinda_resilience_retries_total 2"));
        assert!(text.contains("elinda_resilience_degraded_total 1"));
        assert!(text.contains("component=\"degraded-local\"} 1"));
    }

    #[test]
    fn metrics_text_reports_parallel_gauges_when_enabled() {
        use elinda_endpoint::decomposer::{property_expansion_sparql, ExpansionDirection};
        use elinda_endpoint::Parallelism;

        let store = TripleStore::from_turtle("@prefix ex: <http://e/> . ex:a a ex:C ; ex:p ex:b .")
            .unwrap();
        let mut config = EndpointConfig::full();
        config.parallelism = Parallelism::fixed(2, 4);
        let s = ServerState::new(Arc::new(store), config);
        // No parallel queries yet: the gauges are present but zeroed.
        assert!(s.metrics_text().contains("elinda_parallel_queries_total 0"));
        let q = property_expansion_sparql("http://e/C", ExpansionDirection::Outgoing);
        s.execute_json(&q).unwrap();
        let text = s.metrics_text();
        assert!(text.contains("elinda_parallel_queries_total 1"));
        assert!(text.contains("elinda_parallel_shard_busy_us{shard=\"0\"}"));
        assert!(text.contains("elinda_parallel_shard_busy_us{shard=\"3\"}"));
        assert!(text.contains("elinda_parallel_wall_us"));
        assert!(text.contains("elinda_parallel_speedup"));
        // A sequential endpoint emits no parallel section at all.
        assert!(!state().metrics_text().contains("elinda_parallel"));
    }

    #[test]
    fn traced_execution_populates_ring_and_stage_histograms() {
        let s = state();
        let q = "SELECT ?s WHERE { ?s a <http://e/C> }";
        s.execute_json_traced(q, Deadline::unbounded(), TraceCtx::sampled("req-1"))
            .unwrap();
        let finished = s.trace_ring().get("req-1").expect("sampled trace retained");
        assert_eq!(finished.outcome, "ok");
        assert!(!finished.spans.is_empty());
        assert!(finished.stage_total() <= finished.total);
        let text = s.metrics_text();
        assert!(text.contains("elinda_stage_latency_count{stage=\"serialize\"} 1"));
        assert!(text.contains("elinda_stage_latency_count{stage=\"eval\"} 1"));
        // Untraced requests leave the ring and histograms untouched.
        s.execute_json(q).unwrap();
        assert!(s
            .metrics_text()
            .contains("elinda_stage_latency_count{stage=\"eval\"} 1"));
    }

    #[test]
    fn traced_failure_records_error_outcome() {
        let s = state();
        let err = s
            .execute_json_traced(
                "SELECT nonsense",
                Deadline::unbounded(),
                TraceCtx::sampled("req-bad"),
            )
            .unwrap_err();
        assert!(matches!(err, ServeError::Query(_)));
        let finished = s.trace_ring().get("req-bad").unwrap();
        assert_eq!(finished.outcome, "error/query");
    }

    #[test]
    fn explain_predicts_without_executing() {
        let s = state();
        let report = s.explain("SELECT ?s WHERE { ?s a <http://e/C> }").unwrap();
        assert_eq!(report.path, "direct");
        assert_eq!(report.recognized, Some(false));
        assert_eq!(s.endpoint().total_queries(), 0, "explain must not execute");
    }

    #[test]
    fn metrics_text_reports_each_component() {
        let s = state();
        s.execute_json("SELECT ?s WHERE { ?s a <http://e/C> }")
            .unwrap();
        let text = s.metrics_text();
        assert!(text.contains("elinda_queries_total 1"));
        for component in COMPONENTS {
            let name = served_by_name(component);
            assert!(text.contains(&format!(
                "elinda_component_queries_total{{component=\"{name}\"}}"
            )));
            assert!(text.contains(&format!(
                "elinda_component_latency_p99_us{{component=\"{name}\"}}"
            )));
        }
        for transition in ["opened", "half_opened", "closed", "rejected"] {
            assert!(text.contains(&format!(
                "elinda_breaker_transitions_total{{transition=\"{transition}\"}} 0"
            )));
        }
    }
}
