//! The epoll-backed event-driven front-end.
//!
//! One reactor thread owns every client socket: it accepts, reads
//! request bytes as they arrive, parses incrementally
//! ([`Request::try_parse`]), and hands each *complete* request to the
//! same bounded worker queue the blocking front-end uses — so admission
//! control, `503` shedding, and every status-code semantic carry over
//! unchanged while thousands of idle keep-alive connections cost one
//! `epoll` registration each instead of a thread.
//!
//! ## Connection state machine
//!
//! ```text
//!             ┌────────────────────────────────────────────┐
//!             ▼                                            │
//! accept → Reading ──complete request──▶ Busy ──worker──▶ Writing
//!             │                           (queue full:      │
//!             │ parse error /             shed 503 ────▶ Writing)
//!             │ request deadline                            │
//!             ▼                                             ▼
//!          Draining ──drained / EOF / timeout──▶ Writing → close or
//!                                                          back to
//!                                                          Reading
//! ```
//!
//! * **Reading** — `EPOLLIN`: bytes accumulate in the connection
//!   buffer until a full request parses. A malformed prefix moves to
//!   *Draining* with the matching `400`/`413` queued; a request whose
//!   bytes stall past `read_timeout` (measured from the request's
//!   *first* byte, so a trickling slowloris client cannot reset it)
//!   gets the same treatment with a `408`.
//! * **Busy** — the request is with a worker; the reactor stops
//!   reading (pipelined followers wait in the buffer, responses stay
//!   in order) and listens only for hangups.
//! * **Writing** — the serialized response drains to the socket.
//!   Afterwards the connection closes (`Connection: close` was sent)
//!   or returns to *Reading* and immediately re-parses any pipelined
//!   bytes already buffered.
//! * **Draining** — a rejected request's leftover bytes are read and
//!   discarded (bounded by [`MAX_BODY`] and `drain_timeout`) before
//!   the error response is written, so the kernel cannot RST the
//!   socket over unread data and destroy the response — the same
//!   contract as the blocking front-end's `drain_rejected_request`.
//!
//! ## Keep-alive lifecycle
//!
//! A response says `Connection: keep-alive` and the connection returns
//! to *Reading* unless any of these end it (final response says
//! `Connection: close`): the client asked to close (or spoke
//! HTTP/1.0 without opting in), the connection served
//! `max_requests_per_conn` requests, the request was rejected or shed,
//! or the server is shutting down. Idle connections (no request in
//! progress) are closed silently after `keep_alive_timeout`.
//!
//! ## Shedding & shutdown
//!
//! Admission control happens per *request*: a parsed request that
//! finds the worker queue full is answered with the same `503` bytes
//! the blocking acceptor sends, then the connection closes. Beyond
//! `max_connections` open sockets, new accepts get a best-effort `503`
//! and close immediately. On shutdown the listener closes first, idle
//! connections are dropped, in-flight requests finish (their responses
//! close the connection), and the reactor exits once no connections
//! remain.

use crate::http::{Request, Response, MAX_BODY};
use crate::server::{shed_response, AcceptBackoff, Shared};
use crate::sys::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

const LISTENER_TOKEN: u64 = 0;
const WAKE_TOKEN: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// Upper bound on one `epoll_wait`'s readiness batch.
const EVENT_BATCH: usize = 256;

/// How long `epoll_wait` may block before the timeout sweep runs —
/// the granularity of idle/read-deadline enforcement.
const TICK: Duration = Duration::from_millis(25);

/// Per-`read(2)` scratch size.
const READ_CHUNK: usize = 16 * 1024;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    Reading,
    Busy,
    Writing,
    Draining,
}

struct Conn {
    stream: TcpStream,
    state: ConnState,
    /// Received-but-unparsed request bytes (pipelined followers wait
    /// here while a request is in flight).
    inbuf: Vec<u8>,
    /// Serialized response being written, and how much already went
    /// out.
    outbuf: Vec<u8>,
    outpos: usize,
    /// Error response to send once draining finishes.
    pending: Option<Response>,
    /// Send `Connection: close` and drop the connection after the
    /// current response.
    close_after_write: bool,
    /// Whether the request currently with a worker asked to keep the
    /// connection alive.
    req_keep_alive: bool,
    requests_served: usize,
    /// Last useful I/O, for the idle keep-alive timeout and write
    /// stalls.
    last_activity: Instant,
    /// When the first byte of the request currently being read
    /// arrived. The whole-request deadline runs from here, so clients
    /// trickling one byte per timeout cannot hold the connection open.
    request_started: Option<Instant>,
    /// Deadline for the Draining state.
    drain_deadline: Option<Instant>,
    /// Bytes discarded so far while Draining.
    drained: usize,
    /// Peer sent FIN: no more request bytes will arrive (responses can
    /// still be delivered).
    peer_half_closed: bool,
    /// Currently registered epoll interest mask.
    interest: u32,
}

impl Conn {
    fn new(stream: TcpStream, now: Instant) -> Conn {
        Conn {
            stream,
            state: ConnState::Reading,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            outpos: 0,
            pending: None,
            close_after_write: false,
            req_keep_alive: false,
            requests_served: 0,
            last_activity: now,
            request_started: None,
            drain_deadline: None,
            drained: 0,
            peer_half_closed: false,
            interest: EPOLLIN | EPOLLRDHUP,
        }
    }

    fn set_interest(&mut self, epoll: &Epoll, token: u64, interest: u32) {
        if self.interest != interest
            && epoll
                .modify(self.stream.as_raw_fd(), token, interest)
                .is_ok()
        {
            self.interest = interest;
        }
    }
}

/// What a per-connection handler decided should happen next.
enum Verdict {
    /// Keep the connection registered.
    Keep,
    /// Remove and drop the connection (optionally counting it as an
    /// idle-timeout close).
    Close { idle: bool },
    /// A request went to the worker queue: stop reading (hangup watch
    /// only) until its completion arrives.
    NowBusy,
    /// Begin writing `response`; always closes afterwards when
    /// `close` is set.
    StartWrite { response: Response, close: bool },
    /// Enter the Draining state, then write `response` and close.
    Reject(Response),
}

/// The event-driven front-end: owns the listener, the wake pipe, and
/// every client socket; runs on the thread that replaces the blocking
/// acceptor.
pub struct Reactor {
    epoll: Epoll,
    listener: Option<TcpListener>,
    listener_fd: i32,
    wake_rx: UnixStream,
    shared: Arc<Shared>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    accept_backoff: AcceptBackoff,
    /// While set, accepting is paused (resource-exhaustion backoff);
    /// the listener is deregistered so the level-triggered readiness
    /// cannot hot-loop.
    accept_paused_until: Option<Instant>,
    shutting_down: bool,
}

impl Reactor {
    /// Register the listener and wake pipe; fails if the target has no
    /// epoll backend (callers fall back to the blocking front-end).
    pub(crate) fn new(
        listener: TcpListener,
        shared: Arc<Shared>,
        wake_rx: UnixStream,
    ) -> io::Result<Reactor> {
        listener.set_nonblocking(true)?;
        let epoll = Epoll::new()?;
        let listener_fd = listener.as_raw_fd();
        epoll.add(listener_fd, LISTENER_TOKEN, EPOLLIN)?;
        epoll.add(wake_rx.as_raw_fd(), WAKE_TOKEN, EPOLLIN)?;
        Ok(Reactor {
            epoll,
            listener: Some(listener),
            listener_fd,
            wake_rx,
            shared,
            conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
            accept_backoff: AcceptBackoff::new(),
            accept_paused_until: None,
            shutting_down: false,
        })
    }

    /// The event loop. Returns once shutdown was requested and every
    /// connection finished or closed.
    pub(crate) fn run(mut self) {
        let mut events = [EpollEvent::zeroed(); EVENT_BATCH];
        loop {
            if !self.shutting_down && self.shared.shutdown.load(Ordering::Acquire) {
                self.begin_shutdown();
            }
            if self.shutting_down && self.conns.is_empty() {
                return;
            }
            let n = match self.epoll.wait(&mut events, TICK.as_millis() as i32) {
                Ok(n) => n,
                Err(_) => {
                    // A broken epoll fd is unrecoverable; degrade to a
                    // paced loop so shutdown can still terminate us.
                    std::thread::sleep(TICK);
                    0
                }
            };
            for ev in &events[..n] {
                match ev.token() {
                    LISTENER_TOKEN => self.accept_ready(),
                    WAKE_TOKEN => self.drain_wake_pipe(),
                    token => self.conn_ready(token, ev.events()),
                }
            }
            // Completions are delivered every iteration: wake-pipe
            // bytes coalesce, and a completion pushed between the
            // drain and this point must not wait a full tick.
            self.deliver_completions();
            self.maybe_resume_accepting();
            self.sweep_timeouts();
        }
    }

    fn begin_shutdown(&mut self) {
        self.shutting_down = true;
        // Closing the listener refuses new connections outright
        // instead of leaving them hanging in the backlog.
        if let Some(listener) = self.listener.take() {
            let _ = self.epoll.delete(self.listener_fd);
            drop(listener);
        }
        self.accept_paused_until = None;
        // Idle connections (nothing in flight, nothing buffered) are
        // dropped now; everything else runs to completion with
        // `Connection: close` on the final response.
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.state == ConnState::Reading && c.request_started.is_none())
            .map(|(&t, _)| t)
            .collect();
        for token in idle {
            self.close_conn(token);
        }
    }

    fn accept_ready(&mut self) {
        if self.shutting_down || self.accept_paused_until.is_some() {
            return;
        }
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    self.accept_backoff.on_success();
                    self.admit(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) => {
                    self.shared.accept_errors.fetch_add(1, Ordering::Relaxed);
                    let pause = self.accept_backoff.on_error(&e);
                    // The reactor thread cannot sleep (every connection
                    // would stall), so "backing off" means deregistering
                    // the listener for the pause; level-triggered
                    // readiness would otherwise re-fire instantly.
                    self.accept_paused_until = Some(Instant::now() + pause);
                    let _ = self.epoll.delete(self.listener_fd);
                    return;
                }
            }
        }
    }

    fn maybe_resume_accepting(&mut self) {
        let Some(until) = self.accept_paused_until else {
            return;
        };
        if self.shutting_down {
            self.accept_paused_until = None;
            return;
        }
        if Instant::now() >= until {
            self.accept_paused_until = None;
            if self.listener.is_some()
                && self
                    .epoll
                    .add(self.listener_fd, LISTENER_TOKEN, EPOLLIN)
                    .is_err()
            {
                // Could not re-register: retry next tick.
                self.accept_paused_until = Some(Instant::now() + TICK);
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        if self.conns.len() >= self.shared.config.max_connections {
            // Over the connection cap: a best-effort 503 (the socket
            // buffer of a fresh connection always has room for it),
            // then drop.
            self.shared.shed.fetch_add(1, Ordering::Relaxed);
            let mut stream = stream;
            let _ = stream.set_nonblocking(true);
            let _ = stream.write(&shed_response().serialize(true));
            return;
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let token = self.next_token;
        self.next_token += 1;
        if self
            .epoll
            .add(stream.as_raw_fd(), token, EPOLLIN | EPOLLRDHUP)
            .is_err()
        {
            return;
        }
        self.conns.insert(token, Conn::new(stream, Instant::now()));
        self.shared.accepted.fetch_add(1, Ordering::Relaxed);
        self.publish_open_count();
    }

    fn drain_wake_pipe(&mut self) {
        let mut scratch = [0u8; 64];
        while matches!(self.wake_rx.read(&mut scratch), Ok(n) if n > 0) {}
    }

    fn conn_ready(&mut self, token: u64, events: u32) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if events & (EPOLLERR | EPOLLHUP) != 0 {
            // Transport error or both directions hung up: nothing can
            // be delivered anymore. A completion still in flight for
            // this token is dropped when it finds no connection.
            self.close_conn(token);
            return;
        }
        if events & EPOLLRDHUP != 0 {
            conn.peer_half_closed = true;
        }
        match conn.state {
            ConnState::Reading => self.read_ready(token),
            ConnState::Draining => self.drain_ready(token),
            ConnState::Writing => self.write_ready(token),
            ConnState::Busy => {
                // Nothing to read or write; just record the FIN and
                // silence the level-triggered RDHUP until the response
                // is ready.
                if conn.peer_half_closed {
                    conn.set_interest(&self.epoll, token, 0);
                }
            }
        }
    }

    /// Pull everything currently readable into the connection buffer,
    /// then try to dispatch.
    fn read_ready(&mut self, token: u64) {
        let now = Instant::now();
        let mut scratch = [0u8; READ_CHUNK];
        let verdict = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let mut failed = false;
            loop {
                match conn.stream.read(&mut scratch) {
                    Ok(0) => {
                        conn.peer_half_closed = true;
                        break;
                    }
                    Ok(n) => {
                        conn.last_activity = now;
                        if conn.request_started.is_none() {
                            conn.request_started = Some(now);
                        }
                        conn.inbuf.extend_from_slice(&scratch[..n]);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
            if failed {
                Verdict::Close { idle: false }
            } else {
                dispatch(conn, &self.shared, token, now)
            }
        };
        self.apply(token, verdict);
    }

    /// Discard rejected-request bytes until EOF, the byte bound, or
    /// the drain deadline (checked by the sweep), then send the
    /// pending error response.
    fn drain_ready(&mut self, token: u64) {
        let now = Instant::now();
        let mut scratch = [0u8; READ_CHUNK];
        let verdict = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let mut outcome = None;
            loop {
                if conn.drained >= MAX_BODY {
                    outcome = Some(true);
                    break;
                }
                match conn.stream.read(&mut scratch) {
                    Ok(0) => {
                        conn.peer_half_closed = true;
                        outcome = Some(true);
                        break;
                    }
                    Ok(n) => {
                        conn.drained += n;
                        conn.last_activity = now;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        outcome = Some(false);
                        break;
                    }
                }
            }
            match outcome {
                Some(true) => match conn.pending.take() {
                    Some(response) => Verdict::StartWrite {
                        response,
                        close: true,
                    },
                    None => Verdict::Close { idle: false },
                },
                Some(false) => Verdict::Close { idle: false },
                None => Verdict::Keep,
            }
        };
        self.apply(token, verdict);
    }

    fn write_ready(&mut self, token: u64) {
        let now = Instant::now();
        enum Wrote {
            Done,
            Blocked,
            Failed,
        }
        let wrote = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            loop {
                if conn.outpos >= conn.outbuf.len() {
                    break Wrote::Done;
                }
                match conn.stream.write(&conn.outbuf[conn.outpos..]) {
                    Ok(0) => break Wrote::Failed,
                    Ok(n) => {
                        conn.outpos += n;
                        conn.last_activity = now;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break Wrote::Blocked,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break Wrote::Failed,
                }
            }
        };
        match wrote {
            Wrote::Failed => self.close_conn(token),
            Wrote::Blocked => {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.set_interest(&self.epoll, token, EPOLLOUT);
                }
            }
            Wrote::Done => self.response_finished(token, now),
        }
    }

    /// A full response went out: close, or return to Reading and
    /// immediately try the next pipelined request.
    fn response_finished(&mut self, token: u64, now: Instant) {
        let verdict = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.close_after_write || self.shared.shutdown.load(Ordering::Acquire) {
                Verdict::Close { idle: false }
            } else {
                conn.outbuf.clear();
                conn.outpos = 0;
                conn.state = ConnState::Reading;
                conn.last_activity = now;
                conn.request_started = if conn.inbuf.is_empty() {
                    None
                } else {
                    Some(now)
                };
                conn.set_interest(&self.epoll, token, EPOLLIN | EPOLLRDHUP);
                // Pipelined bytes already in the buffer will not
                // re-trigger epoll (it watches the socket, not our
                // buffer): parse them now.
                dispatch(conn, &self.shared, token, now)
            }
        };
        self.apply(token, verdict);
    }

    /// Hand every finished response to its connection.
    fn deliver_completions(&mut self) {
        let completions = std::mem::take(
            &mut *self
                .shared
                .completions
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        );
        for completion in completions {
            let token = completion.token;
            let close = {
                // The connection may have died (error/hangup) while
                // the worker was busy; its response is simply dropped.
                let Some(conn) = self.conns.get_mut(&token) else {
                    continue;
                };
                conn.requests_served += 1;
                !conn.req_keep_alive
                    || conn.requests_served >= self.shared.config.max_requests_per_conn
                    || self.shared.shutdown.load(Ordering::Acquire)
            };
            self.apply(
                token,
                Verdict::StartWrite {
                    response: completion.response,
                    close,
                },
            );
        }
    }

    /// Enforce the three clocks: whole-request read deadline (408),
    /// idle keep-alive timeout (silent close), drain deadline, and
    /// write-stall eviction.
    fn sweep_timeouts(&mut self) {
        let now = Instant::now();
        let config = &self.shared.config;
        let mut actions: Vec<(u64, SweepAction)> = Vec::new();
        for (&token, conn) in &self.conns {
            match conn.state {
                ConnState::Reading => {
                    if let Some(started) = conn.request_started {
                        if now.saturating_duration_since(started) >= config.read_timeout {
                            actions.push((token, SweepAction::RequestTimeout));
                        }
                    } else if self.shutting_down
                        || now.saturating_duration_since(conn.last_activity)
                            >= config.keep_alive_timeout
                    {
                        actions.push((token, SweepAction::IdleClose));
                    }
                }
                ConnState::Writing => {
                    if now.saturating_duration_since(conn.last_activity) >= config.read_timeout {
                        actions.push((token, SweepAction::WriteStall));
                    }
                }
                ConnState::Draining => {
                    if conn.drain_deadline.is_some_and(|deadline| now >= deadline) {
                        actions.push((token, SweepAction::DrainExpired));
                    }
                }
                ConnState::Busy => {}
            }
        }
        for (token, action) in actions {
            match action {
                SweepAction::RequestTimeout => {
                    // Same response text as the blocking 408 path, and
                    // the same drain-before-write contract.
                    self.apply(
                        token,
                        Verdict::Reject(Response::text(
                            408,
                            "request timed out waiting for the client\n",
                        )),
                    );
                }
                SweepAction::IdleClose => {
                    self.shared.idle_closed.fetch_add(1, Ordering::Relaxed);
                    self.close_conn(token);
                }
                SweepAction::WriteStall => self.close_conn(token),
                SweepAction::DrainExpired => {
                    let verdict = {
                        let Some(conn) = self.conns.get_mut(&token) else {
                            continue;
                        };
                        match conn.pending.take() {
                            Some(response) => Verdict::StartWrite {
                                response,
                                close: true,
                            },
                            None => Verdict::Close { idle: false },
                        }
                    };
                    self.apply(token, verdict);
                }
            }
        }
    }

    fn apply(&mut self, token: u64, verdict: Verdict) {
        match verdict {
            Verdict::Keep => {}
            Verdict::NowBusy => {
                if let Some(conn) = self.conns.get_mut(&token) {
                    let interest = if conn.peer_half_closed { 0 } else { EPOLLRDHUP };
                    conn.set_interest(&self.epoll, token, interest);
                }
            }
            Verdict::Close { idle } => {
                if idle {
                    self.shared.idle_closed.fetch_add(1, Ordering::Relaxed);
                }
                self.close_conn(token);
            }
            Verdict::StartWrite { response, close } => {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.outbuf = response.serialize(close);
                    conn.outpos = 0;
                    conn.close_after_write = close;
                    conn.state = ConnState::Writing;
                    conn.pending = None;
                    conn.drain_deadline = None;
                    conn.request_started = None;
                    // Try inline first; most responses fit the socket
                    // buffer and never need an EPOLLOUT round-trip.
                    self.write_ready(token);
                }
            }
            Verdict::Reject(response) => {
                let immediate = {
                    let Some(conn) = self.conns.get_mut(&token) else {
                        return;
                    };
                    if conn.peer_half_closed {
                        // Nothing more will arrive: no bytes to drain.
                        true
                    } else {
                        conn.state = ConnState::Draining;
                        conn.pending = Some(response.clone());
                        conn.drain_deadline =
                            Some(Instant::now() + self.shared.config.drain_timeout);
                        conn.drained = 0;
                        conn.request_started = None;
                        conn.set_interest(&self.epoll, token, EPOLLIN | EPOLLRDHUP);
                        false
                    }
                };
                if immediate {
                    self.apply(
                        token,
                        Verdict::StartWrite {
                            response,
                            close: true,
                        },
                    );
                } else {
                    // Whatever was already buffered counts as drained.
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.drained = conn.inbuf.len();
                        conn.inbuf.clear();
                    }
                }
            }
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
            self.publish_open_count();
        }
    }

    fn publish_open_count(&self) {
        self.shared
            .connections_open
            .store(self.conns.len() as u64, Ordering::Relaxed);
    }
}

enum SweepAction {
    RequestTimeout,
    IdleClose,
    WriteStall,
    DrainExpired,
}

/// Try to advance a Reading connection: parse, then admit or reject.
/// Mirrors the blocking `handle_connection` decision table exactly —
/// `InvalidData` → 400, `InvalidInput` → 413, full queue → the shared
/// 503, EOF before a full request → silent close.
fn dispatch(conn: &mut Conn, shared: &Arc<Shared>, token: u64, now: Instant) -> Verdict {
    debug_assert_eq!(conn.state, ConnState::Reading);
    match Request::try_parse(&conn.inbuf) {
        Ok(Some((request, consumed))) => {
            conn.inbuf.drain(..consumed);
            conn.request_started = if conn.inbuf.is_empty() {
                None
            } else {
                Some(now)
            };
            conn.req_keep_alive = request.keep_alive;
            if shared.enqueue_job(token, request) {
                conn.state = ConnState::Busy;
                Verdict::NowBusy
            } else {
                shared.shed.fetch_add(1, Ordering::Relaxed);
                Verdict::StartWrite {
                    response: shed_response(),
                    close: true,
                }
            }
        }
        Ok(None) => {
            if conn.peer_half_closed {
                // EOF before a complete request: the blocking
                // front-end's "client vanished" silent close.
                Verdict::Close { idle: false }
            } else {
                Verdict::Keep
            }
        }
        Err(e) if e.kind() == io::ErrorKind::InvalidInput => {
            Verdict::Reject(Response::text(413, format!("payload too large: {e}\n")))
        }
        Err(e) => Verdict::Reject(Response::text(400, format!("bad request: {e}\n"))),
    }
}
