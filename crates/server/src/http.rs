//! Minimal HTTP/1.1 framing for the SPARQL protocol endpoint.
//!
//! Supports exactly what the serving subsystem needs: request-line and
//! header parsing, `Content-Length` bodies, percent-decoding, and
//! `application/x-www-form-urlencoded` query-pair parsing. Two parsing
//! entry points share one grammar: [`Request::parse`] reads a blocking
//! stream (one request per connection, `Connection: close` on every
//! response), and [`Request::try_parse`] consumes an in-memory buffer
//! incrementally for the event-driven front-end, which keeps
//! connections alive and pipelines requests.

use std::io::{self, BufRead, Write};

/// Largest accepted request body: queries are text, not bulk uploads.
pub const MAX_BODY: usize = 1 << 20;

/// Largest accepted request-line or header line in bytes (terminator
/// included). A slow client streaming an endless line gets `400`, not
/// an unbounded buffer.
pub const MAX_LINE: usize = 8 << 10;

/// Maximum number of header lines per request; beyond this the request
/// is rejected with `400` instead of growing the header list forever.
pub const MAX_HEADERS: usize = 64;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method, e.g. `GET`.
    pub method: String,
    /// Decoded path without the query string, e.g. `/sparql`.
    pub path: String,
    /// Decoded query-string pairs in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers with lowercased names, in order of appearance.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the client may reuse this connection for another
    /// request: `HTTP/1.1` unless a `Connection: close` token was sent,
    /// or any other version with an explicit `Connection: keep-alive`.
    /// The blocking front-end ignores this and always closes; the
    /// event-driven front-end honors it.
    pub keep_alive: bool,
}

impl Request {
    /// First header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First query-string parameter with the given name.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Parse one request from a buffered stream.
    pub fn parse<R: BufRead>(reader: &mut R) -> io::Result<Request> {
        let head = parse_request_line(&read_crlf_line(reader)?)?;
        let mut headers = Vec::new();
        loop {
            let line = read_crlf_line(reader)?;
            if line.is_empty() {
                break;
            }
            if headers.len() >= MAX_HEADERS {
                return Err(bad("too many headers"));
            }
            headers.push(parse_header_line(&line)?);
        }

        let length = body_length(&headers)?;
        let mut body = Vec::new();
        if length > 0 {
            body.resize(length, 0);
            reader.read_exact(&mut body)?;
        }

        Ok(assemble(head, headers, body))
    }

    /// Try to parse one request out of an in-memory buffer holding
    /// whatever bytes have arrived so far — the event-driven front-end's
    /// entry point, sharing every grammar rule and limit with
    /// [`Request::parse`].
    ///
    /// Returns:
    /// - `Ok(Some((request, consumed)))` — a complete request occupying
    ///   the first `consumed` bytes of `buf`; pipelined followers remain
    ///   in the buffer after that offset.
    /// - `Ok(None)` — the bytes so far are a valid prefix; read more.
    /// - `Err(_)` — the prefix can never become a valid request, with
    ///   the same error kinds as [`Request::parse`] (`InvalidData` →
    ///   400, `InvalidInput` → 413).
    pub fn try_parse(buf: &[u8]) -> io::Result<Option<(Request, usize)>> {
        let mut pos = 0usize;
        let Some(line) = next_crlf_line(buf, &mut pos)? else {
            return Ok(None);
        };
        let head = parse_request_line(&line)?;
        let mut headers = Vec::new();
        loop {
            let Some(line) = next_crlf_line(buf, &mut pos)? else {
                return Ok(None);
            };
            if line.is_empty() {
                break;
            }
            if headers.len() >= MAX_HEADERS {
                return Err(bad("too many headers"));
            }
            headers.push(parse_header_line(&line)?);
        }
        let length = body_length(&headers)?;
        if buf.len() - pos < length {
            return Ok(None);
        }
        let body = buf[pos..pos + length].to_vec();
        Ok(Some((assemble(head, headers, body), pos + length)))
    }
}

/// The parsed request line: method, split target, and whether the
/// version string was exactly `HTTP/1.1` (the keep-alive-by-default
/// version).
struct RequestLine {
    method: String,
    raw_path: String,
    raw_query: String,
    http11: bool,
}

fn parse_request_line(line: &str) -> io::Result<RequestLine> {
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(bad("malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad("unsupported HTTP version"));
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    Ok(RequestLine {
        method: method.to_string(),
        raw_path: raw_path.to_string(),
        raw_query: raw_query.to_string(),
        http11: version == "HTTP/1.1",
    })
}

fn parse_header_line(line: &str) -> io::Result<(String, String)> {
    let (name, value) = line
        .split_once(':')
        .ok_or_else(|| bad("malformed header line"))?;
    Ok((name.trim().to_ascii_lowercase(), value.trim().to_string()))
}

/// Resolve the body length from `Content-Length` headers.
///
/// RFC 7230 §3.3.2: duplicate `Content-Length` headers with differing
/// values make the message length ambiguous (request smuggling) and
/// must be rejected; identical repeats are allowed. A length beyond
/// [`MAX_BODY`] gets the distinct `InvalidInput` kind so handlers map
/// it to `413`.
fn body_length(headers: &[(String, String)]) -> io::Result<usize> {
    let mut length: Option<usize> = None;
    for (_, value) in headers.iter().filter(|(n, _)| n == "content-length") {
        let parsed = value
            .parse::<usize>()
            .map_err(|_| bad("bad content-length"))?;
        match length {
            Some(seen) if seen != parsed => {
                return Err(bad("conflicting content-length headers"));
            }
            _ => length = Some(parsed),
        }
    }
    let length = length.unwrap_or(0);
    if length > MAX_BODY {
        return Err(too_large("request body too large"));
    }
    Ok(length)
}

fn assemble(head: RequestLine, headers: Vec<(String, String)>, body: Vec<u8>) -> Request {
    let keep_alive = wants_keep_alive(head.http11, &headers);
    Request {
        method: head.method.to_ascii_uppercase(),
        path: percent_decode(&head.raw_path),
        query: parse_query_pairs(&head.raw_query),
        headers,
        body,
        keep_alive,
    }
}

/// HTTP/1.1 defaults to persistent connections unless the client sends
/// a `close` token; HTTP/1.0 (and the other `HTTP/1.x` versions this
/// parser tolerates) closes unless the client explicitly opts in with
/// `keep-alive`. `close` wins over `keep-alive` if both appear.
fn wants_keep_alive(http11: bool, headers: &[(String, String)]) -> bool {
    let mut explicit_keep = false;
    for (_, value) in headers.iter().filter(|(n, _)| n == "connection") {
        for token in value.split(',') {
            match token.trim().to_ascii_lowercase().as_str() {
                "close" => return false,
                "keep-alive" => explicit_keep = true,
                _ => {}
            }
        }
    }
    http11 || explicit_keep
}

/// Pull the next `\n`-terminated line out of `buf` starting at `*pos`,
/// returned without the terminator, advancing `*pos` past it. `Ok(None)`
/// means the line is still incomplete; a line that cannot fit
/// [`MAX_LINE`] bytes (terminator included) is rejected as soon as that
/// is knowable, even before its newline arrives — the incremental
/// analogue of [`read_crlf_line`]'s bound.
fn next_crlf_line(buf: &[u8], pos: &mut usize) -> io::Result<Option<String>> {
    let rest = &buf[*pos..];
    match rest.iter().position(|&b| b == b'\n') {
        Some(nl) => {
            if nl + 1 > MAX_LINE {
                return Err(bad("header line too long"));
            }
            let mut line = std::str::from_utf8(&rest[..nl])
                .map_err(|_| bad("invalid utf-8 in header"))?
                .to_string();
            while line.ends_with('\r') {
                line.pop();
            }
            *pos += nl + 1;
            Ok(Some(line))
        }
        None if rest.len() >= MAX_LINE => Err(bad("header line too long")),
        None => Ok(None),
    }
}

/// An HTTP response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers (`Content-Length` and `Connection` are added on
    /// write).
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".into(), "text/plain; charset=utf-8".into())],
            body: body.into().into_bytes(),
        }
    }

    /// An `application/json` response (trace trees, explain reports).
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".into(), "application/json".into())],
            body: body.into().into_bytes(),
        }
    }

    /// A SPARQL-JSON results response.
    pub fn sparql_json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: vec![(
                "Content-Type".into(),
                "application/sparql-results+json".into(),
            )],
            body: body.into().into_bytes(),
        }
    }

    /// Add a header.
    pub fn header(mut self, name: impl Into<String>, value: impl Into<String>) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Serialize to bytes. `close` picks the `Connection` header value:
    /// the blocking front-end always closes; the event-driven front-end
    /// answers `keep-alive` until the connection's last response, which
    /// must say `close` so the client knows not to reuse the socket.
    pub fn serialize(&self, close: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.body.len() + 256);
        let _ = write!(out, "HTTP/1.1 {} {}\r\n", self.status, reason(self.status));
        for (name, value) in &self.headers {
            let _ = write!(out, "{name}: {value}\r\n");
        }
        let _ = write!(
            out,
            "Content-Length: {}\r\nConnection: {}\r\n\r\n",
            self.body.len(),
            if close { "close" } else { "keep-alive" }
        );
        out.extend_from_slice(&self.body);
        out
    }

    /// Serialize onto a stream. Every response closes the connection
    /// (the blocking front-end's one-request-per-connection contract).
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&self.serialize(true))?;
        w.flush()
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// An oversized request body gets its own error kind so the connection
/// handler can answer `413 Payload Too Large` instead of a generic
/// `400` — the distinction tells a well-behaved client whether to fix
/// the request or stop resending it bigger.
fn too_large(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidInput, msg.to_string())
}

/// Read one `\r\n`-terminated line, returned without the terminator.
/// Rejects lines longer than [`MAX_LINE`] so a client streaming an
/// endless request-line or header cannot grow the buffer unboundedly.
fn read_crlf_line<R: BufRead>(reader: &mut R) -> io::Result<String> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            if line.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed",
                ));
            }
            break;
        }
        let newline = buf.iter().position(|&b| b == b'\n');
        let take = newline.map_or(buf.len(), |pos| pos + 1);
        if line.len() + take > MAX_LINE {
            return Err(bad("header line too long"));
        }
        line.extend_from_slice(&buf[..take]);
        reader.consume(take);
        if newline.is_some() {
            break;
        }
    }
    let mut line = String::from_utf8(line).map_err(|_| bad("invalid utf-8 in header"))?;
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Decode `%XX` escapes only. `+` is a literal plus: in a request
/// *path* it is an ordinary character, and rewriting it to a space
/// (a form-encoding convention) corrupts resources whose names contain
/// `+`. Use [`form_decode`] for `application/x-www-form-urlencoded`
/// query pairs, where `+`-as-space applies.
pub fn percent_decode(input: &str) -> String {
    let bytes = input.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok());
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Decode a `application/x-www-form-urlencoded` component: `+` means
/// space, then `%XX` escapes are resolved. Only query pairs use this;
/// paths go through [`percent_decode`].
pub fn form_decode(input: &str) -> String {
    percent_decode(&input.replace('+', "%20"))
}

/// Percent-encode everything outside the URL-unreserved set (for
/// building `?query=` targets in clients and the load generator).
pub fn percent_encode(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for b in input.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'.' | b'_' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Split `a=1&b=2` into decoded pairs. Keys without `=` get empty
/// values.
pub fn parse_query_pairs(input: &str) -> Vec<(String, String)> {
    input
        .split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (form_decode(k), form_decode(v)),
            None => (form_decode(pair), String::new()),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_get_with_query() {
        let raw = "GET /sparql?query=SELECT%20%3Fs&limit=5 HTTP/1.1\r\nHost: x\r\n\r\n";
        let req = Request::parse(&mut BufReader::new(raw.as_bytes())).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/sparql");
        assert_eq!(req.param("query"), Some("SELECT ?s"));
        assert_eq!(req.param("limit"), Some("5"));
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_body_by_content_length() {
        let raw = "POST /sparql HTTP/1.1\r\nContent-Length: 9\r\n\r\nquery=abctrailing-junk";
        let req = Request::parse(&mut BufReader::new(raw.as_bytes())).unwrap();
        assert_eq!(req.body, b"query=abc");
    }

    #[test]
    fn rejects_malformed_request_line() {
        let raw = "NONSENSE\r\n\r\n";
        assert!(Request::parse(&mut BufReader::new(raw.as_bytes())).is_err());
    }

    #[test]
    fn rejects_oversized_body_with_distinct_kind() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let err = Request::parse(&mut BufReader::new(raw.as_bytes())).unwrap_err();
        // InvalidInput (not InvalidData) so the handler maps it to 413.
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn percent_roundtrip() {
        let q = "SELECT ?s WHERE { ?s a <http://e/C> . FILTER(?s != \"x y\") }";
        assert_eq!(percent_decode(&percent_encode(q)), q);
    }

    #[test]
    fn decode_handles_plus_and_bad_escapes() {
        // Paths keep `+` literal; form components treat it as a space.
        assert_eq!(percent_decode("a+b%20c"), "a+b c");
        assert_eq!(form_decode("a+b%20c"), "a b c");
        assert_eq!(form_decode("a%2Bb"), "a+b");
        assert_eq!(percent_decode("50%"), "50%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn plus_in_path_survives_but_query_pairs_form_decode() {
        let raw = "GET /c%2B%2B+notes?q=a+b HTTP/1.1\r\n\r\n";
        let req = Request::parse(&mut BufReader::new(raw.as_bytes())).unwrap();
        assert_eq!(req.path, "/c+++notes");
        assert_eq!(req.param("q"), Some("a b"));
    }

    #[test]
    fn decode_handles_multibyte_utf8_escapes() {
        assert_eq!(percent_decode("%E2%82%AC"), "\u{20AC}");
        assert_eq!(percent_decode("caf%C3%A9"), "café");
        // An escape sequence that decodes to invalid UTF-8 is replaced,
        // not a panic or a silent truncation.
        assert_eq!(percent_decode("%FF"), "\u{FFFD}");
    }

    #[test]
    fn decode_handles_truncated_escape_at_end_of_input() {
        assert_eq!(percent_decode("abc%4"), "abc%4");
        assert_eq!(percent_decode("abc%"), "abc%");
        assert_eq!(form_decode("abc%4"), "abc%4");
    }

    #[test]
    fn rejects_oversized_header_line() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE));
        let err = Request::parse(&mut BufReader::new(raw.as_bytes())).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_unterminated_endless_line_before_buffering_it_all() {
        // No newline at all: the reader must give up at MAX_LINE, not
        // buffer the whole stream.
        let raw = "G".repeat(MAX_LINE * 4);
        let err = Request::parse(&mut BufReader::new(raw.as_bytes())).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_too_many_headers() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..(MAX_HEADERS + 1) {
            raw.push_str(&format!("X-Filler-{i}: 1\r\n"));
        }
        raw.push_str("\r\n");
        let err = Request::parse(&mut BufReader::new(raw.as_bytes())).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn exactly_max_headers_is_accepted() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..MAX_HEADERS {
            raw.push_str(&format!("X-Filler-{i}: 1\r\n"));
        }
        raw.push_str("\r\n");
        let req = Request::parse(&mut BufReader::new(raw.as_bytes())).unwrap();
        assert_eq!(req.headers.len(), MAX_HEADERS);
    }

    #[test]
    fn rejects_conflicting_duplicate_content_length() {
        let raw = "POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 5\r\n\r\nabcde";
        let err = Request::parse(&mut BufReader::new(raw.as_bytes())).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn accepts_identical_duplicate_content_length() {
        let raw = "POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 3\r\n\r\nabc";
        let req = Request::parse(&mut BufReader::new(raw.as_bytes())).unwrap();
        assert_eq!(req.body, b"abc");
    }

    #[test]
    fn response_wire_format() {
        let mut buf = Vec::new();
        Response::text(200, "ok")
            .header("X-Test", "1")
            .write_to(&mut buf)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("X-Test: 1\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nok"));
    }

    #[test]
    fn query_pairs_tolerate_missing_values() {
        let pairs = parse_query_pairs("a&b=2&&c=");
        assert_eq!(
            pairs,
            vec![
                ("a".into(), String::new()),
                ("b".into(), "2".into()),
                ("c".into(), String::new())
            ]
        );
    }

    #[test]
    fn serialize_close_matches_write_to_byte_for_byte() {
        let response = Response::sparql_json(200, "{\"x\":1}").header("X-Test", "1");
        let mut via_stream = Vec::new();
        response.write_to(&mut via_stream).unwrap();
        assert_eq!(via_stream, response.serialize(true));
    }

    #[test]
    fn serialize_keep_alive_differs_only_in_connection_header() {
        let response = Response::text(200, "ok");
        let close = String::from_utf8(response.serialize(true)).unwrap();
        let keep = String::from_utf8(response.serialize(false)).unwrap();
        assert!(close.contains("Connection: close\r\n"));
        assert!(keep.contains("Connection: keep-alive\r\n"));
        assert_eq!(
            close.replace("Connection: close", "Connection: keep-alive"),
            keep
        );
    }

    #[test]
    fn keep_alive_defaults_follow_http_version() {
        let parse = |raw: &str| Request::parse(&mut BufReader::new(raw.as_bytes())).unwrap();
        assert!(parse("GET / HTTP/1.1\r\n\r\n").keep_alive);
        assert!(!parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive);
        assert!(!parse("GET / HTTP/1.0\r\n\r\n").keep_alive);
        assert!(parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").keep_alive);
        // `close` wins when both tokens appear in one list.
        assert!(!parse("GET / HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n").keep_alive);
    }

    #[test]
    fn try_parse_incomplete_prefixes_ask_for_more() {
        let raw = b"POST /sparql HTTP/1.1\r\nContent-Length: 9\r\n\r\nquery=abc";
        for cut in 0..raw.len() {
            assert!(
                Request::try_parse(&raw[..cut]).unwrap().is_none(),
                "prefix of {cut} bytes should be incomplete"
            );
        }
        let (req, consumed) = Request::try_parse(raw).unwrap().unwrap();
        assert_eq!(consumed, raw.len());
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"query=abc");
        assert!(req.keep_alive);
    }

    #[test]
    fn try_parse_leaves_pipelined_followers_in_the_buffer() {
        let raw = b"GET /health HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n";
        let (first, consumed) = Request::try_parse(raw).unwrap().unwrap();
        assert_eq!(first.path, "/health");
        let (second, consumed2) = Request::try_parse(&raw[consumed..]).unwrap().unwrap();
        assert_eq!(second.path, "/metrics");
        assert_eq!(consumed + consumed2, raw.len());
    }

    #[test]
    fn try_parse_matches_blocking_parse_on_whole_requests() {
        let cases: &[&[u8]] = &[
            b"GET /sparql?query=SELECT%20%3Fs&limit=5 HTTP/1.1\r\nHost: x\r\n\r\n",
            b"POST /sparql HTTP/1.1\r\nContent-Length: 9\r\n\r\nquery=abc",
            b"GET /c%2B%2B+notes?q=a+b HTTP/1.1\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 3\r\n\r\nabc",
            b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n",
        ];
        for raw in cases {
            let blocking = Request::parse(&mut BufReader::new(*raw)).unwrap();
            let (incremental, consumed) = Request::try_parse(raw).unwrap().unwrap();
            assert_eq!(consumed, raw.len());
            assert_eq!(blocking.method, incremental.method);
            assert_eq!(blocking.path, incremental.path);
            assert_eq!(blocking.query, incremental.query);
            assert_eq!(blocking.headers, incremental.headers);
            assert_eq!(blocking.body, incremental.body);
            assert_eq!(blocking.keep_alive, incremental.keep_alive);
        }
    }

    #[test]
    fn try_parse_rejects_with_the_same_error_kinds() {
        // Malformed request line → InvalidData (400).
        assert_eq!(
            Request::try_parse(b"NONSENSE\r\n\r\n").unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
        // Oversized declared body → InvalidInput (413).
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert_eq!(
            Request::try_parse(raw.as_bytes()).unwrap_err().kind(),
            std::io::ErrorKind::InvalidInput
        );
        // Conflicting duplicate Content-Length → InvalidData.
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 5\r\n\r\nabcde";
        assert_eq!(
            Request::try_parse(raw).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn try_parse_bounds_unterminated_lines_before_the_newline_arrives() {
        // A line that can no longer fit MAX_LINE must be rejected even
        // though its terminator never arrived — otherwise a slowloris
        // client could grow the buffer forever.
        let raw = vec![b'G'; MAX_LINE];
        assert_eq!(
            Request::try_parse(&raw).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
        // One byte short of the bound is still just "incomplete".
        assert!(Request::try_parse(&raw[..MAX_LINE - 1]).unwrap().is_none());
    }

    #[test]
    fn try_parse_enforces_header_count_incrementally() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..(MAX_HEADERS + 1) {
            raw.push_str(&format!("X-Filler-{i}: 1\r\n"));
        }
        // No terminating blank line: the count bound still fires.
        assert_eq!(
            Request::try_parse(raw.as_bytes()).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
    }
}
