#![warn(missing_docs)]

//! A concurrent SPARQL-protocol serving subsystem for eLinda.
//!
//! The paper's deployment puts the eLinda backend between web frontends
//! and a SPARQL endpoint; this crate reproduces that tier as a
//! self-contained multi-threaded HTTP/1.1 server with no dependencies
//! beyond the standard library:
//!
//! * [`state::ServerState`] — an `Arc`-shared [`elinda_store::TripleStore`]
//!   plus a metered [`elinda_endpoint::ElindaEndpoint`] queried
//!   concurrently by every worker (the endpoint layer is `Send + Sync`
//!   with interior mutability for the HVS cache and metrics);
//! * [`server::serve`] — a non-blocking acceptor feeding a bounded
//!   queue drained by a fixed worker pool, with `503` load shedding
//!   when the queue is full and graceful drain on shutdown;
//! * [`reactor`] — an optional epoll-backed event-driven front-end
//!   ([`ServerConfig::event_loop`]) replacing the
//!   connection-per-worker model with a single reactor thread that
//!   owns accept + read/write readiness for thousands of keep-alive
//!   connections, parses requests incrementally, and hands complete
//!   requests to the same bounded worker queue — admission control,
//!   shedding, and status-code semantics unchanged;
//! * [`sys`] — the raw-syscall shim (epoll, `RLIMIT_NOFILE`) that
//!   keeps the workspace dependency-free;
//! * [`http`] — minimal HTTP/1.1 framing and percent-coding.
//!
//! Routes: `GET/POST /sparql` (SPARQL-JSON results, with the serving
//! component in the `X-Elinda-Served-By` header), `POST /update`
//! (SPARQL UPDATE into the novelty overlay, folded down by the
//! background compactor), `GET /health`, and `GET /metrics`
//! (per-component count/mean/p50/p95/p99 plus server counters and
//! write-path gauges).
//!
//! ```no_run
//! use elinda_datagen::{generate_dbpedia, DbpediaConfig};
//! use elinda_endpoint::EndpointConfig;
//! use elinda_server::{serve, ServerConfig, ServerState};
//! use std::sync::Arc;
//!
//! let store = Arc::new(generate_dbpedia(&DbpediaConfig::tiny()));
//! let state = Arc::new(ServerState::new(store, EndpointConfig::full()));
//! let handle = serve(state, "127.0.0.1:0", ServerConfig::default()).unwrap();
//! println!("listening on http://{}", handle.local_addr());
//! handle.shutdown();
//! ```

pub mod http;
#[cfg(unix)]
pub mod reactor;
pub mod server;
pub mod state;
pub mod sys;

pub use http::{form_decode, parse_query_pairs, percent_decode, percent_encode, Request, Response};
pub use server::{serve, ServerConfig, ServerCounters, ServerHandle};
pub use state::{served_by_name, ServerState, WalReplayReport, COMPONENTS};
