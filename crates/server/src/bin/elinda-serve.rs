//! Serve a synthetic DBpedia-shaped store over the SPARQL protocol.
//!
//! ```text
//! cargo run --bin elinda-serve -- [--addr 127.0.0.1:7878] [--workers 4]
//!                                 [--queue-depth 64] [--scale 1.0]
//!                                 [--event-loop] [--max-connections 8192]
//!                                 [--keep-alive-timeout-ms 30000]
//!                                 [--max-requests-per-conn 1000]
//!                                 [--drain-timeout-ms 250]
//!                                 [--shards 8] [--intra-query-threads 0]
//!                                 [--deadline-ms 0] [--retry 0] [--breaker 5]
//!                                 [--trace-sample 0.0]
//!                                 [--cache-entries 512] [--cache-bytes 16777216]
//!                                 [--compact-interval-ms 1000]
//!                                 [--novelty-max-triples 4096]
//!                                 [--store-dir DIR] [--load FILE.nt]
//!                                 [--wal DIR] [--wal-sync always|never|interval[:MS]]
//!                                 [--wal-group-commit-us N]
//!                                 [--shard-role coordinator|shard]
//!                                 [--coordinator ADDR1,ADDR2,...]
//!                                 [--shard-map N] [--shard-id I]
//!                                 [--breaker-cooldown-ms N]
//! ```
//!
//! Where the store comes from, in priority order:
//!
//! * `--load FILE.nt` — stream the N-Triples file through the bulk
//!   loader; with `--store-dir` the result is also persisted as a new
//!   generation of that directory.
//! * `--store-dir DIR` — reopen the committed generation on disk,
//!   skipping datagen entirely. An empty directory bootstraps from
//!   datagen (at `--scale`) and persists generation 1; a corrupt one
//!   fails with a typed error and exit code 1.
//! * neither — generate the synthetic DBpedia store in memory, as before.
//!
//! With a store directory attached, every background compaction commits
//! the folded base as a new on-disk generation. A greppable
//! `cold-start:` line reports the source and timing for the bench
//! trajectory.
//!
//! With `--wal DIR`, every `POST /update` is appended to a checksummed
//! write-ahead log and fsynced (per `--wal-sync`) before it is acked;
//! on restart the log tail is replayed on top of the loaded store and a
//! greppable `wal-recovery:` line reports what came back. Compactions
//! seal the active segment at the fold point and discard sealed
//! segments once the folded base is durably persisted, so kill-at-any-
//! instant recovers to exactly the acked prefix.
//!
//! The **shard fabric** splits chart evaluation across processes.
//! `--shard-role shard --shard-map N --shard-id I` makes this process
//! shard `I` of a static map of `N`: it loads the dataset through the
//! ordinary bootstrap, partitions it by the standard subject hash, and
//! answers `POST /shard/eval` with partial aggregates over partition
//! `I`. `--shard-role coordinator --coordinator A1,A2,...` makes this
//! process the scatter-gather coordinator over that fleet (entry `i` of
//! the list must be shard `i`): recognized chart queries scatter to all
//! shards and the merged result is byte-identical to single-process
//! serving; everything else is served locally. Every process in the
//! fabric must bootstrap the identical dataset (same `--scale`/`--load`
//! input). The coordinator has no write path — `POST /update` answers
//! 503 — so `--wal` is rejected in coordinator role.
//!
//! Runs until stdin is closed or a line reading `quit` arrives (there is
//! no dependency-free portable signal handling), then drains in-flight
//! requests and exits.

use elinda_datagen::{generate_dbpedia, DbpediaConfig};
use elinda_endpoint::{
    BreakerConfig, CacheConfig, EndpointConfig, FabricConfig, NoveltyConfig, Parallelism,
    ResilienceConfig, RetryPolicy,
};
use elinda_server::{serve, ServerConfig, ServerState};
use elinda_store::{
    bulk_load_ntriples_path, PersistError, PersistentBackend, StoreBackend, TripleStore, Wal,
    WalConfig, WalSyncPolicy,
};
use std::io::BufRead;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    addr: String,
    workers: usize,
    queue_depth: usize,
    scale: f64,
    shards: usize,
    /// Worker threads per query; 0 means derive the budget from the
    /// core count and `--workers` so the pools compose without
    /// oversubscription.
    intra_query_threads: usize,
    /// Per-request execution budget in milliseconds; 0 disables it.
    deadline_ms: u64,
    /// Retry attempts for transient failures of idempotent reads.
    retry: u32,
    /// Circuit-breaker failure threshold; 0 disables tripping.
    breaker: u32,
    /// Fraction of /sparql requests traced end-to-end; defaults to the
    /// `ELINDA_TRACE_SAMPLE` environment variable (else 0.0, off).
    trace_sample: f64,
    /// Result-cache entry budget; 0 disables the cache entirely.
    cache_entries: usize,
    /// Result-cache byte budget.
    cache_bytes: usize,
    /// Background-compactor period in milliseconds; 0 disables the
    /// compactor thread (writes accumulate in the novelty overlay).
    compact_interval_ms: u64,
    /// Staged-novelty size that wakes the compactor early.
    novelty_max_triples: usize,
    /// Persistent store directory; compactions commit new generations
    /// into it and restarts reload from it.
    store_dir: Option<String>,
    /// N-Triples file to bulk-load instead of running datagen.
    load: Option<String>,
    /// Write-ahead log directory; updates are appended (and fsynced per
    /// `--wal-sync`) before they are acked, and restarts replay the
    /// tail on top of the loaded store.
    wal: Option<String>,
    /// Durability policy: `always` (fsync per acked update), `never`,
    /// or `interval[:MS]`.
    wal_sync: WalSyncPolicy,
    /// Group-commit gather window in microseconds; 0 disables the wait
    /// (concurrent writers still share a leader's fsync).
    wal_group_commit_us: u64,
    /// Serve with the epoll-backed event-driven front-end (HTTP/1.1
    /// keep-alive + pipelining) instead of the blocking
    /// connection-per-worker model.
    event_loop: bool,
    /// Maximum simultaneously open connections under the event loop.
    max_connections: usize,
    /// Idle keep-alive timeout in milliseconds (event loop only).
    keep_alive_timeout_ms: u64,
    /// Requests per connection before the reactor closes it.
    max_requests_per_conn: usize,
    /// How long shed / rejected-request paths drain leftover client
    /// bytes before answering, in milliseconds.
    drain_timeout_ms: u64,
    /// Fabric role: `coordinator` scatters chart queries across the
    /// fleet, `shard` serves partial aggregates for one partition.
    shard_role: Option<String>,
    /// Coordinator role: comma-separated shard addresses in shard-id
    /// order.
    coordinator: Option<String>,
    /// Shard role: total shards in the static map.
    shard_map: Option<usize>,
    /// Shard role: this process's partition index.
    shard_id: Option<usize>,
    /// Circuit-breaker open-state cooldown in milliseconds (applies to
    /// both the serving breaker and the per-shard fabric breakers).
    breaker_cooldown_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".into(),
        workers: 4,
        queue_depth: 64,
        scale: 1.0,
        shards: 8,
        intra_query_threads: 0,
        deadline_ms: 0,
        retry: 0,
        breaker: 5,
        trace_sample: ServerConfig::default().trace_sample,
        cache_entries: CacheConfig::default().max_entries,
        cache_bytes: CacheConfig::default().max_bytes,
        compact_interval_ms: 1000,
        novelty_max_triples: NoveltyConfig::default().max_triples,
        store_dir: None,
        load: None,
        wal: None,
        wal_sync: WalSyncPolicy::Always,
        wal_group_commit_us: 0,
        event_loop: false,
        max_connections: ServerConfig::default().max_connections,
        keep_alive_timeout_ms: ServerConfig::default().keep_alive_timeout.as_millis() as u64,
        max_requests_per_conn: ServerConfig::default().max_requests_per_conn,
        drain_timeout_ms: ServerConfig::default().drain_timeout.as_millis() as u64,
        shard_role: None,
        coordinator: None,
        shard_map: None,
        shard_id: None,
        breaker_cooldown_ms: BreakerConfig::default().open_cooldown.as_millis() as u64,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--queue-depth" => {
                args.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|e| format!("--queue-depth: {e}"))?
            }
            "--scale" => {
                args.scale = value("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?
            }
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?
            }
            "--intra-query-threads" => {
                args.intra_query_threads = value("--intra-query-threads")?
                    .parse()
                    .map_err(|e| format!("--intra-query-threads: {e}"))?
            }
            "--deadline-ms" => {
                args.deadline_ms = value("--deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--deadline-ms: {e}"))?
            }
            "--retry" => {
                args.retry = value("--retry")?
                    .parse()
                    .map_err(|e| format!("--retry: {e}"))?
            }
            "--breaker" => {
                args.breaker = value("--breaker")?
                    .parse()
                    .map_err(|e| format!("--breaker: {e}"))?
            }
            "--trace-sample" => {
                args.trace_sample = value("--trace-sample")?
                    .parse::<f64>()
                    .map_err(|e| format!("--trace-sample: {e}"))?
                    .clamp(0.0, 1.0)
            }
            "--cache-entries" => {
                args.cache_entries = value("--cache-entries")?
                    .parse()
                    .map_err(|e| format!("--cache-entries: {e}"))?
            }
            "--cache-bytes" => {
                args.cache_bytes = value("--cache-bytes")?
                    .parse()
                    .map_err(|e| format!("--cache-bytes: {e}"))?
            }
            "--compact-interval-ms" => {
                args.compact_interval_ms = value("--compact-interval-ms")?
                    .parse()
                    .map_err(|e| format!("--compact-interval-ms: {e}"))?
            }
            "--novelty-max-triples" => {
                args.novelty_max_triples = value("--novelty-max-triples")?
                    .parse()
                    .map_err(|e| format!("--novelty-max-triples: {e}"))?
            }
            "--store-dir" => args.store_dir = Some(value("--store-dir")?),
            "--load" => args.load = Some(value("--load")?),
            "--wal" => args.wal = Some(value("--wal")?),
            "--wal-sync" => {
                let text = value("--wal-sync")?;
                args.wal_sync = WalSyncPolicy::parse(&text)
                    .ok_or_else(|| format!("--wal-sync: unknown policy `{text}`"))?
            }
            "--wal-group-commit-us" => {
                args.wal_group_commit_us = value("--wal-group-commit-us")?
                    .parse()
                    .map_err(|e| format!("--wal-group-commit-us: {e}"))?
            }
            "--event-loop" => args.event_loop = true,
            "--max-connections" => {
                args.max_connections = value("--max-connections")?
                    .parse()
                    .map_err(|e| format!("--max-connections: {e}"))?
            }
            "--keep-alive-timeout-ms" => {
                args.keep_alive_timeout_ms = value("--keep-alive-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--keep-alive-timeout-ms: {e}"))?
            }
            "--max-requests-per-conn" => {
                args.max_requests_per_conn = value("--max-requests-per-conn")?
                    .parse()
                    .map_err(|e| format!("--max-requests-per-conn: {e}"))?
            }
            "--drain-timeout-ms" => {
                args.drain_timeout_ms = value("--drain-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--drain-timeout-ms: {e}"))?
            }
            "--shard-role" => args.shard_role = Some(value("--shard-role")?),
            "--coordinator" => args.coordinator = Some(value("--coordinator")?),
            "--shard-map" => {
                args.shard_map = Some(
                    value("--shard-map")?
                        .parse()
                        .map_err(|e| format!("--shard-map: {e}"))?,
                )
            }
            "--shard-id" => {
                args.shard_id = Some(
                    value("--shard-id")?
                        .parse()
                        .map_err(|e| format!("--shard-id: {e}"))?,
                )
            }
            "--breaker-cooldown-ms" => {
                args.breaker_cooldown_ms = value("--breaker-cooldown-ms")?
                    .parse()
                    .map_err(|e| format!("--breaker-cooldown-ms: {e}"))?
            }
            "--help" | "-h" => {
                return Err("usage: elinda-serve [--addr HOST:PORT] [--workers N] \
                     [--queue-depth N] [--scale F] [--shards N] \
                     [--intra-query-threads N (0 = auto core budget)] \
                     [--deadline-ms N (0 = unbounded)] [--retry N] \
                     [--breaker N (failure threshold, 0 = never trips)] \
                     [--trace-sample F (0.0-1.0, default $ELINDA_TRACE_SAMPLE or 0)] \
                     [--cache-entries N (0 = disable result cache)] \
                     [--cache-bytes N] \
                     [--compact-interval-ms N (0 = no background compactor)] \
                     [--novelty-max-triples N (staged writes that wake it early)] \
                     [--store-dir DIR (persist compactions; reload on restart)] \
                     [--load FILE.nt (bulk-load instead of datagen)] \
                     [--wal DIR (append+fsync updates before acking; replay on restart)] \
                     [--wal-sync always|never|interval[:MS]] \
                     [--wal-group-commit-us N (fsync gather window)] \
                     [--event-loop (epoll front-end: keep-alive + pipelining)] \
                     [--max-connections N (event-loop connection cap)] \
                     [--keep-alive-timeout-ms N (idle connection close)] \
                     [--max-requests-per-conn N (close after N requests)] \
                     [--drain-timeout-ms N (rejected-request drain bound)] \
                     [--shard-role coordinator|shard (fabric role)] \
                     [--coordinator ADDR1,ADDR2,... (shard fleet, shard-id order)] \
                     [--shard-map N (total shards)] [--shard-id I (this partition)] \
                     [--breaker-cooldown-ms N (breaker open-state cooldown)]"
                    .into())
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    match args.shard_role.as_deref() {
        None => {
            if args.coordinator.is_some() {
                return Err("--coordinator requires --shard-role coordinator".into());
            }
            if args.shard_map.is_some() || args.shard_id.is_some() {
                return Err("--shard-map/--shard-id require --shard-role shard".into());
            }
        }
        Some("coordinator") => {
            let fleet = args
                .coordinator
                .as_deref()
                .ok_or("--shard-role coordinator requires --coordinator ADDR1,ADDR2,...")?;
            if fleet.split(',').all(|a| a.trim().is_empty()) {
                return Err("--coordinator: the shard address list is empty".into());
            }
            if args.shard_map.is_some() || args.shard_id.is_some() {
                return Err(
                    "--shard-map/--shard-id are shard-role flags; the coordinator's \
                     map is the --coordinator address list"
                        .into(),
                );
            }
            if args.wal.is_some() {
                return Err("--wal is incompatible with --shard-role coordinator: the \
                     coordinator has no write path to log"
                    .into());
            }
        }
        Some("shard") => {
            let map = args
                .shard_map
                .ok_or("--shard-role shard requires --shard-map N")?;
            let id = args
                .shard_id
                .ok_or("--shard-role shard requires --shard-id I")?;
            if map == 0 {
                return Err("--shard-map: the shard map must name at least one shard".into());
            }
            if id >= map {
                return Err(format!(
                    "--shard-id: {id} is out of range for a map of {map} shards"
                ));
            }
            if args.coordinator.is_some() {
                return Err("--coordinator is a coordinator-role flag".into());
            }
        }
        Some(other) => {
            return Err(format!(
                "--shard-role: `{other}` is not a role (expected coordinator or shard)"
            ))
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    let cold_start = Instant::now();
    let mut backend: Option<Arc<dyn StoreBackend>> = None;
    let source;
    let store: Arc<TripleStore> = if let Some(path) = &args.load {
        eprintln!("bulk-loading {path}...");
        let (loaded, report) = match bulk_load_ntriples_path(std::path::Path::new(path)) {
            Ok(loaded) => loaded,
            Err(e) => {
                eprintln!("failed to bulk-load {path}: {e}");
                std::process::exit(1);
            }
        };
        eprintln!(
            "loaded {} triples ({} duplicate, {} terms) from {} lines",
            report.triples, report.duplicates, report.terms, report.lines
        );
        let loaded = Arc::new(loaded);
        if let Some(dir) = &args.store_dir {
            match PersistentBackend::initialize(dir, Arc::clone(&loaded)) {
                Ok(b) => {
                    eprintln!("persisted as {dir} generation {}", b.generation());
                    backend = Some(Arc::new(b));
                }
                Err(e) => {
                    eprintln!("failed to persist into {dir}: {e}");
                    std::process::exit(1);
                }
            }
        }
        source = "bulk-load";
        loaded
    } else if let Some(dir) = &args.store_dir {
        match PersistentBackend::open(dir) {
            Ok(b) => {
                eprintln!(
                    "reopened {dir} generation {} ({} triples, no datagen)",
                    b.generation(),
                    b.snapshot().len()
                );
                let snapshot = b.snapshot();
                backend = Some(Arc::new(b));
                source = "disk";
                snapshot
            }
            Err(PersistError::NoCurrentGeneration { .. }) => {
                // First run against an empty directory: bootstrap from
                // datagen, then persist generation 1.
                eprintln!(
                    "{dir} is empty; generating synthetic DBpedia store (scale {})...",
                    args.scale
                );
                let generated =
                    Arc::new(generate_dbpedia(&DbpediaConfig::tiny().scaled(args.scale)));
                match PersistentBackend::initialize(dir, Arc::clone(&generated)) {
                    Ok(b) => {
                        eprintln!("persisted as {dir} generation {}", b.generation());
                        backend = Some(Arc::new(b));
                    }
                    Err(e) => {
                        eprintln!("failed to persist into {dir}: {e}");
                        std::process::exit(1);
                    }
                }
                source = "datagen-bootstrap";
                generated
            }
            Err(e) => {
                eprintln!("failed to open store directory {dir}: {e}");
                std::process::exit(1);
            }
        }
    } else {
        eprintln!(
            "generating synthetic DBpedia store (scale {})...",
            args.scale
        );
        source = "datagen";
        Arc::new(generate_dbpedia(&DbpediaConfig::tiny().scaled(args.scale)))
    };
    eprintln!(
        "cold-start: source={source} triples={} terms={} generation={} elapsed_ms={}",
        store.len(),
        store.interner().len(),
        backend
            .as_ref()
            .and_then(|b| b.committed_generation())
            .unwrap_or(0),
        cold_start.elapsed().as_millis()
    );

    // Per-request core budget: with W server workers on C cores, each
    // request gets max(1, C / W) threads so concurrent heavy queries
    // saturate the machine without oversubscribing it.
    let parallelism = if args.intra_query_threads == 0 {
        Parallelism::budgeted(args.workers, args.shards)
    } else {
        Parallelism::fixed(args.intra_query_threads, args.shards)
    };
    let deadline = (args.deadline_ms > 0).then(|| Duration::from_millis(args.deadline_ms));
    let resilience = ResilienceConfig {
        default_deadline: deadline,
        retry: if args.retry > 0 {
            RetryPolicy::new(
                args.retry,
                Duration::from_millis(5),
                Duration::from_millis(100),
            )
        } else {
            RetryPolicy::disabled()
        },
        breaker: BreakerConfig {
            failure_threshold: if args.breaker > 0 {
                args.breaker
            } else {
                u32::MAX
            },
            open_cooldown: Duration::from_millis(args.breaker_cooldown_ms),
        },
        ..ResilienceConfig::default()
    };
    let mut endpoint_config = EndpointConfig::parallel(parallelism);
    if args.cache_entries == 0 {
        endpoint_config.enable_cache = false;
    } else {
        endpoint_config.cache = CacheConfig {
            max_entries: args.cache_entries,
            max_bytes: args.cache_bytes,
            ..CacheConfig::default()
        };
    }
    let novelty_config = NoveltyConfig {
        max_triples: args.novelty_max_triples,
    };
    let mut state = if args.shard_role.as_deref() == Some("coordinator") {
        // parse_args guarantees a non-empty address list in this role.
        let fleet: Vec<String> = args
            .coordinator
            .as_deref()
            .unwrap_or("")
            .split(',')
            .map(|a| a.trim().to_string())
            .filter(|a| !a.is_empty())
            .collect();
        eprintln!(
            "shard-fabric: coordinator scattering to {} shards: {}",
            fleet.len(),
            fleet.join(",")
        );
        let mut fabric_config = FabricConfig::new(fleet);
        // One breaker policy for the whole stack: the per-shard fabric
        // breakers trip and cool down like the serving breaker.
        fabric_config.breaker = resilience.breaker;
        if let Some(deadline) = deadline {
            fabric_config.request_timeout = deadline;
        }
        ServerState::with_fabric(store, fabric_config, endpoint_config, resilience)
    } else {
        match backend {
            Some(backend) => {
                ServerState::with_backend(backend, endpoint_config, resilience, novelty_config)
            }
            None => {
                ServerState::with_write_config(store, endpoint_config, resilience, novelty_config)
            }
        }
    };
    if args.shard_role.as_deref() == Some("shard") {
        // parse_args guarantees both values in this role.
        let (id, map) = (args.shard_id.unwrap_or(0), args.shard_map.unwrap_or(1));
        if let Err(e) = state.enable_shard_eval(id, map) {
            eprintln!("failed to enable shard role: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "shard-fabric: shard {id} of {map} ({} partition triples)",
            state
                .shard_evaluator()
                .map_or(0, |evaluator| evaluator.partition_len())
        );
    }
    if let Some(dir) = &args.wal {
        let wal_config = WalConfig {
            sync: args.wal_sync,
            group_commit_window: Duration::from_micros(args.wal_group_commit_us),
        };
        let (wal, recovery) = match Wal::open(std::path::Path::new(dir), wal_config) {
            Ok(opened) => opened,
            Err(e) => {
                eprintln!("failed to open write-ahead log {dir}: {e}");
                std::process::exit(1);
            }
        };
        match state.attach_wal(Arc::new(wal), &recovery) {
            Ok(report) => eprintln!(
                "wal-recovery: replayed={} triples={} truncated={} torn={} segments={} sync={}",
                report.replayed_records,
                report.replayed_triples,
                report.truncated_bytes,
                report.torn,
                recovery.segments,
                args.wal_sync.name()
            ),
            Err(e) => {
                eprintln!("failed to replay write-ahead log {dir}: {e}");
                std::process::exit(1);
            }
        }
    }
    let state = Arc::new(state);
    let config = ServerConfig {
        workers: args.workers,
        queue_depth: args.queue_depth,
        read_timeout: Duration::from_secs(5),
        handler_delay: Duration::ZERO,
        request_deadline: deadline,
        trace_sample: args.trace_sample,
        compact_interval: (args.compact_interval_ms > 0)
            .then(|| Duration::from_millis(args.compact_interval_ms)),
        drain_timeout: Duration::from_millis(args.drain_timeout_ms),
        event_loop: args.event_loop,
        max_connections: args.max_connections,
        keep_alive_timeout: Duration::from_millis(args.keep_alive_timeout_ms),
        max_requests_per_conn: args.max_requests_per_conn,
    };
    let handle = match serve(Arc::clone(&state), args.addr.as_str(), config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("failed to bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    eprintln!(
        "listening on http://{} ({} workers, queue depth {}, {} shards × {} threads/query, {} front-end)",
        handle.local_addr(),
        args.workers,
        args.queue_depth,
        parallelism.shards,
        parallelism.threads,
        if args.event_loop {
            "event-loop"
        } else {
            "blocking"
        }
    );
    if args.event_loop {
        eprintln!(
            "keep-alive: max {} connections, idle timeout {}ms, {} requests/connection",
            args.max_connections, args.keep_alive_timeout_ms, args.max_requests_per_conn
        );
    }
    if args.trace_sample > 0.0 {
        eprintln!("tracing {:.0}% of requests", args.trace_sample * 100.0);
    }
    if args.compact_interval_ms > 0 {
        eprintln!(
            "background compactor: every {}ms or {} staged triples",
            args.compact_interval_ms, args.novelty_max_triples
        );
    }
    eprintln!(
        "routes: /sparql /update /shard/eval /health /metrics /explain /debug/trace/<id> — \
         type `quit` (or close stdin) to stop"
    );

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(text) if text.trim() == "quit" => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }

    eprintln!("shutting down (draining in-flight requests)...");
    let counters = handle.counters();
    handle.shutdown();
    // Drain-time flush: fold and persist staged writes, then force a
    // final WAL fsync, so a clean shutdown leaves nothing to replay.
    if let Some(report) = state.shutdown_flush() {
        eprintln!(
            "shutdown-flush: folded={} generation={}",
            report.folded,
            report
                .persisted_generation
                .map_or_else(|| "none".to_string(), |g| g.to_string())
        );
    }
    eprintln!(
        "served {} requests ({} shed by admission control)",
        counters.served, counters.shed
    );
}
