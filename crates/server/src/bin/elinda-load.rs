//! Bulk-load a dataset into a persistent store directory, offline.
//!
//! ```text
//! cargo run --bin elinda-load -- --out DIR [--input FILE.nt] [--scale 1.0]
//!                                [--export FILE.nt]
//! ```
//!
//! The input is either an N-Triples file (`--input`, streamed through
//! the bulk loader) or, absent one, the synthetic DBpedia generator at
//! `--scale`. The result is committed as the next generation of
//! `--out`; a subsequent `elinda-serve --store-dir DIR` serves it with
//! no datagen and no reparse. `--export` additionally writes the loaded
//! store back out as N-Triples (for seeding other tools or round-trip
//! checks). Exit code 0 only when the generation is durably committed.

use elinda_datagen::{generate_dbpedia, DbpediaConfig};
use elinda_store::{bulk_load_ntriples_path, export_ntriples, PersistentBackend, TripleStore};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

struct Args {
    out: String,
    input: Option<String>,
    scale: f64,
    export: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut out = None;
    let mut input = None;
    let mut scale = 1.0f64;
    let mut export = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--out" => out = Some(value("--out")?),
            "--input" => input = Some(value("--input")?),
            "--scale" => {
                scale = value("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?
            }
            "--export" => export = Some(value("--export")?),
            "--help" | "-h" => {
                return Err("usage: elinda-load --out DIR [--input FILE.nt] \
                     [--scale F (datagen scale when no --input)] \
                     [--export FILE.nt (write the loaded store back out)]"
                    .into())
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(Args {
        out: out.ok_or("--out DIR is required")?,
        input,
        scale,
        export,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    let start = Instant::now();
    let store: TripleStore = match &args.input {
        Some(path) => {
            eprintln!("bulk-loading {path}...");
            match bulk_load_ntriples_path(Path::new(path)) {
                Ok((store, report)) => {
                    eprintln!(
                        "loaded {} triples ({} duplicate, {} terms) from {} lines in {}ms",
                        report.triples,
                        report.duplicates,
                        report.terms,
                        report.lines,
                        report.elapsed.as_millis()
                    );
                    store
                }
                Err(e) => {
                    eprintln!("failed to bulk-load {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => {
            eprintln!(
                "generating synthetic DBpedia store (scale {})...",
                args.scale
            );
            generate_dbpedia(&DbpediaConfig::tiny().scaled(args.scale))
        }
    };

    let store = Arc::new(store);
    let backend = match PersistentBackend::initialize(&args.out, Arc::clone(&store)) {
        Ok(backend) => backend,
        Err(e) => {
            eprintln!("failed to persist into {}: {e}", args.out);
            std::process::exit(1);
        }
    };
    eprintln!(
        "committed {} triples as {} generation {} in {}ms",
        store.len(),
        args.out,
        backend.generation(),
        start.elapsed().as_millis()
    );

    if let Some(path) = &args.export {
        let result = std::fs::File::create(path).and_then(|f| {
            let mut w = std::io::BufWriter::new(f);
            export_ntriples(&store, &mut w)
        });
        match result {
            Ok(()) => eprintln!("exported N-Triples to {path}"),
            Err(e) => {
                eprintln!("failed to export to {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
