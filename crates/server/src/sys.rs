//! Raw Linux syscalls for the event-driven front-end.
//!
//! The workspace is dependency-free (no `libc`, no `mio`), so the few
//! kernel interfaces the reactor needs — `epoll` readiness and an
//! `RLIMIT_NOFILE` raise for many-connection tests — are invoked
//! directly via the architecture's syscall instruction. Everything is
//! gated per target: on x86_64/aarch64 Linux the real syscalls run; on
//! any other target the module compiles to stubs that report
//! [`supported`]` == false` so the server falls back to the blocking
//! front-end instead of failing at runtime.
//!
//! Safety model: each wrapper passes only valid file descriptors and
//! properly sized, properly aligned buffers owned by the caller, and
//! translates the kernel's negative-errno convention into
//! [`io::Error`] immediately, so no raw return value escapes this
//! module.

use std::io;

/// Readable (subset of `epoll_event.events` the reactor uses).
pub const EPOLLIN: u32 = 0x001;
/// Writable.
pub const EPOLLOUT: u32 = 0x004;
/// Transport error (always reported, never needs registering).
pub const EPOLLERR: u32 = 0x008;
/// Both directions hung up (always reported).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write half (half-closed connection).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0x80000;

/// One readiness record returned by `epoll_wait`.
///
/// The kernel's `struct epoll_event` is packed on x86_64 (a historical
/// ABI quirk: 12 bytes, no padding) but naturally aligned (16 bytes)
/// everywhere else — get the layout wrong and the kernel scribbles
/// events across record boundaries.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Debug, Clone, Copy)]
pub struct EpollEvent {
    /// Readiness bitmask (`EPOLL*` flags above).
    pub events: u32,
    /// Caller-chosen token identifying the registered fd.
    pub token: u64,
}

impl EpollEvent {
    /// An all-zero record, for pre-sizing `epoll_wait` buffers.
    pub const fn zeroed() -> EpollEvent {
        EpollEvent {
            events: 0,
            token: 0,
        }
    }

    /// Copy out the readiness mask (a by-value read is required on
    /// x86_64, where the packed field may be unaligned).
    pub fn events(&self) -> u32 {
        let e = *self;
        e.events
    }

    /// Copy out the registration token.
    pub fn token(&self) -> u64 {
        let e = *self;
        e.token
    }
}

/// Whether this build has a working epoll backend. `false` means the
/// event-driven front-end is unavailable and callers must use the
/// blocking front-end.
pub fn supported() -> bool {
    imp::SUPPORTED
}

/// An owned epoll instance; the fd is closed on drop.
#[derive(Debug)]
pub struct Epoll {
    fd: i32,
}

impl Epoll {
    /// Create a close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        let fd = imp::epoll_create1(EPOLL_CLOEXEC)?;
        Ok(Epoll { fd })
    }

    /// Register `fd` for the `events` mask under `token`.
    pub fn add(&self, fd: i32, token: u64, events: u32) -> io::Result<()> {
        let mut ev = EpollEvent { events, token };
        imp::epoll_ctl(self.fd, EPOLL_CTL_ADD, fd, &mut ev)
    }

    /// Change the registered `events` mask for `fd`.
    pub fn modify(&self, fd: i32, token: u64, events: u32) -> io::Result<()> {
        let mut ev = EpollEvent { events, token };
        imp::epoll_ctl(self.fd, EPOLL_CTL_MOD, fd, &mut ev)
    }

    /// Remove `fd` from the interest set.
    pub fn delete(&self, fd: i32) -> io::Result<()> {
        let mut ev = EpollEvent::zeroed();
        imp::epoll_ctl(self.fd, EPOLL_CTL_DEL, fd, &mut ev)
    }

    /// Block up to `timeout_ms` (`-1` = forever) for readiness; fills
    /// `events` from the front and returns how many records are valid.
    /// `EINTR` is retried internally with the same timeout.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            match imp::epoll_pwait(self.fd, events, timeout_ms) {
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                other => return other.map(|n| n as usize),
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        imp::close(self.fd);
    }
}

/// Raise the soft `RLIMIT_NOFILE` toward `want` (capped at the hard
/// limit). Returns the soft limit now in effect. Used by
/// many-connection tests and the CI bench leg, where default soft
/// limits (often 1024) are far below the connection counts exercised.
pub fn raise_nofile(want: u64) -> io::Result<u64> {
    imp::raise_nofile(want)
}

/// Set the soft `RLIMIT_NOFILE` to exactly `want` (capped at the hard
/// limit), *lowering* it if needed. Returns the limit now in effect.
/// Exists for tests that provoke real `EMFILE` conditions (accept-error
/// handling); production code should only ever [`raise_nofile`].
pub fn set_soft_nofile(want: u64) -> io::Result<u64> {
    imp::set_soft_nofile(want)
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    use super::EpollEvent;
    use std::arch::asm;
    use std::io;

    pub const SUPPORTED: bool = true;

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const CLOSE: usize = 3;
        pub const EPOLL_CTL: usize = 233;
        pub const EPOLL_PWAIT: usize = 281;
        pub const EPOLL_CREATE1: usize = 291;
        pub const PRLIMIT64: usize = 302;
    }

    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const CLOSE: usize = 57;
        pub const EPOLL_CTL: usize = 21;
        pub const EPOLL_PWAIT: usize = 22;
        pub const EPOLL_CREATE1: usize = 20;
        pub const PRLIMIT64: usize = 261;
    }

    /// Invoke syscall `n` with four arguments, returning the raw
    /// kernel result (negative errno on failure).
    ///
    /// SAFETY (callers): arguments must match what the kernel expects
    /// for `n` — fds must be live, pointers must reference memory valid
    /// for the call's duration and access mode.
    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall4(n: usize, a1: usize, a2: usize, a3: usize, a4: usize) -> isize {
        let ret: isize;
        // SAFETY: the `syscall` instruction with the kernel-clobbered
        // rcx/r11 declared; all argument registers are inputs only.
        unsafe {
            asm!(
                "syscall",
                inlateout("rax") n as isize => ret,
                in("rdi") a1,
                in("rsi") a2,
                in("rdx") a3,
                in("r10") a4,
                out("rcx") _,
                out("r11") _,
                options(nostack),
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall4(n: usize, a1: usize, a2: usize, a3: usize, a4: usize) -> isize {
        let ret: isize;
        // SAFETY: `svc 0` with the syscall number in x8, arguments in
        // x0..x3, result in x0.
        unsafe {
            asm!(
                "svc 0",
                in("x8") n,
                inlateout("x0") a1 as isize => ret,
                in("x1") a2,
                in("x2") a3,
                in("x3") a4,
                options(nostack),
            );
        }
        ret
    }

    /// Map a raw kernel return to `io::Result`.
    fn check(ret: isize) -> io::Result<isize> {
        if (-4095..0).contains(&ret) {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret)
        }
    }

    pub fn epoll_create1(flags: i32) -> io::Result<i32> {
        // SAFETY: no pointers involved.
        let ret = unsafe { syscall4(nr::EPOLL_CREATE1, flags as usize, 0, 0, 0) };
        check(ret).map(|fd| fd as i32)
    }

    pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: &mut EpollEvent) -> io::Result<()> {
        // SAFETY: `event` is a live, exclusively borrowed EpollEvent
        // with the kernel's expected layout for this architecture.
        let ret = unsafe {
            syscall4(
                nr::EPOLL_CTL,
                epfd as usize,
                op as usize,
                fd as usize,
                event as *mut EpollEvent as usize,
            )
        };
        check(ret).map(|_| ())
    }

    pub fn epoll_pwait(epfd: i32, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<isize> {
        // epoll_pwait's 5th argument (sigmask) is NULL = epoll_wait
        // semantics; x86_64 dropped plain epoll_wait from new ABIs, so
        // pwait is the portable spelling. A NULL mask ignores the 6th
        // (sigsetsize) argument.
        #[cfg(target_arch = "x86_64")]
        unsafe fn pwait(epfd: i32, ptr: usize, len: usize, timeout_ms: i32) -> isize {
            let ret: isize;
            // SAFETY: five-argument syscall; r8 carries the NULL sigmask.
            unsafe {
                asm!(
                    "syscall",
                    inlateout("rax") nr::EPOLL_PWAIT as isize => ret,
                    in("rdi") epfd as usize,
                    in("rsi") ptr,
                    in("rdx") len,
                    in("r10") timeout_ms as isize,
                    in("r8") 0usize,
                    out("rcx") _,
                    out("r11") _,
                    options(nostack),
                );
            }
            ret
        }
        #[cfg(target_arch = "aarch64")]
        unsafe fn pwait(epfd: i32, ptr: usize, len: usize, timeout_ms: i32) -> isize {
            let ret: isize;
            // SAFETY: five-argument syscall; x4 carries the NULL sigmask.
            unsafe {
                asm!(
                    "svc 0",
                    in("x8") nr::EPOLL_PWAIT,
                    inlateout("x0") epfd as isize => ret,
                    in("x1") ptr,
                    in("x2") len,
                    in("x3") timeout_ms as isize,
                    in("x4") 0usize,
                    options(nostack),
                );
            }
            ret
        }
        if events.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "empty event buffer",
            ));
        }
        // SAFETY: `events` is a live exclusive slice; the kernel writes
        // at most `events.len()` records into it.
        let ret = unsafe { pwait(epfd, events.as_mut_ptr() as usize, events.len(), timeout_ms) };
        check(ret)
    }

    pub fn close(fd: i32) {
        // SAFETY: no pointers; double-close is prevented by ownership
        // in `Epoll`.
        let _ = unsafe { syscall4(nr::CLOSE, fd as usize, 0, 0, 0) };
    }

    const RLIMIT_NOFILE: usize = 7;

    #[repr(C)]
    struct Rlimit64 {
        cur: u64,
        max: u64,
    }

    pub fn raise_nofile(want: u64) -> io::Result<u64> {
        let mut current = Rlimit64 { cur: 0, max: 0 };
        // SAFETY: pid 0 = this process; new_limit NULL = read-only;
        // `current` is a live exclusive Rlimit64.
        let ret = unsafe {
            syscall4(
                nr::PRLIMIT64,
                0,
                RLIMIT_NOFILE,
                0,
                &mut current as *mut Rlimit64 as usize,
            )
        };
        check(ret)?;
        let target = want.min(current.max);
        if current.cur >= target {
            return Ok(current.cur);
        }
        let new_limit = Rlimit64 {
            cur: target,
            max: current.max,
        };
        // SAFETY: old_limit NULL = write-only; `new_limit` is live for
        // the call.
        let ret = unsafe {
            syscall4(
                nr::PRLIMIT64,
                0,
                RLIMIT_NOFILE,
                &new_limit as *const Rlimit64 as usize,
                0,
            )
        };
        check(ret)?;
        Ok(target)
    }

    pub fn set_soft_nofile(want: u64) -> io::Result<u64> {
        let mut current = Rlimit64 { cur: 0, max: 0 };
        // SAFETY: pid 0 = this process; new_limit NULL = read-only;
        // `current` is a live exclusive Rlimit64.
        let ret = unsafe {
            syscall4(
                nr::PRLIMIT64,
                0,
                RLIMIT_NOFILE,
                0,
                &mut current as *mut Rlimit64 as usize,
            )
        };
        check(ret)?;
        let target = want.min(current.max);
        let new_limit = Rlimit64 {
            cur: target,
            max: current.max,
        };
        // SAFETY: old_limit NULL = write-only; `new_limit` is live for
        // the call.
        let ret = unsafe {
            syscall4(
                nr::PRLIMIT64,
                0,
                RLIMIT_NOFILE,
                &new_limit as *const Rlimit64 as usize,
                0,
            )
        };
        check(ret)?;
        Ok(target)
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod imp {
    use super::EpollEvent;
    use std::io;

    pub const SUPPORTED: bool = false;

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll is unavailable on this target; use the blocking front-end",
        ))
    }

    pub fn epoll_create1(_flags: i32) -> io::Result<i32> {
        unsupported()
    }

    pub fn epoll_ctl(_epfd: i32, _op: i32, _fd: i32, _event: &mut EpollEvent) -> io::Result<()> {
        unsupported()
    }

    pub fn epoll_pwait(
        _epfd: i32,
        _events: &mut [EpollEvent],
        _timeout_ms: i32,
    ) -> io::Result<isize> {
        unsupported()
    }

    pub fn close(_fd: i32) {}

    pub fn raise_nofile(_want: u64) -> io::Result<u64> {
        unsupported()
    }

    pub fn set_soft_nofile(_want: u64) -> io::Result<u64> {
        unsupported()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn epoll_reports_readability_on_a_socket_pair() {
        if !supported() {
            return;
        }
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let epoll = Epoll::new().unwrap();
        epoll
            .add(server_side.as_raw_fd(), 42, EPOLLIN | EPOLLRDHUP)
            .unwrap();

        // Nothing written yet: a short wait must time out empty.
        let mut events = [EpollEvent::zeroed(); 8];
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        client.write_all(b"x").unwrap();
        client.flush().unwrap();
        let n = epoll.wait(&mut events, 2_000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 42);
        assert_ne!(events[0].events() & EPOLLIN, 0);

        // Peer close surfaces as RDHUP (and/or HUP), not silence.
        drop(client);
        let n = epoll.wait(&mut events, 2_000).unwrap();
        assert_eq!(n, 1);
        assert_ne!(events[0].events() & (EPOLLRDHUP | EPOLLHUP | EPOLLIN), 0);

        epoll.delete(server_side.as_raw_fd()).unwrap();
    }

    #[test]
    fn epoll_modify_switches_interest_to_writability() {
        if !supported() {
            return;
        }
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();

        let epoll = Epoll::new().unwrap();
        epoll.add(server_side.as_raw_fd(), 7, EPOLLIN).unwrap();
        // An idle connected socket is writable the moment we ask.
        epoll.modify(server_side.as_raw_fd(), 7, EPOLLOUT).unwrap();
        let mut events = [EpollEvent::zeroed(); 8];
        let n = epoll.wait(&mut events, 2_000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 7);
        assert_ne!(events[0].events() & EPOLLOUT, 0);
        drop(client);
    }

    #[test]
    fn raise_nofile_is_monotone_and_capped() {
        if !supported() {
            return;
        }
        let current = raise_nofile(0).unwrap();
        // Asking for less than the current soft limit never lowers it.
        assert!(raise_nofile(0).unwrap() >= current);
        // Asking for an absurd amount caps at the hard limit instead of
        // failing.
        let raised = raise_nofile(u64::MAX).unwrap();
        assert!(raised >= current);
    }
}
