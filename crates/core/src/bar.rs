//! [`Bar`]: the formal model's `B = ⟨S, λ, t⟩`.

use crate::nodeset::NodeSet;
use crate::spec::SetSpec;
use elinda_rdf::TermId;

/// The type `t` of a bar: its node set represents instances of a class or
/// the subjects/objects featuring a property.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BarKind {
    /// The bar's nodes are instances associated with a class (its label).
    Class,
    /// The bar's nodes are URIs associated with a property (its label).
    Property,
}

/// A bar `⟨S, λ, t⟩` plus the intensional definition of `S`.
#[derive(Debug, Clone, PartialEq)]
pub struct Bar {
    /// The node set `S`.
    pub nodes: NodeSet,
    /// The label `λ` (a class or property URI).
    pub label: TermId,
    /// The bar type `t`.
    pub kind: BarKind,
    /// How `S` is defined from the exploration path; enables SPARQL
    /// generation for this bar.
    pub spec: SetSpec,
}

impl Bar {
    /// Construct a bar.
    pub fn new(nodes: NodeSet, label: TermId, kind: BarKind, spec: SetSpec) -> Self {
        Bar {
            nodes,
            label,
            kind,
            spec,
        }
    }

    /// The bar height `|S|`.
    pub fn height(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> TermId {
        TermId::from_raw(n).unwrap()
    }

    #[test]
    fn height_is_set_size() {
        let bar = Bar::new(
            [id(1), id(2), id(3)].into_iter().collect(),
            id(9),
            BarKind::Class,
            SetSpec::AllOfType(id(9)),
        );
        assert_eq!(bar.height(), 3);
        assert_eq!(bar.kind, BarKind::Class);
    }
}
