//! [`Session`]: the tabbed multi-pane workspace of Section 3.2.
//!
//! "Exploration with ELINDA is effectively performed by constructing a
//! sequence of tabbed panes. … When pointing ELINDA to a new dataset an
//! initial pane is shown, and during the exploration the user may open
//! additional panes one beneath the other." Each pane remembers which
//! tab is active (Subclasses / Property Data / Connections), its coverage
//! threshold, and which bar of which pane opened it — from which the
//! breadcrumb trail is derived.

use crate::bar::{Bar, BarKind};
use crate::chart::BarChart;
use crate::expansion::Direction;
use crate::explorer::Explorer;
use crate::pane::{Pane, DEFAULT_COVERAGE_THRESHOLD};
use elinda_rdf::TermId;

/// The active tab of a pane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tab {
    /// The default subclass-distribution chart.
    Subclasses,
    /// The property-coverage chart (outgoing or ingoing).
    PropertyData(Direction),
    /// The object expansion for a selected property.
    Connections(TermId, Direction),
}

/// One pane plus its UI state.
#[derive(Debug, Clone)]
pub struct PaneState {
    /// The pane model.
    pub pane: Pane,
    /// The active tab.
    pub tab: Tab,
    /// The property-chart coverage threshold (default 20%).
    pub threshold: f64,
    /// `(parent pane index, clicked bar label)` when opened from a bar.
    pub opened_from: Option<(usize, TermId)>,
}

/// An eLinda session: an explorer plus the stack of open panes.
pub struct Session<'a> {
    explorer: Explorer<'a>,
    panes: Vec<PaneState>,
    active: usize,
}

impl<'a> Session<'a> {
    /// Start a session; `None` when the dataset has no typed subjects.
    pub fn start(explorer: Explorer<'a>) -> Option<Self> {
        let initial = explorer.initial_pane()?;
        Some(Session {
            explorer,
            panes: vec![PaneState {
                pane: initial,
                tab: Tab::Subclasses,
                threshold: DEFAULT_COVERAGE_THRESHOLD,
                opened_from: None,
            }],
            active: 0,
        })
    }

    /// The explorer.
    pub fn explorer(&self) -> &Explorer<'a> {
        &self.explorer
    }

    /// All open panes, oldest first.
    pub fn panes(&self) -> &[PaneState] {
        &self.panes
    }

    /// Index of the active pane.
    pub fn active_index(&self) -> usize {
        self.active
    }

    /// The active pane.
    pub fn active(&self) -> &PaneState {
        &self.panes[self.active]
    }

    /// Activate a pane by index.
    pub fn select(&mut self, index: usize) -> bool {
        if index < self.panes.len() {
            self.active = index;
            true
        } else {
            false
        }
    }

    /// Switch the active pane's tab.
    pub fn set_tab(&mut self, tab: Tab) {
        self.panes[self.active].tab = tab;
    }

    /// Adjust the active pane's coverage threshold ("the user may adjust
    /// the threshold and reveal more properties").
    pub fn set_threshold(&mut self, threshold: f64) {
        self.panes[self.active].threshold = threshold.clamp(0.0, 1.0);
    }

    /// The chart of the active pane's current tab.
    pub fn current_chart(&self) -> BarChart {
        let state = self.active();
        match state.tab {
            Tab::Subclasses => state.pane.subclass_chart(&self.explorer),
            Tab::PropertyData(dir) => state.pane.property_chart(&self.explorer, dir),
            Tab::Connections(prop, dir) => state
                .pane
                .connections_chart(&self.explorer, prop, dir)
                .unwrap_or_else(|_| state.pane.subclass_chart(&self.explorer)),
        }
    }

    /// Open a pane for a class by name (the autocomplete search path).
    pub fn open_class(&mut self, class: TermId) -> usize {
        let pane = self.explorer.pane_for_class(class);
        self.push(pane, None)
    }

    /// Click a class bar of the active pane's current chart: opens a new
    /// pane beneath, focused on the (narrowed) bar set.
    pub fn click_bar(&mut self, bar: &Bar) -> Option<usize> {
        if bar.kind != BarKind::Class {
            return None;
        }
        let parent = self.active;
        let pane = self.explorer.pane_from_bar(bar)?;
        Some(self.push(pane, Some((parent, bar.label))))
    }

    /// Close a pane (the initial pane cannot be closed).
    pub fn close(&mut self, index: usize) -> bool {
        if index == 0 || index >= self.panes.len() {
            return false;
        }
        self.panes.remove(index);
        // Re-point children of the removed pane at its parent and shift
        // later indices down.
        for state in &mut self.panes {
            if let Some((parent, _)) = &mut state.opened_from {
                if *parent == index {
                    *parent = 0;
                } else if *parent > index {
                    *parent -= 1;
                }
            }
        }
        if self.active >= self.panes.len() {
            self.active = self.panes.len() - 1;
        }
        true
    }

    /// The breadcrumb trail of the active pane: the labels clicked to
    /// reach it, root first.
    pub fn breadcrumbs(&self) -> Vec<String> {
        let mut crumbs = Vec::new();
        let mut cursor = self.active;
        let mut guard = 0;
        while let Some((parent, label)) = self.panes[cursor].opened_from {
            crumbs.push(self.explorer.display(label).to_string());
            cursor = parent;
            guard += 1;
            if guard > self.panes.len() {
                break; // defensive: cycles cannot normally occur
            }
        }
        crumbs.reverse();
        crumbs
    }

    fn push(&mut self, pane: Pane, opened_from: Option<(usize, TermId)>) -> usize {
        self.panes.push(PaneState {
            pane,
            tab: Tab::Subclasses,
            threshold: DEFAULT_COVERAGE_THRESHOLD,
            opened_from,
        });
        self.active = self.panes.len() - 1;
        self.active
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elinda_store::TripleStore;

    const DATA: &str = r#"
        @prefix ex: <http://e/> .
        @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
        @prefix owl: <http://www.w3.org/2002/07/owl#> .
        ex:Agent rdfs:subClassOf owl:Thing ; rdfs:label "Agent"@en .
        ex:Person rdfs:subClassOf ex:Agent ; rdfs:label "Person"@en .
        ex:alice a ex:Person ; a ex:Agent ; a owl:Thing ; ex:knows ex:bob .
        ex:bob a ex:Person ; a ex:Agent ; a owl:Thing .
    "#;

    fn session(store: &TripleStore) -> Session<'_> {
        Session::start(Explorer::new(store)).expect("typed data")
    }

    fn id(store: &TripleStore, local: &str) -> TermId {
        store.lookup_iri(&format!("http://e/{local}")).unwrap()
    }

    #[test]
    fn starts_with_the_initial_pane() {
        let store = TripleStore::from_turtle(DATA).unwrap();
        let s = session(&store);
        assert_eq!(s.panes().len(), 1);
        assert_eq!(s.active().tab, Tab::Subclasses);
        assert!(!s.current_chart().is_empty());
    }

    #[test]
    fn clicking_bars_opens_panes_beneath() {
        let store = TripleStore::from_turtle(DATA).unwrap();
        let mut s = session(&store);
        let chart = s.current_chart();
        let agent_bar = chart.bar(id(&store, "Agent")).unwrap().clone();
        let idx = s.click_bar(&agent_bar).unwrap();
        assert_eq!(idx, 1);
        assert_eq!(s.active().pane.title, "Agent");
        let chart = s.current_chart();
        let person_bar = chart.bar(id(&store, "Person")).unwrap().clone();
        s.click_bar(&person_bar).unwrap();
        assert_eq!(s.panes().len(), 3);
        assert_eq!(s.breadcrumbs(), vec!["Agent", "Person"]);
    }

    #[test]
    fn property_bars_do_not_open_panes() {
        let store = TripleStore::from_turtle(DATA).unwrap();
        let mut s = session(&store);
        s.set_tab(Tab::PropertyData(Direction::Outgoing));
        let chart = s.current_chart();
        let bar = chart.bars()[0].clone();
        assert!(s.click_bar(&bar).is_none());
        assert_eq!(s.panes().len(), 1);
    }

    #[test]
    fn tabs_and_threshold() {
        let store = TripleStore::from_turtle(DATA).unwrap();
        let mut s = session(&store);
        s.set_tab(Tab::PropertyData(Direction::Outgoing));
        let chart = s.current_chart();
        assert!(matches!(
            chart.kind(),
            crate::chart::ChartKind::PropertyOutgoing
        ));
        s.set_threshold(2.0);
        assert_eq!(s.active().threshold, 1.0); // clamped
        s.set_threshold(0.5);
        let visible = chart.above_coverage(s.active().threshold);
        assert!(visible.len() <= chart.len());
    }

    #[test]
    fn connections_tab() {
        let store = TripleStore::from_turtle(DATA).unwrap();
        let mut s = session(&store);
        let chart = s.current_chart();
        let agent_bar = chart.bar(id(&store, "Agent")).unwrap().clone();
        s.click_bar(&agent_bar).unwrap();
        s.set_tab(Tab::Connections(id(&store, "knows"), Direction::Outgoing));
        let conn = s.current_chart();
        // bob is known; he is a Person/Agent/Thing.
        assert!(conn.bar(id(&store, "Person")).is_some());
    }

    #[test]
    fn close_and_reselect() {
        let store = TripleStore::from_turtle(DATA).unwrap();
        let mut s = session(&store);
        let chart = s.current_chart();
        let agent_bar = chart.bar(id(&store, "Agent")).unwrap().clone();
        s.click_bar(&agent_bar).unwrap();
        assert!(!s.close(0), "initial pane cannot close");
        assert!(s.close(1));
        assert_eq!(s.panes().len(), 1);
        assert_eq!(s.active_index(), 0);
        assert!(!s.select(5));
        assert!(s.select(0));
    }

    #[test]
    fn closing_a_middle_pane_repoints_children() {
        let store = TripleStore::from_turtle(DATA).unwrap();
        let mut s = session(&store);
        let chart = s.current_chart();
        let agent_bar = chart.bar(id(&store, "Agent")).unwrap().clone();
        s.click_bar(&agent_bar).unwrap(); // pane 1
        let chart = s.current_chart();
        let person_bar = chart.bar(id(&store, "Person")).unwrap().clone();
        s.click_bar(&person_bar).unwrap(); // pane 2 (child of 1)
        s.close(1);
        // Pane 2 (now index 1) re-points at the root.
        assert_eq!(s.panes()[1].opened_from.unwrap().0, 0);
        s.select(1);
        assert_eq!(s.breadcrumbs(), vec!["Person"]);
    }
}
