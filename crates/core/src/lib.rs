#![warn(missing_docs)]

//! The eLinda exploration model (paper Sections 2–3).
//!
//! The formal core: a *bar* is a triple `B = ⟨S, λ, t⟩` of a URI set, a
//! label, and a type (`class` or `property`); a *bar chart* maps labels to
//! bars; a *bar expansion* turns a bar into a chart. eLinda supports three
//! expansions — subclass, property, and object — each with outgoing and
//! incoming variants, plus a filter operation, chained into *explorations*
//! `(λ₁, η₁) ↦ B₁, …, (λₘ, ηₘ) ↦ Bₘ`.
//!
//! Modules:
//!
//! * [`nodeset`] — sorted, shared URI sets (`S`);
//! * [`spec`] — the *intensional* definition of a set, accumulated along
//!   the exploration path; every bar carries one, which is what makes
//!   "generate SPARQL code to extract each of the bars" possible;
//! * [`bar`] / [`chart`] — bars and charts, sorted by decreasing height;
//! * [`expansion`] — the three expansions and the filter operation, each
//!   implemented algorithmically over the store indexes *and* expressible
//!   as generated SPARQL (differential tests assert agreement);
//! * [`explorer`] — the session facade: hierarchy + labels + panes;
//! * [`pane`] — the UI pane model: statistics, tabs, coverage threshold;
//! * [`exploration`] — exploration paths with the validity rules (a)–(c);
//! * [`table`] — the data table with per-column filters and SPARQL
//!   exposure.

pub mod bar;
pub mod chart;
pub mod expansion;
pub mod exploration;
pub mod explorer;
pub mod nodeset;
pub mod pane;
pub mod session;
pub mod spec;
pub mod table;

pub use bar::{Bar, BarKind};
pub use chart::{BarChart, ChartKind};
pub use expansion::{Direction, ExpansionKind, UriFilter};
pub use exploration::{Exploration, ExplorationError, ExplorationStep};
pub use explorer::Explorer;
pub use nodeset::NodeSet;
pub use pane::{Pane, PaneStats};
pub use session::{PaneState, Session, Tab};
pub use spec::SetSpec;
pub use table::{ColumnFilter, DataTable};
