//! [`DataTable`]: the tabular instance-data view of Section 3.3.
//!
//! "Each bar in the property chart that is selected by the user is added
//! as a new column in the table. The column is then filled-in with actual
//! values that are fetched from the dataset. … the table exposes the
//! SPARQL query it was generated from. … A data filter may be attached to
//! each table column … Note that by applying data filters, the set S that
//! is captured by the pane is left unchanged. If we want to change our
//! focus of exploration we may ask ELINDA to open a new pane that is
//! associated with S_f — the set S after applying the filters (filter
//! expansion)."

use crate::nodeset::NodeSet;
use crate::spec::SetSpec;
use elinda_rdf::{Term, TermId};
use elinda_sparql::ast::{
    Expr, Func, GroupGraphPattern, PatternElement, Query, SelectClause, SelectItem, SelectItems,
    TermOrVar, TriplePatternAst,
};
use elinda_store::TripleStore;

/// A filter attached to a table column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnFilter {
    /// Keep rows whose column contains the exact value.
    Equals {
        /// The column's property.
        prop: TermId,
        /// The required value.
        value: TermId,
    },
    /// Keep rows where some value's string form contains the text
    /// (case-sensitive).
    Contains {
        /// The column's property.
        prop: TermId,
        /// The text to search for.
        text: String,
    },
}

impl ColumnFilter {
    /// The property the filter applies to.
    pub fn prop(&self) -> TermId {
        match self {
            ColumnFilter::Equals { prop, .. } | ColumnFilter::Contains { prop, .. } => *prop,
        }
    }

    fn accepts(&self, store: &TripleStore, instance: TermId) -> bool {
        match self {
            ColumnFilter::Equals { prop, value } => {
                store.contains(elinda_rdf::Triple::new(instance, *prop, *value))
            }
            ColumnFilter::Contains { prop, text } => store.objects_of(instance, *prop).any(|o| {
                let term = store.resolve(o);
                match term {
                    Term::Iri(i) => i.contains(text.as_str()),
                    Term::Literal(l) => l.lexical().contains(text.as_str()),
                }
            }),
        }
    }
}

/// One table column: a property and, per instance, its values.
#[derive(Debug, Clone)]
pub struct Column {
    /// The property.
    pub prop: TermId,
    /// Values per instance, aligned with the table's instance order.
    pub values: Vec<Vec<TermId>>,
}

/// The data table over a pane's instance set.
#[derive(Debug, Clone)]
pub struct DataTable {
    instances: NodeSet,
    spec: SetSpec,
    columns: Vec<Column>,
    filters: Vec<ColumnFilter>,
}

impl DataTable {
    /// An empty table over the pane's set.
    pub fn new(instances: NodeSet, spec: SetSpec) -> Self {
        DataTable {
            instances,
            spec,
            columns: Vec::new(),
            filters: Vec::new(),
        }
    }

    /// The pane set `S` (never changed by filters).
    pub fn instances(&self) -> &NodeSet {
        &self.instances
    }

    /// The columns, in selection order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The attached filters.
    pub fn filters(&self) -> &[ColumnFilter] {
        &self.filters
    }

    /// Add a property column and fill it from the dataset.
    pub fn add_column(&mut self, store: &TripleStore, prop: TermId) {
        if self.columns.iter().any(|c| c.prop == prop) {
            return;
        }
        let values = self
            .instances
            .iter()
            .map(|s| store.objects_of(s, prop).collect())
            .collect();
        self.columns.push(Column { prop, values });
    }

    /// Remove a column (and any filters on it).
    pub fn remove_column(&mut self, prop: TermId) {
        self.columns.retain(|c| c.prop != prop);
        self.filters.retain(|f| f.prop() != prop);
    }

    /// Attach a filter.
    pub fn add_filter(&mut self, filter: ColumnFilter) {
        self.filters.push(filter);
    }

    /// The visible rows: `(instance, values per column)` for instances
    /// passing every filter.
    pub fn rows<'t>(
        &'t self,
        store: &'t TripleStore,
    ) -> impl Iterator<Item = (TermId, Vec<&'t [TermId]>)> + 't {
        self.instances
            .as_slice()
            .iter()
            .enumerate()
            .filter(move |(_, &s)| self.filters.iter().all(|f| f.accepts(store, s)))
            .map(move |(i, &s)| {
                let vals = self
                    .columns
                    .iter()
                    .map(|c| c.values[i].as_slice())
                    .collect();
                (s, vals)
            })
    }

    /// `S_f`: the instance set after applying the filters — the input to
    /// the filter expansion (opening a new pane on the narrowed set).
    pub fn filtered_instances(&self, store: &TripleStore) -> NodeSet {
        self.instances
            .filter(|s| self.filters.iter().all(|f| f.accepts(store, s)))
    }

    /// The spec of `S_f`, refining the pane spec with each `Equals`
    /// filter. `Contains` filters are not expressible as triple patterns
    /// alone and are attached as SPARQL `FILTER`s in [`Self::to_query`].
    pub fn filtered_spec(&self) -> SetSpec {
        let mut spec = self.spec.clone();
        for f in &self.filters {
            if let ColumnFilter::Equals { prop, value } = f {
                spec = SetSpec::WithValue {
                    parent: Box::new(spec),
                    prop: *prop,
                    value: *value,
                };
            }
        }
        spec
    }

    /// The SPARQL query the table "was generated from": one row variable,
    /// an `OPTIONAL` block per unfiltered column, a required pattern or
    /// `FILTER` per filtered column.
    pub fn to_query(&self, store: &TripleStore) -> Query {
        let base = self.spec.to_query(store);
        let mut elements = base.where_clause.elements;
        let mut items = vec![SelectItem::var("x")];
        for (i, col) in self.columns.iter().enumerate() {
            let var = format!("col{i}");
            items.push(SelectItem::var(var.clone()));
            let prop_term = TermOrVar::Term(store.resolve(col.prop).clone());
            let pattern =
                TriplePatternAst::new(TermOrVar::var("x"), prop_term, TermOrVar::var(var.clone()));
            // A filtered column binds a required pattern; an unfiltered one
            // is OPTIONAL so that value-less instances still show a row.
            let col_filters: Vec<&ColumnFilter> = self
                .filters
                .iter()
                .filter(|f| f.prop() == col.prop)
                .collect();
            if col_filters.is_empty() {
                elements.push(PatternElement::Optional(GroupGraphPattern {
                    elements: vec![PatternElement::Triples(vec![pattern])],
                }));
            } else {
                elements.push(PatternElement::Triples(vec![pattern]));
                for f in col_filters {
                    match f {
                        ColumnFilter::Equals { value, .. } => {
                            elements.push(PatternElement::Filter(Expr::Binary(
                                elinda_sparql::ast::BinOp::Eq,
                                Box::new(Expr::Var(var.clone())),
                                Box::new(Expr::Constant(store.resolve(*value).clone())),
                            )));
                        }
                        ColumnFilter::Contains { text, .. } => {
                            elements.push(PatternElement::Filter(Expr::Call(
                                Func::Contains,
                                vec![
                                    Expr::Call(Func::Str, vec![Expr::Var(var.clone())]),
                                    Expr::Constant(Term::Literal(
                                        elinda_rdf::term::Literal::plain(text.clone()),
                                    )),
                                ],
                            )));
                        }
                    }
                }
            }
        }
        Query {
            select: SelectClause {
                distinct: false,
                items: SelectItems::Items(items),
            },
            where_clause: GroupGraphPattern { elements },
            group_by: vec![],
            order_by: vec![],
            limit: None,
            offset: None,
        }
    }

    /// The exposed SPARQL text.
    pub fn to_sparql(&self, store: &TripleStore) -> String {
        self.to_query(store).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elinda_sparql::Executor;
    use elinda_store::ClassHierarchy;

    const DATA: &str = r#"
        @prefix ex: <http://e/> .
        @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
        ex:Philosopher rdfs:subClassOf ex:Person .
        ex:plato a ex:Philosopher ; ex:birthPlace ex:athens ; ex:influencedBy ex:socrates .
        ex:socrates a ex:Philosopher ; ex:birthPlace ex:athens .
        ex:kant a ex:Philosopher ; ex:birthPlace ex:konigsberg ; ex:influencedBy ex:hume , ex:newton .
        ex:wittgenstein a ex:Philosopher ; ex:birthPlace ex:vienna .
    "#;

    fn setup() -> (TripleStore, NodeSet, SetSpec) {
        let store = TripleStore::from_turtle(DATA).unwrap();
        let h = ClassHierarchy::build(&store);
        let phil = store.lookup_iri("http://e/Philosopher").unwrap();
        let spec = SetSpec::AllOfType(phil);
        let set = spec.eval(&store, &h);
        (store, set, spec)
    }

    fn id(store: &TripleStore, local: &str) -> TermId {
        store.lookup_iri(&format!("http://e/{local}")).unwrap()
    }

    #[test]
    fn columns_fill_with_values() {
        let (store, set, spec) = setup();
        let mut table = DataTable::new(set, spec);
        table.add_column(&store, id(&store, "birthPlace"));
        table.add_column(&store, id(&store, "influencedBy"));
        assert_eq!(table.columns().len(), 2);
        let rows: Vec<_> = table.rows(&store).collect();
        assert_eq!(rows.len(), 4);
        // kant has two influencers in one cell.
        let kant = id(&store, "kant");
        let kant_row = rows.iter().find(|(s, _)| *s == kant).unwrap();
        assert_eq!(kant_row.1[1].len(), 2);
        // wittgenstein has none.
        let w = id(&store, "wittgenstein");
        let w_row = rows.iter().find(|(s, _)| *s == w).unwrap();
        assert!(w_row.1[1].is_empty());
    }

    #[test]
    fn duplicate_columns_ignored() {
        let (store, set, spec) = setup();
        let mut table = DataTable::new(set, spec);
        table.add_column(&store, id(&store, "birthPlace"));
        table.add_column(&store, id(&store, "birthPlace"));
        assert_eq!(table.columns().len(), 1);
    }

    #[test]
    fn equals_filter_restricts_rows_but_not_s() {
        let (store, set, spec) = setup();
        let mut table = DataTable::new(set.clone(), spec);
        table.add_column(&store, id(&store, "birthPlace"));
        table.add_filter(ColumnFilter::Equals {
            prop: id(&store, "birthPlace"),
            value: id(&store, "athens"),
        });
        assert_eq!(table.rows(&store).count(), 2);
        // S unchanged.
        assert_eq!(table.instances(), &set);
        // S_f narrowed.
        let sf = table.filtered_instances(&store);
        assert_eq!(sf.len(), 2);
        assert!(sf.contains(id(&store, "plato")));
    }

    #[test]
    fn contains_filter() {
        let (store, set, spec) = setup();
        let mut table = DataTable::new(set, spec);
        table.add_column(&store, id(&store, "birthPlace"));
        table.add_filter(ColumnFilter::Contains {
            prop: id(&store, "birthPlace"),
            text: "vien".into(),
        });
        let rows: Vec<_> = table.rows(&store).collect();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, id(&store, "wittgenstein"));
    }

    #[test]
    fn filtered_spec_matches_filtered_instances() {
        let (store, set, spec) = setup();
        let h = ClassHierarchy::build(&store);
        let mut table = DataTable::new(set, spec);
        table.add_column(&store, id(&store, "birthPlace"));
        table.add_filter(ColumnFilter::Equals {
            prop: id(&store, "birthPlace"),
            value: id(&store, "athens"),
        });
        let sf = table.filtered_instances(&store);
        let spec_sf = table.filtered_spec().eval(&store, &h);
        assert_eq!(sf, spec_sf);
    }

    #[test]
    fn remove_column_drops_its_filters() {
        let (store, set, spec) = setup();
        let mut table = DataTable::new(set, spec);
        let bp = id(&store, "birthPlace");
        table.add_column(&store, bp);
        table.add_filter(ColumnFilter::Equals {
            prop: bp,
            value: id(&store, "athens"),
        });
        table.remove_column(bp);
        assert!(table.columns().is_empty());
        assert!(table.filters().is_empty());
        assert_eq!(table.rows(&store).count(), 4);
    }

    #[test]
    fn exposed_sparql_executes_and_agrees_on_rows() {
        let (store, set, spec) = setup();
        let mut table = DataTable::new(set, spec);
        table.add_column(&store, id(&store, "birthPlace"));
        table.add_column(&store, id(&store, "influencedBy"));
        let query = table.to_query(&store);
        let sol = Executor::new(&store).execute(&query).unwrap();
        // Each instance appears; kant appears twice (two influencers join).
        let xs = sol.term_column("x");
        assert_eq!(xs.len(), 5); // 3 single rows + kant x2
        let text = table.to_sparql(&store);
        assert!(text.contains("OPTIONAL"));
    }

    #[test]
    fn exposed_sparql_with_filter_agrees() {
        let (store, set, spec) = setup();
        let mut table = DataTable::new(set, spec);
        let bp = id(&store, "birthPlace");
        table.add_column(&store, bp);
        table.add_filter(ColumnFilter::Equals {
            prop: bp,
            value: id(&store, "athens"),
        });
        let sol = Executor::new(&store)
            .execute(&table.to_query(&store))
            .unwrap();
        let mut xs = sol.term_column("x");
        xs.sort_unstable();
        xs.dedup();
        let sf = table.filtered_instances(&store);
        assert_eq!(NodeSet::from_vec(xs), sf);
    }
}
