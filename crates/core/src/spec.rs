//! [`SetSpec`]: the intensional definition of a node set.
//!
//! Every set `S` reached during an exploration is definable from the path
//! that produced it: the initial class, the subclass narrowings, the
//! property restrictions, the connection hops, and the data filters. A
//! [`SetSpec`] records that definition. It can be
//!
//! * evaluated algorithmically against the store ([`SetSpec::eval`]), and
//! * compiled to a SPARQL query ([`SetSpec::to_query`]) — the paper's
//!   "ELINDA enables the user to generate SPARQL code to extract each of
//!   the bars along the exploration".
//!
//! Differential tests assert the two agree on every variant.

use crate::expansion::Direction;
use crate::nodeset::NodeSet;
use elinda_rdf::{Term, TermId, Triple};
use elinda_sparql::ast::{
    GroupGraphPattern, PatternElement, Predicate, Query, SelectClause, SelectItem, SelectItems,
    TermOrVar, TriplePatternAst,
};
use elinda_store::{ClassHierarchy, TripleStore};

/// An intensional definition of a URI set.
#[derive(Debug, Clone, PartialEq)]
pub enum SetSpec {
    /// All direct instances of a class: `?x a <C>`.
    AllOfType(TermId),
    /// Instances of a class or any transitive subclass:
    /// `?x a ?t . ?t rdfs:subClassOf* <C>`. Used on datasets that do not
    /// materialize types (e.g. YAGO).
    AllOfTypeTransitive(TermId),
    /// Every typed subject — the initial set for datasets without a root
    /// class (the LinkedGeoData case).
    AllTyped,
    /// Members of `parent` that are also instances of `class` (one
    /// subclass-expansion step).
    Narrow {
        /// The parent set.
        parent: Box<SetSpec>,
        /// The narrowing class.
        class: TermId,
    },
    /// Members of `parent` that are instances of `class` or any of its
    /// transitive subclasses (the subclass step on non-materialized
    /// datasets).
    NarrowTransitive {
        /// The parent set.
        parent: Box<SetSpec>,
        /// The narrowing class.
        class: TermId,
    },
    /// Members of `parent` featuring property `prop` (one
    /// property-expansion step).
    WithProperty {
        /// The parent set.
        parent: Box<SetSpec>,
        /// The property.
        prop: TermId,
        /// Whether members act as subjects (outgoing) or objects (incoming).
        direction: Direction,
    },
    /// Instances of `class` connected to the `source` set via `prop` (one
    /// object-expansion step; the focus switch of the Connections tab).
    ObjectsVia {
        /// The set being connected from.
        source: Box<SetSpec>,
        /// The connecting property.
        prop: TermId,
        /// Direction of the property relative to `source`.
        direction: Direction,
        /// The class of the connected nodes.
        class: TermId,
    },
    /// Members of `parent` with the exact property value (a data filter
    /// promoted to a filter expansion).
    WithValue {
        /// The parent set.
        parent: Box<SetSpec>,
        /// The filtering property.
        prop: TermId,
        /// The required value.
        value: TermId,
    },
}

impl SetSpec {
    /// Evaluate the spec against a store.
    pub fn eval(&self, store: &TripleStore, hierarchy: &ClassHierarchy) -> NodeSet {
        match self {
            SetSpec::AllOfType(class) => {
                NodeSet::from_sorted_vec(hierarchy.instances(store, *class))
            }
            SetSpec::AllOfTypeTransitive(class) => {
                NodeSet::from_sorted_vec(hierarchy.instances_transitive(store, *class))
            }
            SetSpec::AllTyped => {
                let Some(ty) = store.lookup_iri(elinda_rdf::vocab::rdf::TYPE) else {
                    return NodeSet::empty();
                };
                let mut subjects: Vec<TermId> =
                    store.pos_range(ty, None).iter().map(|t| t.s).collect();
                subjects.sort_unstable();
                subjects.dedup();
                NodeSet::from_sorted_vec(subjects)
            }
            SetSpec::Narrow { parent, class } => {
                let parent_set = parent.eval(store, hierarchy);
                let class_set = NodeSet::from_sorted_vec(hierarchy.instances(store, *class));
                parent_set.intersect(&class_set)
            }
            SetSpec::NarrowTransitive { parent, class } => {
                let parent_set = parent.eval(store, hierarchy);
                let class_set =
                    NodeSet::from_sorted_vec(hierarchy.instances_transitive(store, *class));
                parent_set.intersect(&class_set)
            }
            SetSpec::WithProperty {
                parent,
                prop,
                direction,
            } => {
                let parent_set = parent.eval(store, hierarchy);
                match direction {
                    Direction::Outgoing => {
                        parent_set.filter(|s| !store.spo_range(s, Some(*prop)).is_empty())
                    }
                    Direction::Incoming => {
                        parent_set.filter(|s| !store.pos_range(*prop, Some(s)).is_empty())
                    }
                }
            }
            SetSpec::ObjectsVia {
                source,
                prop,
                direction,
                class,
            } => {
                let source_set = source.eval(store, hierarchy);
                let mut connected: Vec<TermId> = Vec::new();
                for y in &source_set {
                    match direction {
                        Direction::Outgoing => {
                            connected.extend(store.objects_of(y, *prop));
                        }
                        Direction::Incoming => {
                            connected.extend(store.subjects_with(*prop, y));
                        }
                    }
                }
                connected.sort_unstable();
                connected.dedup();
                let connected = NodeSet::from_sorted_vec(connected);
                let class_set = NodeSet::from_sorted_vec(hierarchy.instances(store, *class));
                connected.intersect(&class_set)
            }
            SetSpec::WithValue {
                parent,
                prop,
                value,
            } => {
                let parent_set = parent.eval(store, hierarchy);
                parent_set.filter(|s| store.contains(Triple::new(s, *prop, *value)))
            }
        }
    }

    /// Compile the spec to a `SELECT DISTINCT ?x` SPARQL query.
    pub fn to_query(&self, store: &TripleStore) -> Query {
        let mut gen = SparqlGen {
            store,
            counter: 0,
            patterns: Vec::new(),
        };
        let x = gen.fresh("x");
        gen.emit(self, &x);
        Query {
            select: SelectClause {
                distinct: true,
                items: SelectItems::Items(vec![SelectItem::var(x)]),
            },
            where_clause: GroupGraphPattern {
                elements: vec![PatternElement::Triples(gen.patterns)],
            },
            group_by: vec![],
            order_by: vec![],
            limit: None,
            offset: None,
        }
    }

    /// Compile to SPARQL query text.
    pub fn to_sparql(&self, store: &TripleStore) -> String {
        self.to_query(store).to_string()
    }

    /// The exploration depth of the spec (number of steps from the root).
    pub fn depth(&self) -> usize {
        match self {
            SetSpec::AllOfType(_) | SetSpec::AllOfTypeTransitive(_) | SetSpec::AllTyped => 0,
            SetSpec::Narrow { parent, .. }
            | SetSpec::NarrowTransitive { parent, .. }
            | SetSpec::WithProperty { parent, .. }
            | SetSpec::WithValue { parent, .. } => 1 + parent.depth(),
            SetSpec::ObjectsVia { source, .. } => 1 + source.depth(),
        }
    }
}

struct SparqlGen<'a> {
    store: &'a TripleStore,
    counter: usize,
    patterns: Vec<TriplePatternAst>,
}

impl SparqlGen<'_> {
    fn fresh(&mut self, base: &str) -> String {
        let name = if self.counter == 0 && base == "x" {
            "x".to_string()
        } else {
            format!("{base}{}", self.counter)
        };
        self.counter += 1;
        name
    }

    fn term(&self, id: TermId) -> TermOrVar {
        TermOrVar::Term(self.store.resolve(id).clone())
    }

    fn type_pred(&self) -> TermOrVar {
        TermOrVar::Term(Term::iri(elinda_rdf::vocab::rdf::TYPE))
    }

    /// `?var a ?t . ?t rdfs:subClassOf* <class>` — the transitive-type
    /// idiom for datasets without materialized types.
    fn emit_transitive_type(&mut self, var: &str, class: TermId) {
        let t = self.fresh("t");
        self.patterns.push(TriplePatternAst::new(
            TermOrVar::var(var),
            self.type_pred(),
            TermOrVar::var(&t),
        ));
        self.patterns.push(TriplePatternAst::with_path(
            TermOrVar::var(&t),
            Predicate::ZeroOrMore(Term::iri(elinda_rdf::vocab::rdfs::SUB_CLASS_OF)),
            self.term(class),
        ));
    }

    /// Emit the patterns constraining variable `var` to be in `spec`.
    fn emit(&mut self, spec: &SetSpec, var: &str) {
        match spec {
            SetSpec::AllOfType(class) => {
                self.patterns.push(TriplePatternAst::new(
                    TermOrVar::var(var),
                    self.type_pred(),
                    self.term(*class),
                ));
            }
            SetSpec::AllOfTypeTransitive(class) => {
                self.emit_transitive_type(var, *class);
            }
            SetSpec::AllTyped => {
                let t = self.fresh("t");
                self.patterns.push(TriplePatternAst::new(
                    TermOrVar::var(var),
                    self.type_pred(),
                    TermOrVar::var(t),
                ));
            }
            SetSpec::Narrow { parent, class } => {
                self.emit(parent, var);
                self.patterns.push(TriplePatternAst::new(
                    TermOrVar::var(var),
                    self.type_pred(),
                    self.term(*class),
                ));
            }
            SetSpec::NarrowTransitive { parent, class } => {
                self.emit(parent, var);
                self.emit_transitive_type(var, *class);
            }
            SetSpec::WithProperty {
                parent,
                prop,
                direction,
            } => {
                self.emit(parent, var);
                let other = self.fresh("v");
                let (s, o) = match direction {
                    Direction::Outgoing => (TermOrVar::var(var), TermOrVar::var(other)),
                    Direction::Incoming => (TermOrVar::var(other), TermOrVar::var(var)),
                };
                self.patterns
                    .push(TriplePatternAst::new(s, self.term(*prop), o));
            }
            SetSpec::ObjectsVia {
                source,
                prop,
                direction,
                class,
            } => {
                let y = self.fresh("y");
                self.emit(source, &y);
                let (s, o) = match direction {
                    Direction::Outgoing => (TermOrVar::var(&y), TermOrVar::var(var)),
                    Direction::Incoming => (TermOrVar::var(var), TermOrVar::var(&y)),
                };
                self.patterns
                    .push(TriplePatternAst::new(s, self.term(*prop), o));
                self.patterns.push(TriplePatternAst::new(
                    TermOrVar::var(var),
                    self.type_pred(),
                    self.term(*class),
                ));
            }
            SetSpec::WithValue {
                parent,
                prop,
                value,
            } => {
                self.emit(parent, var);
                self.patterns.push(TriplePatternAst::new(
                    TermOrVar::var(var),
                    self.term(*prop),
                    self.term(*value),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elinda_sparql::Executor;

    const DATA: &str = r#"
        @prefix ex: <http://e/> .
        @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
        @prefix owl: <http://www.w3.org/2002/07/owl#> .
        ex:Person rdfs:subClassOf owl:Thing .
        ex:Philosopher rdfs:subClassOf ex:Person .
        ex:Scientist rdfs:subClassOf ex:Person .
        ex:plato a ex:Philosopher ; a ex:Person ; ex:influencedBy ex:socrates ; ex:born ex:athens .
        ex:socrates a ex:Philosopher ; a ex:Person ; ex:born ex:athens .
        ex:darwin a ex:Scientist ; a ex:Person ; ex:influencedBy ex:socrates ; ex:born ex:shrewsbury .
        ex:kant a ex:Philosopher ; a ex:Person ; ex:influencedBy ex:darwin .
        ex:athens a ex:City .
        ex:shrewsbury a ex:City .
    "#;

    fn setup() -> (TripleStore, ClassHierarchy) {
        let store = TripleStore::from_turtle(DATA).unwrap();
        let h = ClassHierarchy::build(&store);
        (store, h)
    }

    fn id(store: &TripleStore, local: &str) -> TermId {
        store.lookup_iri(&format!("http://e/{local}")).unwrap()
    }

    fn assert_agrees(spec: &SetSpec, store: &TripleStore, h: &ClassHierarchy) {
        let direct = spec.eval(store, h);
        let query = spec.to_query(store);
        let sol = Executor::new(store).execute(&query).unwrap();
        let via_sparql = NodeSet::from_vec(sol.term_column("x"));
        assert_eq!(
            direct, via_sparql,
            "algorithmic vs SPARQL mismatch for {spec:?}\nquery: {query}"
        );
    }

    #[test]
    fn all_of_type() {
        let (store, h) = setup();
        let spec = SetSpec::AllOfType(id(&store, "Philosopher"));
        assert_eq!(spec.eval(&store, &h).len(), 3);
        assert_agrees(&spec, &store, &h);
    }

    #[test]
    fn all_typed() {
        let (store, h) = setup();
        let spec = SetSpec::AllTyped;
        assert_eq!(spec.eval(&store, &h).len(), 6);
        assert_agrees(&spec, &store, &h);
    }

    #[test]
    fn narrow() {
        let (store, h) = setup();
        let spec = SetSpec::Narrow {
            parent: Box::new(SetSpec::AllOfType(id(&store, "Person"))),
            class: id(&store, "Philosopher"),
        };
        assert_eq!(spec.eval(&store, &h).len(), 3);
        assert_agrees(&spec, &store, &h);
    }

    #[test]
    fn with_property_outgoing() {
        let (store, h) = setup();
        let spec = SetSpec::WithProperty {
            parent: Box::new(SetSpec::AllOfType(id(&store, "Philosopher"))),
            prop: id(&store, "influencedBy"),
            direction: Direction::Outgoing,
        };
        // plato and kant feature influencedBy.
        assert_eq!(spec.eval(&store, &h).len(), 2);
        assert_agrees(&spec, &store, &h);
    }

    #[test]
    fn with_property_incoming() {
        let (store, h) = setup();
        let spec = SetSpec::WithProperty {
            parent: Box::new(SetSpec::AllOfType(id(&store, "Person"))),
            prop: id(&store, "influencedBy"),
            direction: Direction::Incoming,
        };
        // socrates and darwin are influence targets.
        assert_eq!(spec.eval(&store, &h).len(), 2);
        assert_agrees(&spec, &store, &h);
    }

    #[test]
    fn objects_via_outgoing() {
        let (store, h) = setup();
        // Philosophers' influencers of class Scientist: darwin (influences kant).
        let spec = SetSpec::ObjectsVia {
            source: Box::new(SetSpec::AllOfType(id(&store, "Philosopher"))),
            prop: id(&store, "influencedBy"),
            direction: Direction::Outgoing,
            class: id(&store, "Scientist"),
        };
        let set = spec.eval(&store, &h);
        assert_eq!(set.len(), 1);
        assert!(set.contains(id(&store, "darwin")));
        assert_agrees(&spec, &store, &h);
    }

    #[test]
    fn objects_via_incoming() {
        let (store, h) = setup();
        // People influenced by scientists: kant (influencedBy darwin).
        let spec = SetSpec::ObjectsVia {
            source: Box::new(SetSpec::AllOfType(id(&store, "Scientist"))),
            prop: id(&store, "influencedBy"),
            direction: Direction::Incoming,
            class: id(&store, "Philosopher"),
        };
        let set = spec.eval(&store, &h);
        assert_eq!(set.len(), 1);
        assert!(set.contains(id(&store, "kant")));
        assert_agrees(&spec, &store, &h);
    }

    #[test]
    fn with_value() {
        let (store, h) = setup();
        let spec = SetSpec::WithValue {
            parent: Box::new(SetSpec::AllOfType(id(&store, "Philosopher"))),
            prop: id(&store, "born"),
            value: id(&store, "athens"),
        };
        assert_eq!(spec.eval(&store, &h).len(), 2); // plato, socrates
        assert_agrees(&spec, &store, &h);
    }

    #[test]
    fn deep_chained_spec() {
        let (store, h) = setup();
        // Persons -> narrowed to Philosopher -> having influencedBy ->
        // their influence targets of class Philosopher -> born in athens.
        let spec = SetSpec::WithValue {
            parent: Box::new(SetSpec::ObjectsVia {
                source: Box::new(SetSpec::WithProperty {
                    parent: Box::new(SetSpec::Narrow {
                        parent: Box::new(SetSpec::AllOfType(id(&store, "Person"))),
                        class: id(&store, "Philosopher"),
                    }),
                    prop: id(&store, "influencedBy"),
                    direction: Direction::Outgoing,
                }),
                prop: id(&store, "influencedBy"),
                direction: Direction::Outgoing,
                class: id(&store, "Philosopher"),
            }),
            prop: id(&store, "born"),
            value: id(&store, "athens"),
        };
        assert_eq!(spec.depth(), 4);
        let set = spec.eval(&store, &h);
        // plato/kant's influencers who are philosophers: socrates; born in athens.
        assert_eq!(set.len(), 1);
        assert!(set.contains(id(&store, "socrates")));
        assert_agrees(&spec, &store, &h);
    }

    const UNMATERIALIZED: &str = r#"
        @prefix ex: <http://e/> .
        @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
        ex:Person rdfs:subClassOf ex:Agent .
        ex:Philosopher rdfs:subClassOf ex:Person .
        ex:plato a ex:Philosopher ; ex:born ex:athens .
        ex:ada a ex:Person .
        ex:org a ex:Agent .
    "#;

    #[test]
    fn all_of_type_transitive() {
        let store = TripleStore::from_turtle(UNMATERIALIZED).unwrap();
        let h = ClassHierarchy::build(&store);
        let agent = store.lookup_iri("http://e/Agent").unwrap();
        // Direct typing sees only org; transitive sees all three.
        assert_eq!(SetSpec::AllOfType(agent).eval(&store, &h).len(), 1);
        let spec = SetSpec::AllOfTypeTransitive(agent);
        assert_eq!(spec.eval(&store, &h).len(), 3);
        assert_agrees(&spec, &store, &h);
        // The generated SPARQL uses the subClassOf* path.
        assert!(spec.to_sparql(&store).contains("subClassOf>*"));
    }

    #[test]
    fn narrow_transitive() {
        let store = TripleStore::from_turtle(UNMATERIALIZED).unwrap();
        let h = ClassHierarchy::build(&store);
        let agent = store.lookup_iri("http://e/Agent").unwrap();
        let person = store.lookup_iri("http://e/Person").unwrap();
        let spec = SetSpec::NarrowTransitive {
            parent: Box::new(SetSpec::AllOfTypeTransitive(agent)),
            class: person,
        };
        let set = spec.eval(&store, &h);
        assert_eq!(set.len(), 2); // plato (Philosopher ⊑ Person), ada
        assert_eq!(spec.depth(), 1);
        assert_agrees(&spec, &store, &h);
    }

    #[test]
    fn generated_sparql_is_readable() {
        let (store, _) = setup();
        let spec = SetSpec::Narrow {
            parent: Box::new(SetSpec::AllOfType(id(&store, "Person"))),
            class: id(&store, "Philosopher"),
        };
        let text = spec.to_sparql(&store);
        assert!(text.starts_with("SELECT DISTINCT ?x"));
        assert!(text.contains("http://e/Philosopher"));
    }

    #[test]
    fn empty_result_specs() {
        let (store, h) = setup();
        let spec = SetSpec::ObjectsVia {
            source: Box::new(SetSpec::AllOfType(id(&store, "City"))),
            prop: id(&store, "influencedBy"),
            direction: Direction::Outgoing,
            class: id(&store, "Person"),
        };
        assert!(spec.eval(&store, &h).is_empty());
        assert_agrees(&spec, &store, &h);
    }
}
