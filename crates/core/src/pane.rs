//! [`Pane`]: the tabbed UI unit of Section 3.
//!
//! "Each pane visualizes data related to a set of subjects (instances) S
//! from several different perspectives. … The upper left corner of a pane
//! shows basic statistics: the total number of instances (i.e. |S|), and
//! the number of direct and indirect subclasses that class type T has."

use crate::bar::{Bar, BarKind};
use crate::chart::BarChart;
use crate::expansion::{self, Direction, ExpandError};
use crate::explorer::Explorer;
use crate::nodeset::NodeSet;
use crate::spec::SetSpec;
use crate::table::DataTable;
use elinda_rdf::TermId;

/// The default property-coverage threshold: "only 38 properties that cross
/// the default coverage threshold of 20% are shown".
pub const DEFAULT_COVERAGE_THRESHOLD: f64 = 0.20;

/// The statistics shown in the upper-left corner of a pane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaneStats {
    /// `|S|`.
    pub instance_count: usize,
    /// Direct subclasses of the pane's class.
    pub direct_subclasses: usize,
    /// Transitive subclasses of the pane's class.
    pub total_subclasses: usize,
}

/// A pane: a focused set `S` (all of one class type, possibly narrowed),
/// its statistics, and the charts available from its tabs.
#[derive(Debug, Clone)]
pub struct Pane {
    /// Display title (usually the class label).
    pub title: String,
    /// The class type `T` of the subjects, when the pane is class-based.
    pub class: Option<TermId>,
    /// The subject set `S`. Not necessarily all instances of `T` — the
    /// pane may focus on a narrowed set (paper footnote 6).
    pub set: NodeSet,
    /// The intensional definition of `S`.
    pub spec: SetSpec,
    /// The corner statistics.
    pub stats: PaneStats,
}

impl Pane {
    /// Recompute `instance_count` from the actual set (used by
    /// constructors).
    pub(crate) fn with_recounted_instances(mut self) -> Self {
        self.stats.instance_count = self.set.len();
        self
    }

    /// The pane's set as a class bar `⟨S, T, class⟩` — the input to the
    /// subclass and property expansions.
    pub fn as_bar(&self) -> Bar {
        let label = self.class.unwrap_or_else(|| {
            // A root-less pane still needs a label; reuse an arbitrary
            // member as a placeholder only if the set is non-empty.
            self.set
                .as_slice()
                .first()
                .copied()
                .unwrap_or_else(|| TermId::from_raw(1).expect("nonzero"))
        });
        Bar::new(self.set.clone(), label, BarKind::Class, self.spec.clone())
    }

    /// The default tab: the subclass distribution chart. For a class-less
    /// pane (root-less dataset), the chart distributes over the top-level
    /// classes instead.
    pub fn subclass_chart(&self, explorer: &Explorer<'_>) -> BarChart {
        match self.class {
            Some(_) => expansion::expand_opts(
                explorer.store(),
                explorer.hierarchy(),
                &self.as_bar(),
                crate::expansion::ExpansionKind::Subclass,
                explorer.is_transitive(),
            )
            .expect("pane bar is a class bar"),
            None => {
                // Distribute S over the top-level classes.
                let store = explorer.store();
                let h = explorer.hierarchy();
                let bars = h
                    .top_level_classes()
                    .into_iter()
                    .map(|class| {
                        let (instances, spec) = if explorer.is_transitive() {
                            (
                                NodeSet::from_sorted_vec(h.instances_transitive(store, class)),
                                SetSpec::NarrowTransitive {
                                    parent: Box::new(self.spec.clone()),
                                    class,
                                },
                            )
                        } else {
                            (
                                NodeSet::from_sorted_vec(h.instances(store, class)),
                                SetSpec::Narrow {
                                    parent: Box::new(self.spec.clone()),
                                    class,
                                },
                            )
                        };
                        Bar::new(self.set.intersect(&instances), class, BarKind::Class, spec)
                    })
                    .collect();
                BarChart::new(bars, self.set.len(), crate::chart::ChartKind::Subclass)
            }
        }
    }

    /// The *Property Data* tab: the property-coverage chart. All bars are
    /// computed; apply [`BarChart::above_coverage`] with
    /// [`DEFAULT_COVERAGE_THRESHOLD`] for the default view.
    pub fn property_chart(&self, explorer: &Explorer<'_>, direction: Direction) -> BarChart {
        expansion::property_expansion(explorer.store(), &self.as_bar(), direction)
            .expect("pane bar is a class bar")
    }

    /// The *Connections* tab: the object expansion for the selected
    /// property bar of the pane's property chart.
    pub fn connections_chart(
        &self,
        explorer: &Explorer<'_>,
        property: TermId,
        direction: Direction,
    ) -> Result<BarChart, ExpandError> {
        let prop_chart = self.property_chart(explorer, direction);
        let bar = prop_chart.bar(property).cloned().unwrap_or_else(|| {
            // A property no member features: an empty property bar.
            Bar::new(
                NodeSet::empty(),
                property,
                BarKind::Property,
                SetSpec::WithProperty {
                    parent: Box::new(self.spec.clone()),
                    prop: property,
                    direction,
                },
            )
        });
        expansion::object_expansion(explorer.store(), explorer.hierarchy(), &bar, direction)
    }

    /// Start a data table over the pane's instances.
    pub fn data_table(&self) -> DataTable {
        DataTable::new(self.set.clone(), self.spec.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elinda_store::TripleStore;

    const DATA: &str = r#"
        @prefix ex: <http://e/> .
        @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
        @prefix owl: <http://www.w3.org/2002/07/owl#> .
        ex:Agent rdfs:subClassOf owl:Thing .
        ex:Person rdfs:subClassOf ex:Agent .
        ex:Philosopher rdfs:subClassOf ex:Person .
        ex:Work rdfs:subClassOf owl:Thing .
        ex:plato a ex:Philosopher ; a ex:Person ; a ex:Agent ; a owl:Thing ;
            ex:influencedBy ex:socrates .
        ex:socrates a ex:Philosopher ; a ex:Person ; a ex:Agent ; a owl:Thing .
        ex:rep a ex:Work ; a owl:Thing ; ex:author ex:plato .
    "#;

    fn store() -> TripleStore {
        TripleStore::from_turtle(DATA).unwrap()
    }

    #[test]
    fn initial_pane_subclass_chart_is_fig1() {
        let store = store();
        let ex = Explorer::new(&store);
        let pane = ex.initial_pane().unwrap();
        let chart = pane.subclass_chart(&ex);
        // Top-level: Agent (2 instances), Work (1).
        assert_eq!(chart.len(), 2);
        assert_eq!(chart.bars()[0].height(), 2);
        assert_eq!(chart.bars()[1].height(), 1);
        assert_eq!(chart.total(), 3);
    }

    #[test]
    fn drill_down_path() {
        let store = store();
        let ex = Explorer::new(&store);
        let pane = ex.initial_pane().unwrap();
        let chart = pane.subclass_chart(&ex);
        let agent_bar = &chart.bars()[0];
        let agent_pane = ex.pane_from_bar(agent_bar).unwrap();
        assert_eq!(agent_pane.stats.instance_count, 2);
        assert_eq!(agent_pane.stats.direct_subclasses, 1);
        let chart = agent_pane.subclass_chart(&ex);
        assert_eq!(chart.len(), 1); // Person
    }

    #[test]
    fn property_chart_with_threshold() {
        let store = store();
        let ex = Explorer::new(&store);
        let phil = store.lookup_iri("http://e/Philosopher").unwrap();
        let pane = ex.pane_for_class(phil);
        let chart = pane.property_chart(&ex, Direction::Outgoing);
        // rdf:type covers 100%, influencedBy 50%.
        let visible = chart.above_coverage(DEFAULT_COVERAGE_THRESHOLD);
        assert_eq!(visible.len(), 2);
        let visible = chart.above_coverage(0.6);
        assert_eq!(visible.len(), 1);
    }

    #[test]
    fn connections_chart() {
        let store = store();
        let ex = Explorer::new(&store);
        let phil = store.lookup_iri("http://e/Philosopher").unwrap();
        let infl = store.lookup_iri("http://e/influencedBy").unwrap();
        let pane = ex.pane_for_class(phil);
        let conn = pane
            .connections_chart(&ex, infl, Direction::Outgoing)
            .unwrap();
        // socrates is the single connected object, a Philosopher (etc.).
        assert!(conn.bar(phil).is_some());
        assert_eq!(conn.total(), 1);
    }

    #[test]
    fn connections_with_unused_property_is_empty() {
        let store = store();
        let ex = Explorer::new(&store);
        let work = store.lookup_iri("http://e/Work").unwrap();
        let infl = store.lookup_iri("http://e/influencedBy").unwrap();
        let pane = ex.pane_for_class(work);
        let conn = pane
            .connections_chart(&ex, infl, Direction::Outgoing)
            .unwrap();
        assert!(conn.is_empty());
    }

    #[test]
    fn pane_from_property_bar_is_rejected() {
        let store = store();
        let ex = Explorer::new(&store);
        let phil = store.lookup_iri("http://e/Philosopher").unwrap();
        let pane = ex.pane_for_class(phil);
        let chart = pane.property_chart(&ex, Direction::Outgoing);
        assert!(ex.pane_from_bar(&chart.bars()[0]).is_none());
    }
}
