//! [`Exploration`]: a chain of charts `(λ₁, η₁) ↦ B₁, …, (λₘ, ηₘ) ↦ Bₘ`.
//!
//! Section 2's validity rules are enforced on every step:
//!
//! * (a) `λᵢ ∈ labels(Bᵢ₋₁)`;
//! * (b) `ηᵢ` is applicable to `Bᵢ₋₁[λᵢ]`;
//! * (c) `Bᵢ = ηᵢ(Bᵢ₋₁[λᵢ])`.

use crate::bar::BarKind;
use crate::chart::BarChart;
use crate::expansion::{self, ExpansionKind};
use crate::explorer::Explorer;
use elinda_rdf::TermId;
use std::fmt;

/// One step of an exploration: the selected label and the applied
/// expansion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExplorationStep {
    /// The selected bar's label `λᵢ`.
    pub label: TermId,
    /// The applied expansion `ηᵢ`.
    pub expansion: ExpansionKind,
}

/// Why a step was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExplorationError {
    /// Rule (a): the label is not in the previous chart.
    UnknownLabel(TermId),
    /// Rule (b): the expansion does not apply to the selected bar's type.
    Inapplicable {
        /// The expansion attempted.
        expansion: ExpansionKind,
        /// The selected bar's type.
        bar_kind: BarKind,
    },
}

impl fmt::Display for ExplorationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExplorationError::UnknownLabel(l) => {
                write!(f, "label {l} is not in the current chart")
            }
            ExplorationError::Inapplicable {
                expansion,
                bar_kind,
            } => write!(
                f,
                "expansion {expansion:?} is not applicable to a {bar_kind:?} bar"
            ),
        }
    }
}

impl std::error::Error for ExplorationError {}

/// An exploration path: the initial chart `B₀` plus the applied steps and
/// resulting charts.
#[derive(Debug, Clone)]
pub struct Exploration {
    charts: Vec<BarChart>,
    steps: Vec<ExplorationStep>,
}

impl Exploration {
    /// Start from an initial chart `B₀` (in eLinda, the subclass expansion
    /// of the root class — see `Explorer::initial_pane`).
    pub fn start(initial: BarChart) -> Self {
        Exploration {
            charts: vec![initial],
            steps: Vec::new(),
        }
    }

    /// The current chart `Bₘ`.
    pub fn current(&self) -> &BarChart {
        self.charts
            .last()
            .expect("always at least the initial chart")
    }

    /// All charts, `B₀ … Bₘ`.
    pub fn charts(&self) -> &[BarChart] {
        &self.charts
    }

    /// The applied steps.
    pub fn steps(&self) -> &[ExplorationStep] {
        &self.steps
    }

    /// Number of applied steps (`m`).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if no step has been applied yet.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Apply a step `(λ, η)` to the current chart, validating rules
    /// (a) and (b) and computing (c).
    pub fn apply(
        &mut self,
        explorer: &Explorer<'_>,
        label: TermId,
        kind: ExpansionKind,
    ) -> Result<&BarChart, ExplorationError> {
        let bar = self
            .current()
            .bar(label)
            .ok_or(ExplorationError::UnknownLabel(label))?;
        if bar.kind != kind.applicable_to() {
            return Err(ExplorationError::Inapplicable {
                expansion: kind,
                bar_kind: bar.kind,
            });
        }
        let chart = expansion::expand_opts(
            explorer.store(),
            explorer.hierarchy(),
            bar,
            kind,
            explorer.is_transitive(),
        )
        .expect("kind checked against bar kind");
        self.charts.push(chart);
        self.steps.push(ExplorationStep {
            label,
            expansion: kind,
        });
        Ok(self.current())
    }

    /// Undo the last step (panes can be closed in the UI).
    pub fn pop(&mut self) -> Option<ExplorationStep> {
        if self.steps.is_empty() {
            return None;
        }
        self.charts.pop();
        self.steps.pop()
    }

    /// The colored breadcrumb trail of Fig. 2: the display labels of the
    /// selected bars, in order.
    pub fn breadcrumbs(&self, explorer: &Explorer<'_>) -> Vec<String> {
        self.steps
            .iter()
            .map(|s| explorer.display(s.label).to_string())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expansion::Direction;
    use elinda_store::TripleStore;

    const DATA: &str = r#"
        @prefix ex: <http://e/> .
        @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
        @prefix owl: <http://www.w3.org/2002/07/owl#> .
        ex:Agent rdfs:subClassOf owl:Thing ; rdfs:label "Agent"@en .
        ex:Person rdfs:subClassOf ex:Agent ; rdfs:label "Person"@en .
        ex:Philosopher rdfs:subClassOf ex:Person ; rdfs:label "Philosopher"@en .
        ex:Scientist rdfs:subClassOf ex:Person ; rdfs:label "Scientist"@en .
        ex:plato a ex:Philosopher ; a ex:Person ; a ex:Agent ; a owl:Thing ;
            ex:influencedBy ex:socrates .
        ex:socrates a ex:Philosopher ; a ex:Person ; a ex:Agent ; a owl:Thing .
        ex:kant a ex:Philosopher ; a ex:Person ; a ex:Agent ; a owl:Thing ;
            ex:influencedBy ex:darwin .
        ex:darwin a ex:Scientist ; a ex:Person ; a ex:Agent ; a owl:Thing .
    "#;

    fn setup(store: &TripleStore) -> (Explorer<'_>, Exploration) {
        let ex = Explorer::new(store);
        let pane = ex.initial_pane().unwrap();
        let expl = Exploration::start(pane.subclass_chart(&ex));
        (ex, expl)
    }

    fn id(store: &TripleStore, local: &str) -> TermId {
        store.lookup_iri(&format!("http://e/{local}")).unwrap()
    }

    #[test]
    fn fig2_path_thing_agent_person_philosopher_influencers() {
        let store = TripleStore::from_turtle(DATA).unwrap();
        let (ex, mut expl) = setup(&store);

        // owl:Thing -> Agent -> Person -> Philosopher (subclass steps).
        expl.apply(&ex, id(&store, "Agent"), ExpansionKind::Subclass)
            .unwrap();
        expl.apply(&ex, id(&store, "Person"), ExpansionKind::Subclass)
            .unwrap();
        // Person chart: Philosopher (3), Scientist (1).
        assert_eq!(expl.current().len(), 2);
        // Philosopher -> property chart.
        expl.apply(
            &ex,
            id(&store, "Philosopher"),
            ExpansionKind::Property(Direction::Outgoing),
        )
        .unwrap();
        // influencedBy -> connections (object expansion).
        expl.apply(
            &ex,
            id(&store, "influencedBy"),
            ExpansionKind::Objects(Direction::Outgoing),
        )
        .unwrap();
        // Influencers: socrates (Philosopher…), darwin (Scientist…).
        let chart = expl.current();
        assert!(chart.bar(id(&store, "Scientist")).is_some());
        assert_eq!(expl.len(), 4);
        assert_eq!(
            expl.breadcrumbs(&ex),
            vec!["Agent", "Person", "Philosopher", "influencedBy"]
        );
    }

    #[test]
    fn rule_a_unknown_label() {
        let store = TripleStore::from_turtle(DATA).unwrap();
        let (ex, mut expl) = setup(&store);
        let bogus = id(&store, "plato"); // an instance, not a chart label
        let err = expl.apply(&ex, bogus, ExpansionKind::Subclass).unwrap_err();
        assert_eq!(err, ExplorationError::UnknownLabel(bogus));
    }

    #[test]
    fn rule_b_inapplicable_expansion() {
        let store = TripleStore::from_turtle(DATA).unwrap();
        let (ex, mut expl) = setup(&store);
        // Objects expansion on a class bar is inapplicable.
        let err = expl
            .apply(
                &ex,
                id(&store, "Agent"),
                ExpansionKind::Objects(Direction::Outgoing),
            )
            .unwrap_err();
        assert!(matches!(err, ExplorationError::Inapplicable { .. }));
        // And subclass expansion on a property bar.
        expl.apply(&ex, id(&store, "Agent"), ExpansionKind::Subclass)
            .unwrap();
        expl.apply(&ex, id(&store, "Person"), ExpansionKind::Subclass)
            .unwrap();
        expl.apply(
            &ex,
            id(&store, "Philosopher"),
            ExpansionKind::Property(Direction::Outgoing),
        )
        .unwrap();
        let err = expl
            .apply(&ex, id(&store, "influencedBy"), ExpansionKind::Subclass)
            .unwrap_err();
        assert!(matches!(err, ExplorationError::Inapplicable { .. }));
    }

    #[test]
    fn failed_steps_leave_state_unchanged() {
        let store = TripleStore::from_turtle(DATA).unwrap();
        let (ex, mut expl) = setup(&store);
        let before = expl.current().clone();
        let _ = expl.apply(&ex, id(&store, "plato"), ExpansionKind::Subclass);
        assert_eq!(expl.len(), 0);
        assert_eq!(expl.current(), &before);
    }

    #[test]
    fn pop_undoes_steps() {
        let store = TripleStore::from_turtle(DATA).unwrap();
        let (ex, mut expl) = setup(&store);
        expl.apply(&ex, id(&store, "Agent"), ExpansionKind::Subclass)
            .unwrap();
        assert_eq!(expl.len(), 1);
        let step = expl.pop().unwrap();
        assert_eq!(step.label, id(&store, "Agent"));
        assert_eq!(expl.len(), 0);
        assert!(expl.pop().is_none());
        assert!(expl.is_empty());
    }

    #[test]
    fn every_bar_along_the_path_generates_sparql() {
        let store = TripleStore::from_turtle(DATA).unwrap();
        let (ex, mut expl) = setup(&store);
        expl.apply(&ex, id(&store, "Agent"), ExpansionKind::Subclass)
            .unwrap();
        expl.apply(&ex, id(&store, "Person"), ExpansionKind::Subclass)
            .unwrap();
        for chart in expl.charts() {
            for bar in chart.bars() {
                let text = bar.spec.to_sparql(&store);
                assert!(text.starts_with("SELECT DISTINCT ?x"), "{text}");
            }
        }
    }
}
