//! [`BarChart`]: a chart mapping labels to bars, sorted by height.
//!
//! "The bars are sorted by decreasing height. … To facilitate the
//! visualization of a large number of bars, only a subset of the bars is
//! initially shown. A widget located at the top of the chart allows to
//! control the visible part of the chart." (paper Section 3.2)

use crate::bar::Bar;
use elinda_rdf::TermId;

/// What a chart shows, i.e. which expansion produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChartKind {
    /// Distribution over direct subclasses (subclass expansion).
    Subclass,
    /// Distribution over outgoing properties (property expansion).
    PropertyOutgoing,
    /// Distribution over incoming properties.
    PropertyIncoming,
    /// Distribution of connected objects by class (object expansion).
    ObjectsOutgoing,
    /// Distribution of connecting subjects by class (incoming objects).
    ObjectsIncoming,
}

/// A bar chart: bars sorted by decreasing height, with a window widget.
#[derive(Debug, Clone, PartialEq)]
pub struct BarChart {
    bars: Vec<Bar>,
    /// The size of the set the expanded bar represented (`|S|`); the
    /// denominator for coverage percentages.
    total: usize,
    /// Which expansion produced the chart.
    kind: ChartKind,
    /// Nodes that produced no bar (e.g. untyped objects in an object
    /// expansion).
    unclassified: usize,
}

impl BarChart {
    /// Build a chart from unsorted bars. Bars are sorted by decreasing
    /// height, ties broken by label id for determinism. Empty bars are
    /// dropped (a label with zero support shows no bar).
    pub fn new(mut bars: Vec<Bar>, total: usize, kind: ChartKind) -> Self {
        bars.retain(|b| b.height() > 0);
        bars.sort_by(|a, b| b.height().cmp(&a.height()).then(a.label.cmp(&b.label)));
        BarChart {
            bars,
            total,
            kind,
            unclassified: 0,
        }
    }

    /// Build a chart that also records how many nodes matched no label.
    pub fn with_unclassified(
        bars: Vec<Bar>,
        total: usize,
        kind: ChartKind,
        unclassified: usize,
    ) -> Self {
        let mut chart = Self::new(bars, total, kind);
        chart.unclassified = unclassified;
        chart
    }

    /// The bars, sorted by decreasing height.
    pub fn bars(&self) -> &[Bar] {
        &self.bars
    }

    /// Number of bars.
    pub fn len(&self) -> usize {
        self.bars.len()
    }

    /// True if the chart has no bars.
    pub fn is_empty(&self) -> bool {
        self.bars.is_empty()
    }

    /// The chart kind.
    pub fn kind(&self) -> ChartKind {
        self.kind
    }

    /// `|S|` of the expanded set (the coverage denominator).
    pub fn total(&self) -> usize {
        self.total
    }

    /// Nodes that matched no label (untyped objects).
    pub fn unclassified(&self) -> usize {
        self.unclassified
    }

    /// The labels in bar order.
    pub fn labels(&self) -> impl Iterator<Item = TermId> + '_ {
        self.bars.iter().map(|b| b.label)
    }

    /// Find a bar by label (the chart's `B[λ]`).
    pub fn bar(&self, label: TermId) -> Option<&Bar> {
        self.bars.iter().find(|b| b.label == label)
    }

    /// Coverage of a bar: `|B[λ]| / |S|` — the bar-height semantics of the
    /// property charts.
    pub fn coverage(&self, bar: &Bar) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            bar.height() as f64 / self.total as f64
        }
    }

    /// A window of the chart — the visibility widget: bars
    /// `[offset, offset + len)` in sorted order.
    pub fn window(&self, offset: usize, len: usize) -> &[Bar] {
        let start = offset.min(self.bars.len());
        let end = (offset + len).min(self.bars.len());
        &self.bars[start..end]
    }

    /// Bars whose coverage meets `threshold` (the property-chart coverage
    /// filter, default 20% in the paper).
    pub fn above_coverage(&self, threshold: f64) -> Vec<&Bar> {
        self.bars
            .iter()
            .filter(|b| self.coverage(b) >= threshold)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bar::BarKind;
    use crate::nodeset::NodeSet;
    use crate::spec::SetSpec;

    fn id(n: u32) -> TermId {
        TermId::from_raw(n).unwrap()
    }

    fn bar(label: u32, size: u32) -> Bar {
        let nodes: NodeSet = (100 * label..100 * label + size).map(id).collect();
        Bar::new(
            nodes,
            id(label),
            BarKind::Class,
            SetSpec::AllOfType(id(label)),
        )
    }

    #[test]
    fn bars_sorted_by_decreasing_height() {
        let chart = BarChart::new(
            vec![bar(1, 2), bar(2, 5), bar(3, 3)],
            10,
            ChartKind::Subclass,
        );
        let heights: Vec<usize> = chart.bars().iter().map(Bar::height).collect();
        assert_eq!(heights, vec![5, 3, 2]);
    }

    #[test]
    fn ties_break_by_label() {
        let chart = BarChart::new(
            vec![bar(3, 4), bar(1, 4), bar(2, 4)],
            10,
            ChartKind::Subclass,
        );
        let labels: Vec<TermId> = chart.labels().collect();
        assert_eq!(labels, vec![id(1), id(2), id(3)]);
    }

    #[test]
    fn empty_bars_are_dropped() {
        let chart = BarChart::new(vec![bar(1, 0), bar(2, 3)], 10, ChartKind::Subclass);
        assert_eq!(chart.len(), 1);
    }

    #[test]
    fn coverage_and_threshold() {
        let chart = BarChart::new(
            vec![bar(1, 8), bar(2, 2), bar(3, 1)],
            10,
            ChartKind::PropertyOutgoing,
        );
        let b1 = chart.bar(id(1)).unwrap();
        assert!((chart.coverage(b1) - 0.8).abs() < 1e-12);
        let visible = chart.above_coverage(0.2);
        assert_eq!(visible.len(), 2); // 80% and 20% pass, 10% filtered
    }

    #[test]
    fn coverage_of_empty_total() {
        let chart = BarChart::new(vec![bar(1, 2)], 0, ChartKind::Subclass);
        let b = chart.bar(id(1)).unwrap();
        assert_eq!(chart.coverage(b), 0.0);
    }

    #[test]
    fn window_clamps() {
        let chart = BarChart::new(
            vec![bar(1, 3), bar(2, 2), bar(3, 1)],
            6,
            ChartKind::Subclass,
        );
        assert_eq!(chart.window(0, 2).len(), 2);
        assert_eq!(chart.window(2, 5).len(), 1);
        assert_eq!(chart.window(9, 5).len(), 0);
    }

    #[test]
    fn lookup_by_label() {
        let chart = BarChart::new(vec![bar(1, 3), bar(2, 2)], 5, ChartKind::Subclass);
        assert!(chart.bar(id(2)).is_some());
        assert!(chart.bar(id(9)).is_none());
    }

    #[test]
    fn unclassified_recorded() {
        let chart = BarChart::with_unclassified(vec![bar(1, 3)], 5, ChartKind::ObjectsOutgoing, 2);
        assert_eq!(chart.unclassified(), 2);
    }
}
