//! [`Explorer`]: the session facade over a loaded dataset.
//!
//! Owns the derived structures (class hierarchy, label index) built from a
//! store snapshot, serves panes, the autocomplete class search, and the
//! general dataset statistics shown when first connecting (Section 3.1).

use crate::bar::{Bar, BarKind};
use crate::nodeset::NodeSet;
use crate::pane::{Pane, PaneStats};
use crate::spec::SetSpec;
use elinda_rdf::TermId;
use elinda_store::{ClassHierarchy, DatasetStats, LabelIndex, TripleStore};

/// A session over a dataset: store + hierarchy + labels.
pub struct Explorer<'a> {
    store: &'a TripleStore,
    hierarchy: ClassHierarchy,
    labels: LabelIndex,
    epoch: u64,
    /// Resolve class membership through `rdfs:subClassOf*` instead of
    /// direct `rdf:type` only (for datasets without materialized types).
    transitive: bool,
}

impl<'a> Explorer<'a> {
    /// Build the derived structures for a store snapshot (direct-type
    /// semantics, matching materialized datasets like DBpedia).
    pub fn new(store: &'a TripleStore) -> Self {
        Self::with_transitive(store, false)
    }

    /// An explorer that resolves instances through the subclass closure —
    /// required for datasets like YAGO where entities carry only their
    /// leaf type. Generated SPARQL uses `rdfs:subClassOf*` paths.
    pub fn new_transitive(store: &'a TripleStore) -> Self {
        Self::with_transitive(store, true)
    }

    fn with_transitive(store: &'a TripleStore, transitive: bool) -> Self {
        let hierarchy = ClassHierarchy::build(store);
        let labels = LabelIndex::build(store, &hierarchy);
        Explorer {
            store,
            hierarchy,
            labels,
            epoch: store.epoch(),
            transitive,
        }
    }

    /// True when class membership is resolved transitively.
    pub fn is_transitive(&self) -> bool {
        self.transitive
    }

    /// The underlying store.
    pub fn store(&self) -> &'a TripleStore {
        self.store
    }

    /// The class hierarchy.
    pub fn hierarchy(&self) -> &ClassHierarchy {
        &self.hierarchy
    }

    /// The label index.
    pub fn labels(&self) -> &LabelIndex {
        &self.labels
    }

    /// True if the store has been mutated since this explorer was built
    /// (callers should then rebuild).
    pub fn is_stale(&self) -> bool {
        self.epoch != self.store.epoch()
    }

    /// Display name of a term (label, else local name / lexical form).
    pub fn display(&self, id: TermId) -> &str {
        self.labels.display(self.store, id)
    }

    /// Dataset statistics: total triples, classes, properties, ….
    pub fn stats(&self) -> DatasetStats {
        DatasetStats::compute(self.store, &self.hierarchy)
    }

    /// The autocomplete class search box (Section 3.2).
    pub fn search_classes(&self, prefix: &str, limit: usize) -> Vec<TermId> {
        self.labels.autocomplete(prefix, limit)
    }

    /// The initial pane: all instances of `owl:Thing` when the dataset has
    /// that root, otherwise all typed subjects (the LinkedGeoData case,
    /// browsed "in a limited fashion"). `None` for a dataset with no
    /// `rdf:type` triples at all.
    pub fn initial_pane(&self) -> Option<Pane> {
        let thing_instances = |thing| {
            if self.transitive {
                self.hierarchy.instances_transitive(self.store, thing).len()
            } else {
                self.hierarchy.instance_count(self.store, thing)
            }
        };
        match self.hierarchy.owl_thing() {
            Some(thing) if thing_instances(thing) > 0 => Some(self.pane_for_class(thing)),
            _ => {
                let spec = SetSpec::AllTyped;
                let set = spec.eval(self.store, &self.hierarchy);
                if set.is_empty() {
                    return None;
                }
                Some(
                    Pane {
                        title: "(all typed subjects)".to_string(),
                        class: None,
                        set,
                        spec,
                        stats: PaneStats {
                            instance_count: 0,
                            direct_subclasses: self.hierarchy.top_level_classes().len(),
                            total_subclasses: self.hierarchy.classes().len(),
                        },
                    }
                    .with_recounted_instances(),
                )
            }
        }
    }

    /// A pane focused on all instances of a class — what the autocomplete
    /// search opens directly, skipping the drill-down.
    pub fn pane_for_class(&self, class: TermId) -> Pane {
        let spec = if self.transitive {
            SetSpec::AllOfTypeTransitive(class)
        } else {
            SetSpec::AllOfType(class)
        };
        let set = spec.eval(self.store, &self.hierarchy);
        Pane {
            title: self.display(class).to_string(),
            class: Some(class),
            set,
            spec,
            stats: self.stats_for(class, None),
        }
        .with_recounted_instances()
    }

    /// A pane opened by clicking a class bar: focuses on the (possibly
    /// narrowed) bar set — "from now on the different expansions will
    /// operate on this narrowed set" (Section 3.4).
    pub fn pane_from_bar(&self, bar: &Bar) -> Option<Pane> {
        if bar.kind != BarKind::Class {
            return None;
        }
        Some(
            Pane {
                title: self.display(bar.label).to_string(),
                class: Some(bar.label),
                set: bar.nodes.clone(),
                spec: bar.spec.clone(),
                stats: self.stats_for(bar.label, Some(&bar.nodes)),
            }
            .with_recounted_instances(),
        )
    }

    /// A pane over an explicit set with a known spec (used by the filter
    /// expansion: exploring `S_f` after data filters).
    pub fn pane_for_set(
        &self,
        title: impl Into<String>,
        class: Option<TermId>,
        set: NodeSet,
        spec: SetSpec,
    ) -> Pane {
        let stats = match class {
            Some(c) => self.stats_for(c, Some(&set)),
            None => PaneStats {
                instance_count: set.len(),
                direct_subclasses: 0,
                total_subclasses: 0,
            },
        };
        Pane {
            title: title.into(),
            class,
            set,
            spec,
            stats,
        }
    }

    fn stats_for(&self, class: TermId, set: Option<&NodeSet>) -> PaneStats {
        PaneStats {
            instance_count: match set {
                Some(s) => s.len(),
                None => self.hierarchy.instance_count(self.store, class),
            },
            direct_subclasses: self.hierarchy.direct_subclass_count(class),
            total_subclasses: self.hierarchy.total_subclass_count(class),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DATA: &str = r#"
        @prefix ex: <http://e/> .
        @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
        @prefix owl: <http://www.w3.org/2002/07/owl#> .
        ex:Agent a owl:Class ; rdfs:subClassOf owl:Thing ; rdfs:label "Agent"@en .
        ex:Person a owl:Class ; rdfs:subClassOf ex:Agent ; rdfs:label "Person"@en .
        ex:Philosopher a owl:Class ; rdfs:subClassOf ex:Person ; rdfs:label "Philosopher"@en .
        ex:plato a ex:Philosopher ; a ex:Person ; a ex:Agent ; a owl:Thing .
        ex:ada a ex:Person ; a ex:Agent ; a owl:Thing .
    "#;

    #[test]
    fn initial_pane_uses_owl_thing() {
        let store = TripleStore::from_turtle(DATA).unwrap();
        let ex = Explorer::new(&store);
        let pane = ex.initial_pane().unwrap();
        assert_eq!(pane.stats.instance_count, 2);
        assert!(pane.class.is_some());
        assert_eq!(pane.stats.direct_subclasses, 1); // Agent
        assert_eq!(pane.stats.total_subclasses, 3);
    }

    #[test]
    fn initial_pane_rootless_fallback() {
        let store = TripleStore::from_turtle(
            r#"
            @prefix ex: <http://e/> .
            ex:x a ex:A . ex:y a ex:B .
            "#,
        )
        .unwrap();
        let ex = Explorer::new(&store);
        let pane = ex.initial_pane().unwrap();
        assert!(pane.class.is_none());
        assert_eq!(pane.set.len(), 2);
    }

    #[test]
    fn initial_pane_none_for_untyped_dataset() {
        let store = TripleStore::from_turtle("@prefix ex: <http://e/> . ex:x ex:p ex:y .").unwrap();
        let ex = Explorer::new(&store);
        assert!(ex.initial_pane().is_none());
    }

    #[test]
    fn pane_for_class_by_search() {
        let store = TripleStore::from_turtle(DATA).unwrap();
        let ex = Explorer::new(&store);
        let hits = ex.search_classes("philo", 5);
        assert_eq!(hits.len(), 1);
        let pane = ex.pane_for_class(hits[0]);
        assert_eq!(pane.title, "Philosopher");
        assert_eq!(pane.set.len(), 1);
    }

    #[test]
    fn staleness() {
        let mut store = TripleStore::from_turtle(DATA).unwrap();
        {
            let ex = Explorer::new(&store);
            assert!(!ex.is_stale());
        }
        let x = store.intern(elinda_rdf::Term::iri("http://e/new"));
        store.insert(x, x, x);
        let ex = Explorer::new(&store);
        assert!(!ex.is_stale());
    }

    #[test]
    fn display_prefers_labels() {
        let store = TripleStore::from_turtle(DATA).unwrap();
        let ex = Explorer::new(&store);
        let person = store.lookup_iri("http://e/Person").unwrap();
        assert_eq!(ex.display(person), "Person");
        let plato = store.lookup_iri("http://e/plato").unwrap();
        assert_eq!(ex.display(plato), "plato"); // local name fallback
    }
}
