//! [`NodeSet`]: the URI sets `S` of the formal model.
//!
//! Sets are sorted, deduplicated, and shared (`Arc`), so that expanding a
//! bar never copies the parent set and membership/intersection run in
//! `O(log n)` / `O(n + m)`.

use elinda_rdf::TermId;
use std::sync::Arc;

/// An immutable, sorted, deduplicated set of node ids, cheap to clone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSet {
    items: Arc<[TermId]>,
}

impl NodeSet {
    /// The empty set.
    pub fn empty() -> Self {
        NodeSet {
            items: Arc::from(Vec::new()),
        }
    }

    /// Build from an arbitrary vector (sorted and deduplicated here).
    pub fn from_vec(mut items: Vec<TermId>) -> Self {
        items.sort_unstable();
        items.dedup();
        NodeSet {
            items: items.into(),
        }
    }

    /// Build from a vector already sorted and deduplicated.
    ///
    /// Debug builds assert the invariant.
    pub fn from_sorted_vec(items: Vec<TermId>) -> Self {
        debug_assert!(
            items.windows(2).all(|w| w[0] < w[1]),
            "input not sorted/unique"
        );
        NodeSet {
            items: items.into(),
        }
    }

    /// Number of nodes (`|S|`).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, id: TermId) -> bool {
        self.items.binary_search(&id).is_ok()
    }

    /// The nodes, sorted.
    pub fn as_slice(&self) -> &[TermId] {
        &self.items
    }

    /// Iterate over the nodes.
    pub fn iter(&self) -> impl Iterator<Item = TermId> + '_ {
        self.items.iter().copied()
    }

    /// Sorted-merge intersection.
    pub fn intersect(&self, other: &NodeSet) -> NodeSet {
        let (mut a, mut b) = (self.as_slice(), other.as_slice());
        // Iterate over the smaller side with binary probes when the sizes
        // are lopsided; linear merge otherwise.
        if a.len() > b.len() {
            std::mem::swap(&mut a, &mut b);
        }
        let mut out = Vec::new();
        if b.len() / a.len().max(1) > 16 {
            for &x in a {
                if b.binary_search(&x).is_ok() {
                    out.push(x);
                }
            }
        } else {
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        out.push(a[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
        NodeSet::from_sorted_vec(out)
    }

    /// Keep only nodes satisfying the predicate.
    pub fn filter(&self, mut pred: impl FnMut(TermId) -> bool) -> NodeSet {
        NodeSet::from_sorted_vec(self.iter().filter(|&id| pred(id)).collect())
    }

    /// True if `self ⊆ other`.
    pub fn is_subset_of(&self, other: &NodeSet) -> bool {
        self.iter().all(|id| other.contains(id))
    }
}

impl FromIterator<TermId> for NodeSet {
    fn from_iter<I: IntoIterator<Item = TermId>>(iter: I) -> Self {
        NodeSet::from_vec(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a NodeSet {
    type Item = TermId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, TermId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> TermId {
        TermId::from_raw(n).unwrap()
    }

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().map(|&n| id(n)).collect()
    }

    #[test]
    fn from_vec_sorts_and_dedups() {
        let s = set(&[5, 1, 3, 1, 5]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.as_slice(), &[id(1), id(3), id(5)]);
    }

    #[test]
    fn membership() {
        let s = set(&[2, 4, 6]);
        assert!(s.contains(id(4)));
        assert!(!s.contains(id(5)));
        assert!(!NodeSet::empty().contains(id(1)));
    }

    #[test]
    fn intersect_merge_path() {
        let a = set(&[1, 2, 3, 4, 5]);
        let b = set(&[2, 4, 6]);
        assert_eq!(a.intersect(&b), set(&[2, 4]));
        assert_eq!(b.intersect(&a), set(&[2, 4]));
    }

    #[test]
    fn intersect_probe_path() {
        let big: NodeSet = (1..=1000).map(id).collect();
        let small = set(&[7, 500, 999, 2000]);
        assert_eq!(small.intersect(&big), set(&[7, 500, 999]));
        assert_eq!(big.intersect(&small), set(&[7, 500, 999]));
    }

    #[test]
    fn intersect_with_empty() {
        let a = set(&[1, 2]);
        assert!(a.intersect(&NodeSet::empty()).is_empty());
        assert!(NodeSet::empty().intersect(&a).is_empty());
    }

    #[test]
    fn filter_and_subset() {
        let a = set(&[1, 2, 3, 4]);
        let evens = a.filter(|id| id.raw() % 2 == 0);
        assert_eq!(evens, set(&[2, 4]));
        assert!(evens.is_subset_of(&a));
        assert!(!a.is_subset_of(&evens));
        assert!(NodeSet::empty().is_subset_of(&evens));
    }

    #[test]
    fn clone_is_shallow() {
        let a = set(&[1, 2, 3]);
        let b = a.clone();
        assert!(std::ptr::eq(a.as_slice().as_ptr(), b.as_slice().as_ptr()));
    }
}
