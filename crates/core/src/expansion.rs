//! The three bar expansions of Section 2, plus the filter operation.
//!
//! Each expansion `η` maps a bar `B = ⟨S, λ, t⟩` to a chart `η(B)`:
//!
//! * **Subclass expansion** (`t = class`): one bar per direct subclass `τ`
//!   of `λ`, holding the members of `S` of class `τ`;
//! * **Property expansion** (`t = class`): one bar per property `π`
//!   featured by members of `S`, holding the members featuring `π`
//!   (outgoing: as subjects; incoming: as objects);
//! * **Object expansion** (`t = property`): one bar per class `τ` of the
//!   nodes connected to `S` via `λ`, holding those connected nodes.
//!
//! The filter operation removes URIs violating a condition from every bar.

use crate::bar::{Bar, BarKind};
use crate::chart::{BarChart, ChartKind};
use crate::nodeset::NodeSet;
use crate::spec::SetSpec;
use elinda_rdf::fx::FxHashMap;
use elinda_rdf::{TermId, Triple};
use elinda_store::{ClassHierarchy, TripleStore};
use std::fmt;

/// Whether the members of `S` play the subject role (outgoing) or the
/// object role (incoming) — Section 2 defines both versions of the
/// property and object expansions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Members of `S` are the subjects.
    Outgoing,
    /// Members of `S` are the objects.
    Incoming,
}

/// Which expansion to apply in an exploration step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExpansionKind {
    /// Subclass expansion (requires a class bar).
    Subclass,
    /// Property expansion (requires a class bar).
    Property(Direction),
    /// Object expansion (requires a property bar).
    Objects(Direction),
}

impl ExpansionKind {
    /// The bar type the expansion applies to (rule (b) of an exploration).
    pub fn applicable_to(self) -> BarKind {
        match self {
            ExpansionKind::Subclass | ExpansionKind::Property(_) => BarKind::Class,
            ExpansionKind::Objects(_) => BarKind::Property,
        }
    }
}

/// A condition on URIs for the filter operation.
#[derive(Debug, Clone, PartialEq)]
pub enum UriFilter {
    /// Keep URIs featuring the property.
    HasProperty {
        /// The property.
        prop: TermId,
        /// Role of the URI.
        direction: Direction,
    },
    /// Keep URIs with the exact property value.
    HasValue {
        /// The property.
        prop: TermId,
        /// The required object value.
        value: TermId,
    },
    /// Keep URIs contained in an explicit set.
    InSet(NodeSet),
}

impl UriFilter {
    /// Does `id` satisfy the condition?
    pub fn accepts(&self, store: &TripleStore, id: TermId) -> bool {
        match self {
            UriFilter::HasProperty { prop, direction } => match direction {
                Direction::Outgoing => !store.spo_range(id, Some(*prop)).is_empty(),
                Direction::Incoming => !store.pos_range(*prop, Some(id)).is_empty(),
            },
            UriFilter::HasValue { prop, value } => store.contains(Triple::new(id, *prop, *value)),
            UriFilter::InSet(set) => set.contains(id),
        }
    }

    /// Refine a spec with this filter, when the filter is intensional.
    fn refine_spec(&self, spec: &SetSpec) -> SetSpec {
        match self {
            UriFilter::HasProperty { prop, direction } => SetSpec::WithProperty {
                parent: Box::new(spec.clone()),
                prop: *prop,
                direction: *direction,
            },
            UriFilter::HasValue { prop, value } => SetSpec::WithValue {
                parent: Box::new(spec.clone()),
                prop: *prop,
                value: *value,
            },
            // Extensional filters keep the parent definition.
            UriFilter::InSet(_) => spec.clone(),
        }
    }
}

/// An expansion applied to a bar of the wrong type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpandError {
    /// The bar type the expansion needs.
    pub expected: BarKind,
    /// The bar type it was given.
    pub actual: BarKind,
}

impl fmt::Display for ExpandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "expansion requires a {:?} bar but was applied to a {:?} bar",
            self.expected, self.actual
        )
    }
}

impl std::error::Error for ExpandError {}

fn require_kind(bar: &Bar, expected: BarKind) -> Result<(), ExpandError> {
    if bar.kind == expected {
        Ok(())
    } else {
        Err(ExpandError {
            expected,
            actual: bar.kind,
        })
    }
}

/// Apply any expansion to a bar (dispatcher used by explorations).
pub fn expand(
    store: &TripleStore,
    hierarchy: &ClassHierarchy,
    bar: &Bar,
    kind: ExpansionKind,
) -> Result<BarChart, ExpandError> {
    expand_opts(store, hierarchy, bar, kind, false)
}

/// [`expand`] with the transitive-instances option (for datasets that do
/// not materialize types).
pub fn expand_opts(
    store: &TripleStore,
    hierarchy: &ClassHierarchy,
    bar: &Bar,
    kind: ExpansionKind,
    transitive: bool,
) -> Result<BarChart, ExpandError> {
    match kind {
        ExpansionKind::Subclass if transitive => {
            subclass_expansion_transitive(store, hierarchy, bar)
        }
        ExpansionKind::Subclass => subclass_expansion(store, hierarchy, bar),
        ExpansionKind::Property(d) => property_expansion(store, bar, d),
        ExpansionKind::Objects(d) => object_expansion(store, hierarchy, bar, d),
    }
}

/// Subclass expansion: `labels(B)` are the direct subclasses `τ` of `λ`;
/// `B[τ]` holds the members of `S` of class `τ`.
pub fn subclass_expansion(
    store: &TripleStore,
    hierarchy: &ClassHierarchy,
    bar: &Bar,
) -> Result<BarChart, ExpandError> {
    subclass_expansion_impl(store, hierarchy, bar, false)
}

/// Subclass expansion over transitive instance sets: `B[τ]` holds the
/// members of `S` of class `τ` *or any subclass of* `τ`. On datasets
/// with materialized types this equals [`subclass_expansion`]; on
/// non-materialized datasets (YAGO) it is the only way a drill-down sees
/// the deep instances.
pub fn subclass_expansion_transitive(
    store: &TripleStore,
    hierarchy: &ClassHierarchy,
    bar: &Bar,
) -> Result<BarChart, ExpandError> {
    subclass_expansion_impl(store, hierarchy, bar, true)
}

fn subclass_expansion_impl(
    store: &TripleStore,
    hierarchy: &ClassHierarchy,
    bar: &Bar,
    transitive: bool,
) -> Result<BarChart, ExpandError> {
    require_kind(bar, BarKind::Class)?;
    let mut bars = Vec::new();
    for &sub in hierarchy.direct_subclasses(bar.label) {
        let (instances, spec) = if transitive {
            (
                NodeSet::from_sorted_vec(hierarchy.instances_transitive(store, sub)),
                SetSpec::NarrowTransitive {
                    parent: Box::new(bar.spec.clone()),
                    class: sub,
                },
            )
        } else {
            (
                NodeSet::from_sorted_vec(hierarchy.instances(store, sub)),
                SetSpec::Narrow {
                    parent: Box::new(bar.spec.clone()),
                    class: sub,
                },
            )
        };
        let nodes = bar.nodes.intersect(&instances);
        bars.push(Bar::new(nodes, sub, BarKind::Class, spec));
    }
    Ok(BarChart::new(bars, bar.nodes.len(), ChartKind::Subclass))
}

/// Property expansion: `labels(B)` are the properties featured by members
/// of `S`; `B[π]` holds the members featuring `π`. Properties are
/// inferred from the data triples, never from `rdf:Property` declarations
/// (paper Section 3.3).
pub fn property_expansion(
    store: &TripleStore,
    bar: &Bar,
    direction: Direction,
) -> Result<BarChart, ExpandError> {
    require_kind(bar, BarKind::Class)?;
    let mut by_prop: FxHashMap<TermId, Vec<TermId>> = FxHashMap::default();
    let mut props_buf: Vec<TermId> = Vec::new();
    for s in &bar.nodes {
        props_buf.clear();
        match direction {
            Direction::Outgoing => {
                // SPO range for s is sorted by p: dedup by run.
                let mut last = None;
                for t in store.spo_range(s, None) {
                    if last != Some(t.p) {
                        props_buf.push(t.p);
                        last = Some(t.p);
                    }
                }
            }
            Direction::Incoming => {
                // OSP range for o = s is sorted by (s2, p): collect distinct.
                props_buf.extend(store.osp_range(s, None).iter().map(|t| t.p));
                props_buf.sort_unstable();
                props_buf.dedup();
            }
        }
        for &p in &props_buf {
            by_prop.entry(p).or_default().push(s);
        }
    }
    let chart_kind = match direction {
        Direction::Outgoing => ChartKind::PropertyOutgoing,
        Direction::Incoming => ChartKind::PropertyIncoming,
    };
    let bars = by_prop
        .into_iter()
        .map(|(prop, members)| {
            Bar::new(
                // Members were pushed in iteration order over the sorted
                // node set, so they are sorted and unique already.
                NodeSet::from_sorted_vec(members),
                prop,
                BarKind::Property,
                SetSpec::WithProperty {
                    parent: Box::new(bar.spec.clone()),
                    prop,
                    direction,
                },
            )
        })
        .collect();
    Ok(BarChart::new(bars, bar.nodes.len(), chart_kind))
}

/// Object expansion: for a property bar `B = ⟨S, λ, property⟩`, the chart
/// groups the nodes connected to `S` via `λ` by their class. Connected
/// nodes with no `rdf:type` are counted as unclassified.
pub fn object_expansion(
    store: &TripleStore,
    hierarchy: &ClassHierarchy,
    bar: &Bar,
    direction: Direction,
) -> Result<BarChart, ExpandError> {
    require_kind(bar, BarKind::Property)?;
    let prop = bar.label;
    let mut connected: Vec<TermId> = Vec::new();
    for s in &bar.nodes {
        match direction {
            Direction::Outgoing => connected.extend(store.objects_of(s, prop)),
            Direction::Incoming => connected.extend(store.subjects_with(prop, s)),
        }
    }
    connected.sort_unstable();
    connected.dedup();

    let mut by_class: FxHashMap<TermId, Vec<TermId>> = FxHashMap::default();
    let mut unclassified = 0usize;
    for &o in &connected {
        let classes = hierarchy.classes_of(store, o);
        if classes.is_empty() {
            unclassified += 1;
        }
        for c in classes {
            by_class.entry(c).or_default().push(o);
        }
    }
    let chart_kind = match direction {
        Direction::Outgoing => ChartKind::ObjectsOutgoing,
        Direction::Incoming => ChartKind::ObjectsIncoming,
    };
    let bars = by_class
        .into_iter()
        .map(|(class, members)| {
            Bar::new(
                NodeSet::from_sorted_vec(members),
                class,
                BarKind::Class,
                SetSpec::ObjectsVia {
                    source: Box::new(bar.spec.clone()),
                    prop,
                    direction,
                    class,
                },
            )
        })
        .collect();
    Ok(BarChart::with_unclassified(
        bars,
        connected.len(),
        chart_kind,
        unclassified,
    ))
}

/// The filter operation: remove from every bar the URIs violating the
/// condition. Bar specs are refined when the condition is intensional.
pub fn filter_chart(store: &TripleStore, chart: &BarChart, filter: &UriFilter) -> BarChart {
    let bars = chart
        .bars()
        .iter()
        .map(|b| {
            Bar::new(
                b.nodes.filter(|id| filter.accepts(store, id)),
                b.label,
                b.kind,
                filter.refine_spec(&b.spec),
            )
        })
        .collect();
    // The denominator |S| is preserved: filtering bars does not change S.
    BarChart::with_unclassified(bars, chart.total(), chart.kind(), chart.unclassified())
}

#[cfg(test)]
mod tests {
    use super::*;
    use elinda_sparql::Executor;

    const DATA: &str = r#"
        @prefix ex: <http://e/> .
        @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
        @prefix owl: <http://www.w3.org/2002/07/owl#> .
        ex:Agent rdfs:subClassOf owl:Thing .
        ex:Person rdfs:subClassOf ex:Agent .
        ex:Philosopher rdfs:subClassOf ex:Person .
        ex:Scientist rdfs:subClassOf ex:Person .
        ex:Work rdfs:subClassOf owl:Thing .

        ex:plato a ex:Philosopher ; a ex:Person ; a ex:Agent ; a owl:Thing ;
            ex:influencedBy ex:socrates ; ex:born ex:athens .
        ex:socrates a ex:Philosopher ; a ex:Person ; a ex:Agent ; a owl:Thing ;
            ex:born ex:athens .
        ex:darwin a ex:Scientist ; a ex:Person ; a ex:Agent ; a owl:Thing ;
            ex:influencedBy ex:socrates .
        ex:kant a ex:Philosopher ; a ex:Person ; a ex:Agent ; a owl:Thing ;
            ex:influencedBy ex:darwin ; ex:influencedBy ex:socrates .

        ex:rep a ex:Work ; a owl:Thing ; ex:author ex:plato .
        ex:cri a ex:Work ; a owl:Thing ; ex:author ex:kant .
        ex:untyped_thing ex:author ex:plato .
    "#;

    fn setup() -> (TripleStore, ClassHierarchy) {
        let store = TripleStore::from_turtle(DATA).unwrap();
        let h = ClassHierarchy::build(&store);
        (store, h)
    }

    fn id(store: &TripleStore, local: &str) -> TermId {
        store.lookup_iri(&format!("http://e/{local}")).unwrap()
    }

    fn class_bar(store: &TripleStore, h: &ClassHierarchy, local: &str) -> Bar {
        let class = id(store, local);
        let spec = SetSpec::AllOfType(class);
        Bar::new(spec.eval(store, h), class, BarKind::Class, spec)
    }

    #[test]
    fn subclass_expansion_partitions_by_subclass() {
        let (store, h) = setup();
        let person = class_bar(&store, &h, "Person");
        let chart = subclass_expansion(&store, &h, &person).unwrap();
        assert_eq!(chart.kind(), ChartKind::Subclass);
        assert_eq!(chart.total(), 4);
        let phil = chart.bar(id(&store, "Philosopher")).unwrap();
        let sci = chart.bar(id(&store, "Scientist")).unwrap();
        assert_eq!(phil.height(), 3);
        assert_eq!(sci.height(), 1);
        // Sorted by decreasing height.
        assert_eq!(chart.bars()[0].label, id(&store, "Philosopher"));
        // Each bar ⊆ S.
        for b in chart.bars() {
            assert!(b.nodes.is_subset_of(&person.nodes));
        }
    }

    #[test]
    fn subclass_expansion_rejects_property_bars() {
        let (store, h) = setup();
        let person = class_bar(&store, &h, "Person");
        let prop_chart = property_expansion(&store, &person, Direction::Outgoing).unwrap();
        let prop_bar = &prop_chart.bars()[0];
        let err = subclass_expansion(&store, &h, prop_bar).unwrap_err();
        assert_eq!(err.expected, BarKind::Class);
    }

    #[test]
    fn property_expansion_outgoing_counts_coverage() {
        let (store, h) = setup();
        let phil = class_bar(&store, &h, "Philosopher");
        let chart = property_expansion(&store, &phil, Direction::Outgoing).unwrap();
        let infl = chart.bar(id(&store, "influencedBy")).unwrap();
        assert_eq!(infl.height(), 2); // plato, kant
        assert!((chart.coverage(infl) - 2.0 / 3.0).abs() < 1e-12);
        let born = chart.bar(id(&store, "born")).unwrap();
        assert_eq!(born.height(), 2); // plato, socrates
                                      // kant has two influencedBy triples but appears once in the bar.
        assert!(infl.nodes.contains(id(&store, "kant")));
    }

    #[test]
    fn property_expansion_incoming() {
        let (store, h) = setup();
        let phil = class_bar(&store, &h, "Philosopher");
        let chart = property_expansion(&store, &phil, Direction::Incoming).unwrap();
        // Philosophers are targets of influencedBy (socrates, darwin is not
        // a philosopher) and author (plato, kant).
        let infl = chart.bar(id(&store, "influencedBy")).unwrap();
        assert_eq!(infl.height(), 1); // socrates
        let author = chart.bar(id(&store, "author")).unwrap();
        assert_eq!(author.height(), 2); // plato, kant
    }

    #[test]
    fn property_bars_match_their_sparql() {
        let (store, h) = setup();
        let phil = class_bar(&store, &h, "Philosopher");
        for direction in [Direction::Outgoing, Direction::Incoming] {
            let chart = property_expansion(&store, &phil, direction).unwrap();
            for b in chart.bars() {
                let sol = Executor::new(&store)
                    .execute(&b.spec.to_query(&store))
                    .unwrap();
                let via_sparql = NodeSet::from_vec(sol.term_column("x"));
                assert_eq!(b.nodes, via_sparql, "bar {:?} {:?}", b.label, direction);
            }
        }
    }

    #[test]
    fn object_expansion_groups_by_class() {
        let (store, h) = setup();
        let phil = class_bar(&store, &h, "Philosopher");
        let chart = property_expansion(&store, &phil, Direction::Outgoing).unwrap();
        let infl_bar = chart.bar(id(&store, "influencedBy")).unwrap();
        let conn = object_expansion(&store, &h, infl_bar, Direction::Outgoing).unwrap();
        // Influencers of philosophers: socrates (Philosopher…), darwin (Scientist…).
        let sci = conn.bar(id(&store, "Scientist")).unwrap();
        assert_eq!(sci.height(), 1);
        assert!(sci.nodes.contains(id(&store, "darwin")));
        let ph = conn.bar(id(&store, "Philosopher")).unwrap();
        assert_eq!(ph.height(), 1); // socrates
        assert_eq!(conn.total(), 2); // two distinct connected objects
        assert_eq!(conn.unclassified(), 0);
    }

    #[test]
    fn object_expansion_counts_untyped() {
        let (store, h) = setup();
        let work = class_bar(&store, &h, "Work");
        // Incoming property chart of Work: author arrives FROM works…
        // actually author leaves works; take outgoing.
        let chart = property_expansion(&store, &work, Direction::Outgoing).unwrap();
        let author_bar = chart.bar(id(&store, "author")).unwrap();
        let conn = object_expansion(&store, &h, author_bar, Direction::Outgoing).unwrap();
        // Targets: plato, kant — both typed.
        assert_eq!(conn.unclassified(), 0);

        // Now incoming on the Person side: who authors persons?  Use the
        // untyped subject: ex:untyped_thing authors plato.
        let person = class_bar(&store, &h, "Person");
        let pchart = property_expansion(&store, &person, Direction::Incoming).unwrap();
        let author_in = pchart.bar(id(&store, "author")).unwrap();
        let conn = object_expansion(&store, &h, author_in, Direction::Incoming).unwrap();
        assert_eq!(conn.unclassified(), 1); // ex:untyped_thing
        let works = conn.bar(id(&store, "Work")).unwrap();
        assert_eq!(works.height(), 2);
    }

    #[test]
    fn object_bars_match_their_sparql() {
        let (store, h) = setup();
        let phil = class_bar(&store, &h, "Philosopher");
        let chart = property_expansion(&store, &phil, Direction::Outgoing).unwrap();
        let infl_bar = chart.bar(id(&store, "influencedBy")).unwrap();
        let conn = object_expansion(&store, &h, infl_bar, Direction::Outgoing).unwrap();
        for b in conn.bars() {
            let sol = Executor::new(&store)
                .execute(&b.spec.to_query(&store))
                .unwrap();
            let via_sparql = NodeSet::from_vec(sol.term_column("x"));
            assert_eq!(b.nodes, via_sparql, "object bar {:?}", b.label);
        }
    }

    #[test]
    fn object_expansion_rejects_class_bars() {
        let (store, h) = setup();
        let person = class_bar(&store, &h, "Person");
        let err = object_expansion(&store, &h, &person, Direction::Outgoing).unwrap_err();
        assert_eq!(err.expected, BarKind::Property);
    }

    #[test]
    fn filter_removes_violating_uris() {
        let (store, h) = setup();
        let person = class_bar(&store, &h, "Person");
        let chart = subclass_expansion(&store, &h, &person).unwrap();
        let filter = UriFilter::HasValue {
            prop: id(&store, "born"),
            value: id(&store, "athens"),
        };
        let filtered = filter_chart(&store, &chart, &filter);
        // Only plato & socrates born in athens; both Philosophers.
        assert_eq!(filtered.len(), 1);
        let phil = filtered.bar(id(&store, "Philosopher")).unwrap();
        assert_eq!(phil.height(), 2);
        // The denominator |S| is unchanged by filtering.
        assert_eq!(filtered.total(), chart.total());
        // The refined spec still matches SPARQL.
        let sol = Executor::new(&store)
            .execute(&phil.spec.to_query(&store))
            .unwrap();
        assert_eq!(NodeSet::from_vec(sol.term_column("x")), phil.nodes);
    }

    #[test]
    fn filter_has_property_and_in_set() {
        let (store, h) = setup();
        let person = class_bar(&store, &h, "Person");
        let chart = subclass_expansion(&store, &h, &person).unwrap();
        let filtered = filter_chart(
            &store,
            &chart,
            &UriFilter::HasProperty {
                prop: id(&store, "influencedBy"),
                direction: Direction::Outgoing,
            },
        );
        // plato, kant (Philosopher), darwin (Scientist).
        assert_eq!(filtered.bar(id(&store, "Philosopher")).unwrap().height(), 2);
        assert_eq!(filtered.bar(id(&store, "Scientist")).unwrap().height(), 1);

        let keep: NodeSet = [id(&store, "plato")].into_iter().collect();
        let filtered = filter_chart(&store, &chart, &UriFilter::InSet(keep));
        assert_eq!(filtered.len(), 1);
        assert_eq!(filtered.bars()[0].height(), 1);
    }

    #[test]
    fn dispatcher_routes_by_kind() {
        let (store, h) = setup();
        let person = class_bar(&store, &h, "Person");
        assert!(expand(&store, &h, &person, ExpansionKind::Subclass).is_ok());
        assert!(expand(
            &store,
            &h,
            &person,
            ExpansionKind::Property(Direction::Outgoing)
        )
        .is_ok());
        assert!(expand(
            &store,
            &h,
            &person,
            ExpansionKind::Objects(Direction::Outgoing)
        )
        .is_err());
        assert_eq!(ExpansionKind::Subclass.applicable_to(), BarKind::Class);
        assert_eq!(
            ExpansionKind::Objects(Direction::Incoming).applicable_to(),
            BarKind::Property
        );
    }
}
