//! The eLinda decomposer.
//!
//! "ELINDA detects heavy queries are sent to the ELINDA backend and map
//! the SPARQL queries to a decomposition of SQL queries that utilizes the
//! indexes and prevents heavy and redundant SPARQL computations."
//! (Section 4)
//!
//! The heavy shape is the property-expansion query:
//!
//! ```sparql
//! SELECT ?p COUNT(?p) AS ?count SUM(?sp) AS ?sp
//! FROM {SELECT ?s ?p count(*) AS ?sp
//!       FROM {?s a owl:Thing. ?s ?p ?o.}
//!       GROUP BY ?s ?p} GROUP BY ?p
//! ```
//!
//! whose naive plan materializes the full `(s, p)` group table.
//! [`recognize_property_expansion`] matches this shape (and its incoming
//! variant) on the AST; [`execute_decomposed`] answers it with one index
//! scan per instance — the per-subject `(p, count)` runs are contiguous
//! in the SPO index (per-object runs in OSP), so no intermediate table is
//! ever built. This works "for *all* property expansion queries", any
//! class, not just ones previously seen (unlike the HVS).

use elinda_rdf::fx::FxHashMap;
use elinda_rdf::{vocab, Term, TermId};
use elinda_sparql::ast::{Expr, PatternElement, Predicate, Query, SelectItems, TermOrVar};
use elinda_sparql::{Solutions, Value};
use elinda_store::{ClassHierarchy, TripleStore};

/// Direction of a recognized property-expansion query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpansionDirection {
    /// Instances are the subjects (`?s a <C> . ?s ?p ?o`).
    Outgoing,
    /// Instances are the objects (`?o a <C> . ?s ?p ?o`).
    Incoming,
}

/// A recognized property-expansion query.
#[derive(Debug, Clone, PartialEq)]
pub struct PropertyExpansionQuery {
    /// The class whose instances are expanded.
    pub class: Term,
    /// Subject-side or object-side expansion.
    pub direction: ExpansionDirection,
    /// Output column names `(property, entity count, triple sum)` taken
    /// from the query's projection, so the decomposed result is
    /// column-compatible with the naive one.
    pub columns: [String; 3],
}

/// Try to match a query against the property-expansion shape.
pub fn recognize_property_expansion(query: &Query) -> Option<PropertyExpansionQuery> {
    // Outer: GROUP BY ?p with projection (?p, COUNT(?p)|COUNT(*) AS c,
    // SUM(?sp) AS s) and a single subselect in WHERE.
    if query.group_by.len() != 1 {
        return None;
    }
    let p_var = query.group_by[0].clone();
    let SelectItems::Items(items) = &query.select.items else {
        return None;
    };
    if items.len() != 3 {
        return None;
    }
    let Expr::Var(v0) = &items[0].expr else {
        return None;
    };
    if *v0 != p_var {
        return None;
    }
    let count_col = match &items[1].expr {
        Expr::Aggregate(elinda_sparql::ast::AggFunc::Count, _, false) => {
            items[1].output_name()?.to_string()
        }
        _ => return None,
    };
    let (sum_col, sum_var) = match &items[2].expr {
        Expr::Aggregate(elinda_sparql::ast::AggFunc::Sum, Some(arg), false) => {
            let Expr::Var(sv) = arg.as_ref() else {
                return None;
            };
            (items[2].output_name()?.to_string(), sv.clone())
        }
        _ => return None,
    };

    // The single WHERE element must be the inner subselect.
    let [PatternElement::SubSelect(inner)] = query.where_clause.elements.as_slice() else {
        return None;
    };

    // Inner: GROUP BY ?s ?p (or ?o ?p) projecting COUNT(*) AS ?sp.
    if inner.group_by.len() != 2 || !inner.group_by.contains(&p_var) {
        return None;
    }
    let entity_var = inner.group_by.iter().find(|v| **v != p_var)?.clone();
    let SelectItems::Items(inner_items) = &inner.select.items else {
        return None;
    };
    let counts_star = inner_items.iter().any(|i| {
        matches!(
            &i.expr,
            Expr::Aggregate(elinda_sparql::ast::AggFunc::Count, None, false)
        ) && i.output_name() == Some(sum_var.as_str())
    });
    if !counts_star {
        return None;
    }

    // Innermost: exactly the two triple patterns.
    let [PatternElement::Triples(patterns)] = inner.where_clause.elements.as_slice() else {
        return None;
    };
    if patterns.len() != 2 {
        return None;
    }
    let mut class: Option<Term> = None;
    let mut typed_var: Option<String> = None;
    let mut spo: Option<(String, String)> = None; // (subject var, object var)
    for pat in patterns {
        match (&pat.s, &pat.p, &pat.o) {
            (
                TermOrVar::Var(sv),
                Predicate::Simple(TermOrVar::Term(Term::Iri(p))),
                TermOrVar::Term(c),
            ) if p.as_ref() == vocab::rdf::TYPE => {
                class = Some(c.clone());
                typed_var = Some(sv.clone());
            }
            (TermOrVar::Var(sv), Predicate::Simple(TermOrVar::Var(pv)), TermOrVar::Var(ov))
                if *pv == p_var =>
            {
                spo = Some((sv.clone(), ov.clone()));
            }
            _ => return None,
        }
    }
    let (class, typed_var) = (class?, typed_var?);
    let (s_var, o_var) = spo?;
    let direction = if typed_var == s_var && entity_var == s_var {
        ExpansionDirection::Outgoing
    } else if typed_var == o_var && entity_var == o_var {
        ExpansionDirection::Incoming
    } else {
        return None;
    };
    Some(PropertyExpansionQuery {
        class,
        direction,
        columns: [p_var, count_col, sum_col],
    })
}

/// Answer a recognized property-expansion query from the fully
/// precomputed [`elinda_store::PropertyAggregates`] index (the ablation variant: all
/// `(class, property)` aggregates materialized at mirror-load time).
///
/// Constant-time per output row, at the cost of `O(classes × properties)`
/// memory and a full preprocessing pass — the trade-off the
/// `ablation_decomposer` bench quantifies against the on-demand variant.
pub fn execute_precomputed(
    store: &TripleStore,
    aggregates: &elinda_store::PropertyAggregates,
    q: &PropertyExpansionQuery,
) -> Solutions {
    let mut rows = Vec::new();
    if let Some(class_id) = store.interner().get(&q.class) {
        let pairs = match q.direction {
            ExpansionDirection::Outgoing => aggregates.outgoing(class_id),
            ExpansionDirection::Incoming => aggregates.incoming(class_id),
        };
        rows.reserve(pairs.len());
        for &(p, agg) in pairs {
            rows.push(vec![
                Some(Value::Term(p)),
                Some(Value::Int(agg.entity_count as i64)),
                Some(Value::Int(agg.triple_count as i64)),
            ]);
        }
    }
    let mut solutions = Solutions {
        vars: q.columns.to_vec(),
        rows,
    };
    crate::parallel::canonicalize_rows(&mut solutions, store);
    solutions
}

/// Answer a recognized property-expansion query from the indexes.
///
/// Outgoing: one SPO range scan per instance; each `(s, p)` run is
/// contiguous, so the aggregation needs no intermediate table. Incoming:
/// one OSP range scan per instance with a small per-instance sort.
///
/// Rows come back in the canonical order (sorted by property IRI text),
/// the same finisher the sharded parallel path uses, so the two are
/// byte-identical on the SPARQL-JSON wire format.
pub fn execute_decomposed(
    store: &TripleStore,
    hierarchy: &ClassHierarchy,
    q: &PropertyExpansionQuery,
) -> Solutions {
    let mut agg: FxHashMap<TermId, (i64, i64)> = FxHashMap::default();
    if let Some(class_id) = store.interner().get(&q.class) {
        let instances = hierarchy.instances(store, class_id);
        match q.direction {
            ExpansionDirection::Outgoing => {
                for s in instances {
                    let range = store.spo_range(s, None);
                    let mut i = 0;
                    while i < range.len() {
                        let p = range[i].p;
                        let run = range[i..].partition_point(|t| t.p == p);
                        let e = agg.entry(p).or_default();
                        e.0 += 1;
                        e.1 += run as i64;
                        i += run;
                    }
                }
            }
            ExpansionDirection::Incoming => {
                let mut props: Vec<TermId> = Vec::new();
                for o in instances {
                    props.clear();
                    props.extend(store.osp_range(o, None).iter().map(|t| t.p));
                    props.sort_unstable();
                    let mut i = 0;
                    while i < props.len() {
                        let p = props[i];
                        let run = props[i..].partition_point(|&x| x == p);
                        let e = agg.entry(p).or_default();
                        e.0 += 1;
                        e.1 += run as i64;
                        i += run;
                    }
                }
            }
        }
    }
    crate::parallel::property_agg_solutions(agg, &q.columns, store)
}

/// The canonical SPARQL text of a property-expansion query for a class —
/// what the eLinda frontend sends for the Property Data tab.
pub fn property_expansion_sparql(class_iri: &str, direction: ExpansionDirection) -> String {
    let (inner_patterns, entity) = match direction {
        ExpansionDirection::Outgoing => (format!("?s a <{class_iri}> . ?s ?p ?o ."), "?s"),
        ExpansionDirection::Incoming => (format!("?o a <{class_iri}> . ?s ?p ?o ."), "?o"),
    };
    format!(
        "SELECT ?p (COUNT(?p) AS ?count) (SUM(?sp) AS ?sp) WHERE {{ \
         {{ SELECT {entity} ?p (COUNT(*) AS ?sp) WHERE {{ {inner_patterns} }} \
         GROUP BY {entity} ?p }} }} GROUP BY ?p"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use elinda_sparql::{parse_query, Executor};

    const PAPER_QUERY: &str = "SELECT ?p COUNT(?p) AS ?count SUM(?sp) AS ?sp
        FROM {SELECT ?s ?p count(*) AS ?sp
        FROM {?s a owl:Thing. ?s ?p ?o.}
        GROUP BY ?s ?p} GROUP BY ?p";

    fn store() -> TripleStore {
        TripleStore::from_turtle(
            r#"
            @prefix ex: <http://e/> .
            @prefix owl: <http://www.w3.org/2002/07/owl#> .
            ex:a a owl:Thing ; ex:p ex:b , ex:c ; ex:q ex:b .
            ex:b a owl:Thing ; ex:p ex:c .
            ex:c a owl:Thing .
            ex:outside ex:p ex:a .
            "#,
        )
        .unwrap()
    }

    #[test]
    fn recognizes_the_verbatim_paper_query() {
        let q = parse_query(PAPER_QUERY).unwrap();
        let rec = recognize_property_expansion(&q).expect("must recognize");
        assert_eq!(rec.class, Term::iri(vocab::owl::THING));
        assert_eq!(rec.direction, ExpansionDirection::Outgoing);
        assert_eq!(rec.columns, ["p".to_string(), "count".into(), "sp".into()]);
    }

    #[test]
    fn recognizes_the_incoming_variant() {
        let text = property_expansion_sparql("http://e/C", ExpansionDirection::Incoming);
        let q = parse_query(&text).unwrap();
        let rec = recognize_property_expansion(&q).expect("must recognize");
        assert_eq!(rec.direction, ExpansionDirection::Incoming);
        assert_eq!(rec.class, Term::iri("http://e/C"));
    }

    #[test]
    fn recognizes_generated_canonical_form() {
        let text = property_expansion_sparql(vocab::owl::THING, ExpansionDirection::Outgoing);
        let q = parse_query(&text).unwrap();
        assert!(recognize_property_expansion(&q).is_some());
    }

    #[test]
    fn rejects_other_queries() {
        for text in [
            "SELECT ?s WHERE { ?s ?p ?o }",
            "SELECT ?p (COUNT(*) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?p",
            // Aggregation shape right but patterns wrong (extra pattern).
            "SELECT ?p (COUNT(?p) AS ?c) (SUM(?sp) AS ?sp) WHERE { { SELECT ?s ?p (COUNT(*) AS ?sp) WHERE { ?s a owl:Thing . ?s ?p ?o . ?o a owl:Thing } GROUP BY ?s ?p } } GROUP BY ?p",
        ] {
            let q = parse_query(text).unwrap();
            assert!(recognize_property_expansion(&q).is_none(), "{text}");
        }
    }

    fn sorted_rows(sol: &Solutions, store: &TripleStore) -> Vec<(String, i64, i64)> {
        let p = sol.column(&sol.vars[0]).unwrap();
        let c = sol.column(&sol.vars[1]).unwrap();
        let s = sol.column(&sol.vars[2]).unwrap();
        let mut rows: Vec<(String, i64, i64)> = sol
            .rows
            .iter()
            .map(|r| {
                let prop = match &r[p] {
                    Some(Value::Term(id)) => store.resolve(*id).to_string(),
                    other => panic!("{other:?}"),
                };
                let count = r[c].as_ref().unwrap().as_number(store).unwrap() as i64;
                let sum = r[s].as_ref().unwrap().as_number(store).unwrap() as i64;
                (prop, count, sum)
            })
            .collect();
        rows.sort();
        rows
    }

    #[test]
    fn decomposed_equals_naive_outgoing() {
        let store = store();
        let h = ClassHierarchy::build(&store);
        let q = parse_query(PAPER_QUERY).unwrap();
        let rec = recognize_property_expansion(&q).unwrap();
        let decomposed = execute_decomposed(&store, &h, &rec);
        let naive = Executor::new(&store).execute(&q).unwrap();
        assert_eq!(
            sorted_rows(&decomposed, &store),
            sorted_rows(&naive, &store)
        );
    }

    #[test]
    fn decomposed_equals_naive_incoming() {
        let store = store();
        let h = ClassHierarchy::build(&store);
        let text = property_expansion_sparql(vocab::owl::THING, ExpansionDirection::Incoming);
        let q = parse_query(&text).unwrap();
        let rec = recognize_property_expansion(&q).unwrap();
        let decomposed = execute_decomposed(&store, &h, &rec);
        let naive = Executor::new(&store).execute(&q).unwrap();
        assert_eq!(
            sorted_rows(&decomposed, &store),
            sorted_rows(&naive, &store)
        );
    }

    #[test]
    fn unknown_class_yields_empty() {
        let store = store();
        let h = ClassHierarchy::build(&store);
        let text = property_expansion_sparql("http://e/Nothing", ExpansionDirection::Outgoing);
        let q = parse_query(&text).unwrap();
        let rec = recognize_property_expansion(&q).unwrap();
        let decomposed = execute_decomposed(&store, &h, &rec);
        assert!(decomposed.is_empty());
    }

    #[test]
    fn precomputed_equals_on_demand() {
        let store = store();
        let h = ClassHierarchy::build(&store);
        let aggregates = elinda_store::PropertyAggregates::build(&store, &h);
        for dir in [ExpansionDirection::Outgoing, ExpansionDirection::Incoming] {
            let text = property_expansion_sparql(vocab::owl::THING, dir);
            let q = parse_query(&text).unwrap();
            let rec = recognize_property_expansion(&q).unwrap();
            let on_demand = execute_decomposed(&store, &h, &rec);
            let precomputed = execute_precomputed(&store, &aggregates, &rec);
            assert_eq!(
                sorted_rows(&on_demand, &store),
                sorted_rows(&precomputed, &store),
                "{dir:?}"
            );
        }
    }

    #[test]
    fn precomputed_unknown_class_is_empty() {
        let store = store();
        let h = ClassHierarchy::build(&store);
        let aggregates = elinda_store::PropertyAggregates::build(&store, &h);
        let text = property_expansion_sparql("http://e/Nothing", ExpansionDirection::Outgoing);
        let rec = recognize_property_expansion(&parse_query(&text).unwrap()).unwrap();
        assert!(execute_precomputed(&store, &aggregates, &rec).is_empty());
    }

    #[test]
    fn works_for_subclasses_not_just_owl_thing() {
        let store = TripleStore::from_turtle(
            r#"
            @prefix ex: <http://e/> .
            ex:x a ex:C ; ex:p ex:y .
            ex:y a ex:D ; ex:p ex:x .
            "#,
        )
        .unwrap();
        let h = ClassHierarchy::build(&store);
        let text = property_expansion_sparql("http://e/C", ExpansionDirection::Outgoing);
        let q = parse_query(&text).unwrap();
        let rec = recognize_property_expansion(&q).unwrap();
        let decomposed = execute_decomposed(&store, &h, &rec);
        let naive = Executor::new(&store).execute(&q).unwrap();
        assert_eq!(
            sorted_rows(&decomposed, &store),
            sorted_rows(&naive, &store)
        );
    }
}
