#![warn(missing_docs)]

//! The eLinda serving architecture (paper Section 4, Fig. 3).
//!
//! "The architecture design of ELINDA is driven primarily by the
//! requirement of responsiveness, which means that expansions should
//! happen instantly, preferably in tens to hundreds of milliseconds."
//! Three techniques deliver that, all implemented here:
//!
//! * **eLinda HVS** ([`hvs`]) — a key-value *heavy query store*: queries
//!   whose measured runtime exceeds a threshold (1 s in the paper) are
//!   cached; the cache is cleared on any update to the knowledge base
//!   (store-epoch tracking);
//! * **eLinda decomposer** ([`decomposer`]) — recognizes the
//!   property-expansion query shape on the SPARQL AST and answers it from
//!   the store's indexes instead of the naive nested aggregation,
//!   "for *all* property expansion queries … for subclasses of
//!   owl:Thing";
//! * **incremental evaluation** ([`incremental`]) — computes a chart on
//!   the first `N` triples, then the next `N`, aggregating partial
//!   results "in the frontend", for `k` steps or until complete.
//!
//! [`router`] wires them together in front of the direct executor
//! ([`direct`], the stand-in for the Virtuoso endpoint), and [`remote`]
//! is the *compatibility mode*: a simulated remote HTTP/JSON endpoint
//! where no preprocessing is possible and only incremental evaluation
//! helps. [`json`] implements the SPARQL-JSON results wire format the
//! remote mode speaks.

pub mod cache;
pub mod decomposer;
pub mod direct;
pub mod engine;
pub mod fabric;
pub mod fault;
pub mod hvs;
pub mod incremental;
pub mod json;
pub mod metrics;
pub mod novelty;
pub mod parallel;
pub mod remote;
pub mod resilience;
pub mod router;
pub mod trace;
pub mod update_log;

pub use cache::{normalize_query_text, CacheConfig, CacheStats, ResultCache};
pub use decomposer::{recognize_property_expansion, PropertyExpansionQuery};
pub use direct::DirectEndpoint;
pub use engine::{QueryContext, QueryEngine, QueryOutcome, ServeError, ServedBy};
pub use fabric::{
    FabricConfig, FabricCoordinator, FabricStats, ShardClient, ShardClientStats, ShardEvaluator,
    ShardPartial,
};
pub use fault::{FaultInjector, FaultKind, FaultPlan};
pub use hvs::{HeavyQueryStore, HvsConfig, HvsStats, StaleEntry};
pub use incremental::{IncrementalConfig, IncrementalPropertyChart, PartialChart};
pub use metrics::{LatencySummary, MeteredEndpoint};
pub use novelty::{ApplyOutcome, CompactionReport, NoveltyConfig, NoveltyStats, NoveltyStore};
pub use parallel::{ParallelReport, ParallelStats, Parallelism};
pub use remote::{RemoteConfig, RemoteEndpoint, WireSolutions, WireValue};
pub use resilience::{
    Admission, BreakerConfig, BreakerState, BreakerStats, CircuitBreaker, Deadline,
    ResilienceConfig, ResilienceStats, ResilientEndpoint, RetryPolicy,
};
pub use router::{DecomposerMode, ElindaEndpoint, EndpointConfig, ExplainReport};
pub use trace::{FinishedTrace, SpanRecord, StageStats, TraceCtx, TraceRing};
pub use update_log::{decode_update, encode_update};
