//! The multi-process shard fabric: a scatter-gather coordinator over N
//! real `elinda-serve` shard processes speaking HTTP over real TCP.
//!
//! [`crate::parallel`] already decomposes the heavy charting
//! aggregations into *partial per shard* + *keyed-sum merge* + *canonical
//! finisher*, and [`crate::remote`] already speaks the SPARQL-JSON wire
//! — this module promotes both to process granularity:
//!
//! * a **shard process** ([`ShardEvaluator`]) loads the full dataset
//!   deterministically, partitions it with the same subject hash as the
//!   in-process [`ShardedTripleStore`] (so every partitioning invariant
//!   carries over verbatim), and serves partial aggregates for its own
//!   partition over `POST /shard/eval`;
//! * a **coordinator process** ([`FabricCoordinator`]) recognizes chart
//!   queries, scatters them to every shard over pooled keep-alive TCP
//!   connections ([`ShardClient`]), gathers the partials, and reuses the
//!   existing [`merge_outgoing_partials`] / [`merge_incoming_partials`]
//!   keyed sums plus the [`property_agg_solutions`] canonical finisher —
//!   so the merged result is **byte-identical** to single-process
//!   serving (the cross-process differential suite in
//!   `tests/shard_fabric.rs` asserts exactly this).
//!
//! **Wire subtlety.** Partials travel keyed by term *text* (IRIs), never
//! by `TermId`: term ids are per-process interner artifacts, and two
//! processes that interned the same data in different orders would
//! disagree on them. The coordinator resolves each IRI against its own
//! interner before merging; a term the coordinator has never interned
//! means the shard is serving a different dataset, which is reported as
//! a transient fault (and degrades) rather than silently miscounted.
//! Each partial also carries the shard's identity and dataset size, and
//! the coordinator cross-checks both against the static shard map.
//!
//! **Failure semantics.** Each shard connection owns its own
//! [`CircuitBreaker`] and clamps socket timeouts to the request
//! [`Deadline`]. Any shard failure fails the whole scatter — partial
//! coverage is never served as if it were complete — and the error is
//! typed so the [`crate::resilience::ResilientEndpoint`] ladder above
//! can take its "partial coverage → stale / local fallback" rung.
//! Deterministic chaos testing reuses [`FaultInjector`]: an injector
//! attached to the coordinator applies its fault profile to the *real*
//! shard connections (refused sends, stalls, corrupted bodies).

use crate::decomposer::{recognize_property_expansion, ExpansionDirection, PropertyExpansionQuery};
use crate::engine::{QueryContext, QueryEngine, QueryOutcome, ServeError, ServedBy};
use crate::fault::{FaultInjector, FaultKind};
use crate::json::{escape_json, parse_json, Json};
use crate::parallel::{
    merge_incoming_partials, merge_outgoing_partials, property_agg_solutions,
    property_partial_incoming, property_partial_outgoing,
};
use crate::resilience::{Admission, BreakerConfig, CircuitBreaker, Deadline};
use elinda_rdf::fx::FxHashMap;
use elinda_rdf::{Term, TermId};
use elinda_sparql::parse_query;
use elinda_store::{ClassHierarchy, ShardedTripleStore, TripleStore};
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Shard side: partial-aggregate evaluation for one subject-hash partition
// ---------------------------------------------------------------------------

/// Shard-side evaluator behind `POST /shard/eval`: answers recognized
/// chart queries with a partial aggregate over this process's partition.
///
/// The process loads the *full* dataset through the ordinary bootstrap
/// (deterministic datagen, `--load`, or `--store-dir`) and partitions it
/// in memory with [`ShardedTripleStore::build`] — reusing the exact
/// subject hash the in-process parallel evaluator shards by. Evaluating
/// over `shard(shard_id)` only is therefore equivalent to one slot of
/// the in-process fan-out, and the global instance set needed by
/// incoming expansions (whose edges cross partitions) is derived locally
/// from the full class hierarchy instead of being shipped over the wire.
pub struct ShardEvaluator {
    store: Arc<TripleStore>,
    sharded: ShardedTripleStore,
    hierarchy: ClassHierarchy,
    shard_id: usize,
    num_shards: usize,
    partials: AtomicU64,
    rejects: AtomicU64,
}

impl ShardEvaluator {
    /// Build the evaluator for partition `shard_id` of `num_shards`.
    pub fn new(
        store: Arc<TripleStore>,
        shard_id: usize,
        num_shards: usize,
    ) -> Result<ShardEvaluator, String> {
        if num_shards == 0 {
            return Err("the shard map must name at least one shard".into());
        }
        if shard_id >= num_shards {
            return Err(format!(
                "shard id {shard_id} is out of range for a map of {num_shards} shards"
            ));
        }
        let sharded = ShardedTripleStore::build(&store, num_shards);
        let hierarchy = ClassHierarchy::build(&store);
        Ok(ShardEvaluator {
            store,
            sharded,
            hierarchy,
            shard_id,
            num_shards,
            partials: AtomicU64::new(0),
            rejects: AtomicU64::new(0),
        })
    }

    /// This process's partition index.
    pub fn shard_id(&self) -> usize {
        self.shard_id
    }

    /// Total shards in the static map.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Triples in this process's partition.
    pub fn partition_len(&self) -> usize {
        self.sharded.shard(self.shard_id).len()
    }

    /// Partial aggregates served so far.
    pub fn partials_served(&self) -> u64 {
        self.partials.load(Ordering::Relaxed)
    }

    /// Requests rejected as not-a-recognized-chart-query.
    pub fn rejects(&self) -> u64 {
        self.rejects.load(Ordering::Relaxed)
    }

    /// Evaluate a recognized chart query into a partial-aggregate JSON
    /// body; anything unrecognized is [`ServeError::Malformed`] — the
    /// internal route carries decomposed chart queries only.
    pub fn eval(&self, query: &str) -> Result<String, ServeError> {
        let parsed = parse_query(query).map_err(|e| {
            self.rejects.fetch_add(1, Ordering::Relaxed);
            ServeError::Malformed(format!("shard/eval takes chart queries only: {e}"))
        })?;
        let Some(rec) = recognize_property_expansion(&parsed) else {
            self.rejects.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Malformed(
                "shard/eval takes recognized property-expansion chart queries only".into(),
            ));
        };
        let instances = match self.store.interner().get(&rec.class) {
            Some(class) => self.hierarchy.instances(&self.store, class),
            None => Vec::new(),
        };
        let shard = self.sharded.shard(self.shard_id);
        let body = match rec.direction {
            ExpansionDirection::Outgoing => {
                let partial =
                    property_partial_outgoing(shard, self.shard_id, self.num_shards, &instances);
                let mut rows = partial
                    .into_iter()
                    .map(|(p, (count, sum))| Ok((self.iri_text(p)?, count, sum)))
                    .collect::<Result<Vec<(String, i64, i64)>, ServeError>>()?;
                rows.sort();
                self.envelope("outgoing", &rows, |out, (iri, count, sum)| {
                    out.push_str("[\"");
                    escape_json(out, iri);
                    out.push_str(&format!("\",{count},{sum}]"));
                })
            }
            ExpansionDirection::Incoming => {
                let partial = property_partial_incoming(shard, &instances);
                let mut rows = partial
                    .into_iter()
                    .map(|((o, p), count)| Ok((self.iri_text(o)?, self.iri_text(p)?, count)))
                    .collect::<Result<Vec<(String, String, i64)>, ServeError>>()?;
                rows.sort();
                self.envelope("incoming", &rows, |out, (obj, prop, count)| {
                    out.push_str("[\"");
                    escape_json(out, obj);
                    out.push_str("\",\"");
                    escape_json(out, prop);
                    out.push_str(&format!("\",{count}]"));
                })
            }
        };
        self.partials.fetch_add(1, Ordering::Relaxed);
        Ok(body)
    }

    /// The partial-aggregate envelope: shard identity and dataset size
    /// up front (the coordinator cross-checks both), then the rows,
    /// pre-sorted by key text so bodies are deterministic.
    fn envelope<R>(
        &self,
        direction: &str,
        rows: &[R],
        encode_row: impl Fn(&mut String, &R),
    ) -> String {
        let mut out = String::with_capacity(64 + rows.len() * 48);
        out.push_str(&format!(
            "{{\"fabric\":1,\"shard\":{},\"of\":{},\"triples\":{},\"direction\":\"{direction}\",\"rows\":[",
            self.shard_id,
            self.num_shards,
            self.store.len(),
        ));
        for (i, row) in rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            encode_row(&mut out, row);
        }
        out.push_str("]}");
        out
    }

    /// Aggregation keys must be IRIs to survive the text-keyed wire; a
    /// non-IRI key would break a chart-shape invariant.
    fn iri_text(&self, id: TermId) -> Result<String, ServeError> {
        self.store
            .resolve(id)
            .as_iri()
            .map(str::to_string)
            .ok_or_else(|| {
                ServeError::Transient("non-IRI aggregation key in a shard partial".into())
            })
    }
}

// ---------------------------------------------------------------------------
// Wire partials (text-keyed; decoded coordinator-side)
// ---------------------------------------------------------------------------

/// One shard's gathered partial, still keyed by term text.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardPartial {
    /// `property IRI → (entity count, triple count)` rows.
    Outgoing(Vec<(String, i64, i64)>),
    /// `(object IRI, property IRI) → triple count` rows — still pair-
    /// keyed, because incoming edges of one object span shards and may
    /// only collapse to per-property entity counts *after* the merge.
    Incoming(Vec<(String, String, i64)>),
}

/// Decode and validate a partial-aggregate body claimed to come from
/// shard `expect_shard` of `expect_of`, also returning the shard's
/// reported dataset size for the coordinator's cross-check.
///
/// This is deliberately *not* the generic
/// [`crate::json::decode_solutions`]: that decoder degrades terms the
/// local store never interned into plain strings, which would silently
/// break canonical ordering. Unknown or malformed structure here is a
/// typed transient error, never a wrong answer.
fn decode_partial(
    body: &str,
    expect_shard: usize,
    expect_of: usize,
) -> Result<(ShardPartial, u64), ServeError> {
    let bad = |msg: &str| ServeError::Transient(format!("malformed shard partial: {msg}"));
    let json = parse_json(body).map_err(|e| bad(&e.to_string()))?;
    let num = |j: &Json, what: &str| -> Result<i64, ServeError> {
        match j {
            Json::Number(n) if n.fract() == 0.0 => Ok(*n as i64),
            _ => Err(bad(&format!("non-integer {what}"))),
        }
    };
    match json.get("fabric") {
        Some(Json::Number(n)) if *n == 1.0 => {}
        _ => return Err(bad("missing fabric tag")),
    }
    let shard = num(
        json.get("shard").ok_or_else(|| bad("missing shard"))?,
        "shard",
    )?;
    let of = num(json.get("of").ok_or_else(|| bad("missing of"))?, "of")?;
    if shard != expect_shard as i64 || of != expect_of as i64 {
        return Err(ServeError::Transient(format!(
            "shard map mismatch: got shard {shard} of {of}, expected {expect_shard} of {expect_of}"
        )));
    }
    let triples = num(
        json.get("triples").ok_or_else(|| bad("missing triples"))?,
        "triples",
    )?;
    let direction = json
        .get("direction")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing direction"))?
        .to_string();
    let rows = json
        .get("rows")
        .and_then(Json::as_array)
        .ok_or_else(|| bad("missing rows"))?;
    let text = |j: &Json| -> Result<String, ServeError> {
        j.as_str()
            .map(str::to_string)
            .ok_or_else(|| bad("non-string key"))
    };
    let partial = match direction.as_str() {
        "outgoing" => ShardPartial::Outgoing(
            rows.iter()
                .map(|row| {
                    let row = row.as_array().ok_or_else(|| bad("non-array row"))?;
                    let [iri, count, sum] = row else {
                        return Err(bad("outgoing row arity"));
                    };
                    Ok((text(iri)?, num(count, "count")?, num(sum, "sum")?))
                })
                .collect::<Result<_, _>>()?,
        ),
        "incoming" => ShardPartial::Incoming(
            rows.iter()
                .map(|row| {
                    let row = row.as_array().ok_or_else(|| bad("non-array row"))?;
                    let [obj, prop, count] = row else {
                        return Err(bad("incoming row arity"));
                    };
                    Ok((text(obj)?, text(prop)?, num(count, "count")?))
                })
                .collect::<Result<_, _>>()?,
        ),
        other => return Err(bad(&format!("unknown direction `{other}`"))),
    };
    Ok((partial, triples as u64))
}

// ---------------------------------------------------------------------------
// Coordinator side: pooled keep-alive shard connections
// ---------------------------------------------------------------------------

/// Fabric tuning: the static shard map plus per-connection policies.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Shard base addresses (`host:port`), in shard-id order — entry
    /// `i` must be the process serving partition `i` of `shards.len()`.
    pub shards: Vec<String>,
    /// TCP connect budget per dial (clamped to the request deadline).
    pub connect_timeout: Duration,
    /// Socket read/write budget per shard request when the request
    /// deadline is unbounded; a bounded deadline clamps below this.
    pub request_timeout: Duration,
    /// Per-shard circuit-breaker tuning (each shard connection gets its
    /// own breaker, so one dead shard cannot open the others').
    pub breaker: BreakerConfig,
}

impl FabricConfig {
    /// A config for the given shard map with default timeouts.
    pub fn new(shards: Vec<String>) -> FabricConfig {
        FabricConfig {
            shards,
            connect_timeout: Duration::from_millis(1000),
            request_timeout: Duration::from_secs(5),
            breaker: BreakerConfig::default(),
        }
    }
}

/// Per-shard wire counters (monotonic, exported as
/// `elinda_fabric_shard_*` metrics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardClientStats {
    /// Partial-aggregate requests attempted against this shard.
    pub requests: u64,
    /// Requests that ended in a typed failure.
    pub failures: u64,
    /// Stale pooled connections replaced by a fresh dial mid-request.
    pub reconnects: u64,
    /// Requests rejected locally by the shard's open breaker.
    pub breaker_rejected: u64,
}

/// How many idle keep-alive connections each shard client retains.
const POOL_CAP: usize = 8;

/// A pooled keep-alive HTTP client for one shard process, with its own
/// circuit breaker, deadline-clamped socket timeouts, and (for chaos
/// tests) an optional [`FaultInjector`] applied to the real connection.
pub struct ShardClient {
    addr: String,
    index: usize,
    fleet: usize,
    expect_triples: u64,
    connect_timeout: Duration,
    request_timeout: Duration,
    breaker: CircuitBreaker,
    pool: Mutex<Vec<TcpStream>>,
    fault: Option<Arc<FaultInjector>>,
    requests: AtomicU64,
    failures: AtomicU64,
    reconnects: AtomicU64,
    breaker_rejected: AtomicU64,
}

impl ShardClient {
    /// A client for shard `index` of `fleet` at `addr`, expecting the
    /// shard to hold a dataset of `expect_triples` triples.
    pub fn new(
        addr: String,
        index: usize,
        fleet: usize,
        expect_triples: u64,
        config: &FabricConfig,
    ) -> ShardClient {
        ShardClient {
            addr,
            index,
            fleet,
            expect_triples,
            connect_timeout: config.connect_timeout,
            request_timeout: config.request_timeout,
            breaker: CircuitBreaker::new(config.breaker),
            pool: Mutex::new(Vec::new()),
            fault: None,
            requests: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            breaker_rejected: AtomicU64::new(0),
        }
    }

    /// The shard's address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// This connection's circuit breaker.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Snapshot of the wire counters.
    pub fn stats(&self) -> ShardClientStats {
        ShardClientStats {
            requests: self.requests.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            breaker_rejected: self.breaker_rejected.load(Ordering::Relaxed),
        }
    }

    /// Attach a deterministic fault injector: its profile is applied to
    /// this client's *real* TCP exchanges (refused before the send,
    /// stalled into a timeout, body corrupted after the receive).
    pub fn set_fault_injector(&mut self, injector: Arc<FaultInjector>) {
        self.fault = Some(injector);
    }

    /// Fetch this shard's partial for `query` under `deadline`.
    pub fn eval(&self, query: &str, deadline: Deadline) -> Result<ShardPartial, ServeError> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        match self.breaker.admit() {
            Admission::Rejected => {
                self.breaker_rejected.fetch_add(1, Ordering::Relaxed);
                self.failures.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Unavailable(format!(
                    "shard {} breaker open",
                    self.addr
                )));
            }
            Admission::Allowed | Admission::Probe => {}
        }
        match self.try_eval(query, deadline) {
            Ok(partial) => {
                self.breaker.on_success();
                Ok(partial)
            }
            Err(e) => {
                self.failures.fetch_add(1, Ordering::Relaxed);
                // The breaker tracks shard health: wire faults, shard-
                // side overload, and timeouts count; a Malformed answer
                // means the coordinator's own query shape was at fault.
                if !matches!(e, ServeError::Malformed(_) | ServeError::Query(_)) {
                    self.breaker.on_failure();
                }
                Err(e)
            }
        }
    }

    fn try_eval(&self, query: &str, deadline: Deadline) -> Result<ShardPartial, ServeError> {
        // Deterministic chaos: apply the injector's scheduled fault to
        // this real exchange, mirroring the simulated-wire semantics of
        // the remote client fault for fault.
        let mut corrupt_body = false;
        if let Some(injector) = self.fault.as_ref() {
            match injector.next_fault() {
                Some(FaultKind::ConnectionError) => {
                    return Err(ServeError::Transient(format!(
                        "shard {}: injected connection error",
                        self.addr
                    )));
                }
                Some(FaultKind::Timeout) => {
                    std::thread::sleep(deadline.clamp(injector.plan().stall));
                    return Err(if deadline.is_expired() {
                        ServeError::DeadlineExceeded
                    } else {
                        ServeError::Transient(format!("shard {}: injected timeout", self.addr))
                    });
                }
                Some(FaultKind::LatencySpike) => {
                    std::thread::sleep(deadline.clamp(injector.plan().spike_latency));
                }
                Some(FaultKind::MalformedJson) => corrupt_body = true,
                None => {}
            }
        }
        deadline.check()?;
        let request = request_bytes(query);
        let (status, mut body) = self.exchange(&request, deadline)?;
        if corrupt_body {
            body.truncate(body.len() / 2);
        }
        match status {
            200 => {
                let (partial, triples) = decode_partial(&body, self.index, self.fleet)?;
                if triples != self.expect_triples {
                    return Err(ServeError::Transient(format!(
                        "dataset mismatch: shard {} holds {triples} triples, coordinator holds {}",
                        self.addr, self.expect_triples
                    )));
                }
                Ok(partial)
            }
            400 => Err(ServeError::Malformed(format!(
                "shard {} rejected the partial query: {}",
                self.addr,
                body.trim()
            ))),
            503 => Err(ServeError::Unavailable(format!(
                "shard {} unavailable: {}",
                self.addr,
                body.trim()
            ))),
            504 => Err(ServeError::DeadlineExceeded),
            other => Err(ServeError::Transient(format!(
                "shard {} answered HTTP {other}",
                self.addr
            ))),
        }
    }

    /// One keep-alive HTTP exchange: reuse a pooled connection when one
    /// exists, falling back to a single fresh dial when the pooled
    /// socket turns out to be stale (closed by the shard between
    /// requests); a fresh connection's failure is final.
    fn exchange(&self, request: &[u8], deadline: Deadline) -> Result<(u16, String), ServeError> {
        let pooled = self.pool.lock().pop();
        let reused = pooled.is_some();
        let stream = match pooled {
            Some(stream) => stream,
            None => self.connect(deadline)?,
        };
        match self.roundtrip(stream, request, deadline) {
            Ok(ok) => Ok(ok),
            Err(_) if reused => {
                // The pooled socket was stale; one fresh dial decides.
                self.reconnects.fetch_add(1, Ordering::Relaxed);
                deadline.check()?;
                let fresh = self.connect(deadline)?;
                self.roundtrip(fresh, request, deadline)
            }
            Err(e) => Err(e),
        }
    }

    fn connect(&self, deadline: Deadline) -> Result<TcpStream, ServeError> {
        let budget = deadline.clamp(self.connect_timeout);
        if budget.is_zero() {
            return Err(ServeError::DeadlineExceeded);
        }
        let addr = self
            .addr
            .parse()
            .map_err(|e| ServeError::Transient(format!("shard {}: bad address: {e}", self.addr)))?;
        TcpStream::connect_timeout(&addr, budget).map_err(|e| self.wire_error(&e, deadline))
    }

    /// Write the request and read one `Content-Length`-framed response
    /// off `stream`; a kept-alive connection goes back to the pool.
    fn roundtrip(
        &self,
        mut stream: TcpStream,
        request: &[u8],
        deadline: Deadline,
    ) -> Result<(u16, String), ServeError> {
        let budget = deadline.clamp(self.request_timeout);
        if budget.is_zero() {
            return Err(ServeError::DeadlineExceeded);
        }
        let io = (|| {
            stream.set_write_timeout(Some(budget))?;
            stream.set_read_timeout(Some(budget))?;
            stream.write_all(request)?;
            read_response(&mut stream)
        })();
        match io {
            Ok((status, body, keep_alive)) => {
                if keep_alive {
                    let mut pool = self.pool.lock();
                    if pool.len() < POOL_CAP {
                        pool.push(stream);
                    }
                }
                Ok((status, body))
            }
            Err(e) => Err(self.wire_error(&e, deadline)),
        }
    }

    /// Classify an I/O failure: an expired deadline owns every error
    /// raced against it; everything else is transient wire trouble.
    fn wire_error(&self, e: &std::io::Error, deadline: Deadline) -> ServeError {
        if deadline.is_expired() {
            ServeError::DeadlineExceeded
        } else {
            ServeError::Transient(format!("shard {}: {e}", self.addr))
        }
    }
}

/// The `POST /shard/eval` request bytes for `query`.
fn request_bytes(query: &str) -> Vec<u8> {
    format!(
        "POST /shard/eval HTTP/1.1\r\nHost: fabric\r\nContent-Type: application/sparql-query\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{query}",
        query.len()
    )
    .into_bytes()
}

/// Read one HTTP/1.1 response: status, `Content-Length`-framed body,
/// and whether the server will keep the connection alive.
fn read_response(stream: &mut TcpStream) -> std::io::Result<(u16, String, bool)> {
    use std::io::{Error, ErrorKind};
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut scratch = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > 64 * 1024 {
            return Err(Error::new(
                ErrorKind::InvalidData,
                "response headers too large",
            ));
        }
        let n = stream.read(&mut scratch)?;
        if n == 0 {
            return Err(Error::new(
                ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        buf.extend_from_slice(&scratch[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| Error::new(ErrorKind::InvalidData, "bad status line"))?;
    let mut content_length: Option<usize> = None;
    let mut keep_alive = true;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse().ok();
        } else if name.eq_ignore_ascii_case("connection") && value.eq_ignore_ascii_case("close") {
            keep_alive = false;
        }
    }
    let len = content_length
        .ok_or_else(|| Error::new(ErrorKind::InvalidData, "response without Content-Length"))?;
    let body_start = header_end + 4;
    let mut body = buf[body_start.min(buf.len())..].to_vec();
    while body.len() < len {
        let n = stream.read(&mut scratch)?;
        if n == 0 {
            return Err(Error::new(
                ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        body.extend_from_slice(&scratch[..n]);
    }
    body.truncate(len);
    Ok((
        status,
        String::from_utf8_lossy(&body).into_owned(),
        keep_alive,
    ))
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

// ---------------------------------------------------------------------------
// The coordinator engine
// ---------------------------------------------------------------------------

/// Coordinator-level counters, exported as `elinda_fabric_*` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Chart queries scattered across the fleet.
    pub scattered: u64,
    /// Scatters whose every partial gathered and merged cleanly.
    pub gathered: u64,
    /// Scatters that failed (at least one shard) and were handed to the
    /// degradation ladder above.
    pub gather_failures: u64,
    /// Queries delegated to the local engine (not chart-shaped).
    pub local: u64,
}

/// The scatter-gather coordinator: a [`QueryEngine`] that answers
/// recognized chart queries by fanning them across the shard fleet and
/// merging the text-keyed partials with the same keyed sums and
/// canonical finisher the in-process parallel evaluator uses —
/// byte-identical results — while delegating everything else to a local
/// engine over the same dataset (so every other router tier keeps its
/// exact bytes too).
pub struct FabricCoordinator {
    store: Arc<TripleStore>,
    clients: Vec<ShardClient>,
    local: Box<dyn QueryEngine>,
    scattered: AtomicU64,
    gathered: AtomicU64,
    gather_failures: AtomicU64,
    local_queries: AtomicU64,
}

impl FabricCoordinator {
    /// Build the coordinator over its full local copy of the dataset
    /// (used for term resolution, the canonical finisher, and the
    /// non-chart delegate).
    pub fn new(
        store: Arc<TripleStore>,
        config: FabricConfig,
        local: Box<dyn QueryEngine>,
    ) -> FabricCoordinator {
        let fleet = config.shards.len();
        let triples = store.len() as u64;
        let clients = config
            .shards
            .iter()
            .enumerate()
            .map(|(i, addr)| ShardClient::new(addr.clone(), i, fleet, triples, &config))
            .collect();
        FabricCoordinator {
            store,
            clients,
            local,
            scattered: AtomicU64::new(0),
            gathered: AtomicU64::new(0),
            gather_failures: AtomicU64::new(0),
            local_queries: AtomicU64::new(0),
        }
    }

    /// Attach one deterministic fault injector shared by every shard
    /// client (the schedule then orders faults across the whole fleet).
    pub fn with_fault_injector(mut self, injector: Arc<FaultInjector>) -> FabricCoordinator {
        for client in &mut self.clients {
            client.set_fault_injector(Arc::clone(&injector));
        }
        self
    }

    /// The per-shard clients, in shard-id order.
    pub fn clients(&self) -> &[ShardClient] {
        &self.clients
    }

    /// Fleet size.
    pub fn num_shards(&self) -> usize {
        self.clients.len()
    }

    /// Snapshot of the coordinator counters.
    pub fn stats(&self) -> FabricStats {
        FabricStats {
            scattered: self.scattered.load(Ordering::Relaxed),
            gathered: self.gathered.load(Ordering::Relaxed),
            gather_failures: self.gather_failures.load(Ordering::Relaxed),
            local: self.local_queries.load(Ordering::Relaxed),
        }
    }

    /// Scatter a recognized chart query to every shard, gather the
    /// text-keyed partials, resolve them against the local interner, and
    /// finish with the shared keyed-sum merge + canonical sort.
    fn scatter(
        &self,
        query: &str,
        rec: &PropertyExpansionQuery,
        ctx: &QueryContext,
    ) -> Result<QueryOutcome, ServeError> {
        let start = Instant::now();
        self.scattered.fetch_add(1, Ordering::Relaxed);
        let deadline = ctx.deadline;
        let mut span = ctx.trace.span("scatter");
        let results: Vec<Result<ShardPartial, ServeError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .clients
                .iter()
                .map(|client| scope.spawn(move || client.eval(query, deadline)))
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(ServeError::Transient("shard gather thread panicked".into()))
                    })
                })
                .collect()
        });
        if ctx.trace.is_enabled() {
            let failed = results.iter().filter(|r| r.is_err()).count();
            span.tag("shards", self.clients.len().to_string());
            span.tag(
                "outcome",
                if failed == 0 {
                    "ok".to_string()
                } else {
                    format!("{failed}_failed")
                },
            );
        }
        drop(span);
        let mut partials = Vec::with_capacity(results.len());
        let mut worst: Option<ServeError> = None;
        let rank = |e: &ServeError| match e {
            ServeError::DeadlineExceeded => 3,
            ServeError::Unavailable(_) => 2,
            _ => 1,
        };
        for result in results {
            match result {
                Ok(partial) => partials.push(partial),
                Err(e) => {
                    let replace = match &worst {
                        None => true,
                        Some(w) => rank(&e) > rank(w),
                    };
                    if replace {
                        worst = Some(e);
                    }
                }
            }
        }
        if let Some(e) = worst {
            // Partial coverage is never served as complete: the typed
            // error climbs to the resilience ladder, which serves a
            // stale or local-fallback answer instead.
            self.gather_failures.fetch_add(1, Ordering::Relaxed);
            return Err(e);
        }
        let solutions = self.merge(partials, rec)?;
        self.gathered.fetch_add(1, Ordering::Relaxed);
        Ok(QueryOutcome {
            solutions,
            elapsed: start.elapsed(),
            served_by: ServedBy::Fabric,
            shards_used: self.clients.len(),
            data_epoch: self.local.data_epoch(),
        })
    }

    /// Resolve text keys against the local interner and run the shared
    /// merge + finisher. A key this process never interned means the
    /// shard served a different dataset — a transient fault, never a
    /// silent miscount.
    fn merge(
        &self,
        partials: Vec<ShardPartial>,
        rec: &PropertyExpansionQuery,
    ) -> Result<elinda_sparql::Solutions, ServeError> {
        let resolve = |iri: &str| -> Result<TermId, ServeError> {
            self.store.interner().get(&Term::iri(iri)).ok_or_else(|| {
                ServeError::Transient(format!(
                    "shard partial names a term unknown to the coordinator: <{iri}>"
                ))
            })
        };
        let merged = match rec.direction {
            ExpansionDirection::Outgoing => {
                let maps = partials
                    .into_iter()
                    .map(|partial| {
                        let ShardPartial::Outgoing(rows) = partial else {
                            return Err(ServeError::Transient(
                                "shard answered the wrong expansion direction".into(),
                            ));
                        };
                        let mut map: FxHashMap<TermId, (i64, i64)> = FxHashMap::default();
                        for (iri, count, sum) in rows {
                            map.insert(resolve(&iri)?, (count, sum));
                        }
                        Ok(map)
                    })
                    .collect::<Result<Vec<_>, ServeError>>()?;
                merge_outgoing_partials(maps)
            }
            ExpansionDirection::Incoming => {
                let maps = partials
                    .into_iter()
                    .map(|partial| {
                        let ShardPartial::Incoming(rows) = partial else {
                            return Err(ServeError::Transient(
                                "shard answered the wrong expansion direction".into(),
                            ));
                        };
                        let mut map: FxHashMap<(TermId, TermId), i64> = FxHashMap::default();
                        for (obj, prop, count) in rows {
                            map.insert((resolve(&obj)?, resolve(&prop)?), count);
                        }
                        Ok(map)
                    })
                    .collect::<Result<Vec<_>, ServeError>>()?;
                merge_incoming_partials(maps)
            }
        };
        Ok(property_agg_solutions(merged, &rec.columns, &self.store))
    }
}

impl QueryEngine for FabricCoordinator {
    fn execute(&self, query: &str) -> Result<QueryOutcome, ServeError> {
        self.execute_with(query, &QueryContext::default())
    }

    fn execute_with(&self, query: &str, ctx: &QueryContext) -> Result<QueryOutcome, ServeError> {
        if let Ok(parsed) = parse_query(query) {
            if let Some(rec) = recognize_property_expansion(&parsed) {
                return self.scatter(query, &rec, ctx);
            }
        }
        // Not chart-shaped (or unparsable — the local engine owns the
        // error): serve locally so every other tier keeps its bytes.
        self.local_queries.fetch_add(1, Ordering::Relaxed);
        self.local.execute_with(query, ctx)
    }

    fn data_epoch(&self) -> u64 {
        self.local.data_epoch()
    }
}
