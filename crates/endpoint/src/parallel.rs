//! Intra-query parallel evaluation of the heavy charting aggregations.
//!
//! The Fig. 4 hot path — property expansions, subclass rollups, threshold
//! filters — is embarrassingly data-parallel over triple partitions:
//! every aggregation here decomposes into *map per shard* (a partial
//! aggregate over one [`Shard`] of a [`ShardedTripleStore`]) followed by
//! *merge partials* (keyed summation). This module provides:
//!
//! * [`Parallelism`] — the per-request core budget plumbed through
//!   `ElindaEndpoint` and `elinda-serve`, chosen so the server's worker
//!   pool and the intra-query pool compose without oversubscription;
//! * the sharded evaluators ([`execute_decomposed_sharded`],
//!   [`subclass_rollup_sharded`], [`object_rollup_sharded`]) and their
//!   independent sequential twins, which the differential test suite
//!   proves byte-identical on the SPARQL-JSON wire format;
//! * the partial/merge primitives themselves, public so the property
//!   tests can drive them with shuffled shard completion orders.
//!
//! **Merge determinism.** Partials are merged by keyed integer summation
//! (commutative and associative), and every result is finished by a
//! canonical sort with stable tie-breaking on IRI order
//! ([`canonicalize_rows`]). Parallel results are therefore byte-identical
//! to sequential ones on the wire, regardless of shard count, worker
//! count, or the order in which shards complete.

use crate::decomposer::{ExpansionDirection, PropertyExpansionQuery};
use crate::engine::ServeError;
use crate::resilience::Deadline;
use crate::trace::{TraceCtx, ROOT_SPAN};
use elinda_rdf::fx::FxHashMap;
use elinda_rdf::TermId;
use elinda_sparql::{Solutions, Value};
use elinda_store::{ClassHierarchy, Shard, ShardedTripleStore, TripleStore};
use parking_lot::Mutex;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Parallelism config
// ---------------------------------------------------------------------------

/// The intra-query parallelism budget.
///
/// `threads` is a *per-request core budget*: each heavy aggregation fans
/// its shard maps across at most this many workers. A server running `W`
/// worker threads on `C` cores should hand each request a budget of
/// `max(1, C / W)` (see [`Parallelism::budgeted`]) so that `W` concurrent
/// heavy queries saturate — but do not oversubscribe — the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Maximum worker threads per query (1 = sequential evaluation).
    pub threads: usize,
    /// Number of shards the store is partitioned into. More shards than
    /// threads gives the work-stealing loop slack to balance skewed
    /// partitions; shards = 1 disables sharding entirely.
    pub shards: usize,
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::sequential()
    }
}

impl Parallelism {
    /// Sequential evaluation: one thread, one shard.
    pub fn sequential() -> Self {
        Parallelism {
            threads: 1,
            shards: 1,
        }
    }

    /// A fixed budget of `threads` workers over `shards` shards (both
    /// clamped to at least 1).
    pub fn fixed(threads: usize, shards: usize) -> Self {
        Parallelism {
            threads: threads.max(1),
            shards: shards.max(1),
        }
    }

    /// The budget for one of `server_workers` concurrently-serving
    /// threads on this machine: `max(1, cores / server_workers)` workers
    /// over `shards` shards. With this split the server pool and the
    /// intra-query pools compose to at most `cores` runnable threads.
    pub fn budgeted(server_workers: usize, shards: usize) -> Self {
        let cores = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        Parallelism::fixed(cores / server_workers.max(1), shards)
    }

    /// True when this budget actually fans out (more than one thread and
    /// more than one shard).
    pub fn is_parallel(&self) -> bool {
        self.threads > 1 && self.shards > 1
    }
}

// ---------------------------------------------------------------------------
// The map-per-shard runner
// ---------------------------------------------------------------------------

/// Per-query parallel execution measurements, fed into the endpoint's
/// parallel metrics (`/metrics` per-shard timing and speedup gauge).
#[derive(Debug, Clone)]
pub struct ParallelReport {
    /// Busy time spent mapping each shard, by shard index.
    pub shard_busy: Vec<Duration>,
    /// Wall-clock time of the whole fan-out (map + merge).
    pub wall: Duration,
    /// Workers actually used.
    pub threads: usize,
}

impl ParallelReport {
    /// Total busy time across shards — what a sequential evaluation of
    /// the same maps would have cost.
    pub fn busy_total(&self) -> Duration {
        self.shard_busy.iter().sum()
    }

    /// Effective speedup: busy time over wall time. ~1.0 when sequential,
    /// approaching `threads` under perfect balance.
    pub fn speedup(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall <= 0.0 {
            1.0
        } else {
            self.busy_total().as_secs_f64() / wall
        }
    }
}

/// Cumulative parallel-execution statistics across the lifetime of an
/// endpoint — the source of the `/metrics` per-shard timing lines and
/// the parallel-speedup gauge.
#[derive(Debug, Clone, Default)]
pub struct ParallelStats {
    /// Queries answered by the sharded parallel path.
    pub queries: u64,
    /// Cumulative busy time per shard index.
    pub shard_busy: Vec<Duration>,
    /// Cumulative wall time of the parallel fan-outs.
    pub wall: Duration,
}

impl ParallelStats {
    /// Fold one query's report into the running totals.
    pub fn record(&mut self, report: &ParallelReport) {
        self.queries += 1;
        if self.shard_busy.len() < report.shard_busy.len() {
            self.shard_busy
                .resize(report.shard_busy.len(), Duration::ZERO);
        }
        for (slot, busy) in self.shard_busy.iter_mut().zip(&report.shard_busy) {
            *slot += *busy;
        }
        self.wall += report.wall;
    }

    /// Total busy time across shards — the sequential-equivalent cost.
    pub fn busy_total(&self) -> Duration {
        self.shard_busy.iter().sum()
    }

    /// Cumulative effective speedup: busy time over wall time (1.0 when
    /// nothing has run).
    pub fn speedup(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall <= 0.0 {
            1.0
        } else {
            self.busy_total().as_secs_f64() / wall
        }
    }
}

/// Map every shard through `map` using at most `threads` workers, and
/// return the partials **in shard-index order** (independent of
/// completion order) together with per-shard timings.
///
/// Work distribution is a shared atomic cursor: each worker claims the
/// next unmapped shard, so skewed shards self-balance as long as
/// `shards > threads`.
pub fn map_shards<P, F>(
    sharded: &ShardedTripleStore,
    threads: usize,
    map: F,
) -> (Vec<P>, ParallelReport)
where
    P: Send,
    F: Fn(usize, &Shard) -> P + Sync,
{
    try_map_shards(
        sharded,
        threads,
        Deadline::unbounded(),
        &TraceCtx::disabled(),
        ROOT_SPAN,
        map,
    )
    .expect("an unbounded deadline never expires")
}

/// [`map_shards`] under a [`Deadline`]: cooperative cancellation for the
/// parallel fan-out. Every worker re-checks the budget **before claiming
/// each shard** and stops claiming once it is spent, so an expiring
/// request returns (with [`ServeError::DeadlineExceeded`]) as soon as
/// the in-flight shard maps finish — bounded by one shard's map time,
/// not by the whole remaining fan-out.
///
/// When `trace` is sampled, the fan-out records a `fanout` span under
/// `parent` with one `shard/<i>` child per mapped shard; with tracing
/// disabled the extra cost is a handful of `Option` branches.
pub fn try_map_shards<P, F>(
    sharded: &ShardedTripleStore,
    threads: usize,
    deadline: Deadline,
    trace: &TraceCtx,
    parent: u32,
    map: F,
) -> Result<(Vec<P>, ParallelReport), ServeError>
where
    P: Send,
    F: Fn(usize, &Shard) -> P + Sync,
{
    let n = sharded.num_shards();
    let workers = threads.clamp(1, n);
    let mut fanout = trace.span_under(parent, "fanout");
    if trace.is_enabled() {
        fanout.tag("shards", n.to_string());
        fanout.tag("threads", workers.to_string());
    }
    let fanout_id = fanout.id();
    let start = Instant::now();
    let mut busy = vec![Duration::ZERO; n];
    let expired = AtomicBool::new(false);
    let partials: Vec<Option<P>> = if workers <= 1 {
        let mut out = Vec::with_capacity(n);
        for (i, slot) in busy.iter_mut().enumerate() {
            if deadline.is_expired() {
                expired.store(true, Ordering::Relaxed);
                break;
            }
            let span = trace
                .is_enabled()
                .then(|| trace.span_under(fanout_id, &format!("shard/{i}")));
            let t0 = Instant::now();
            out.push(Some(map(i, sharded.shard(i))));
            *slot = t0.elapsed();
            drop(span);
        }
        out.resize_with(n, || None);
        out
    } else {
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<(P, Duration)>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    if deadline.is_expired() {
                        expired.store(true, Ordering::Relaxed);
                        break;
                    }
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let span = trace
                        .is_enabled()
                        .then(|| trace.span_under(fanout_id, &format!("shard/{i}")));
                    let t0 = Instant::now();
                    let partial = map(i, sharded.shard(i));
                    *slots[i].lock() = Some((partial, t0.elapsed()));
                    drop(span);
                });
            }
        });
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.into_inner().map(|(partial, elapsed)| {
                    busy[i] = elapsed;
                    partial
                })
            })
            .collect()
    };
    if expired.load(Ordering::Relaxed) || partials.iter().any(Option::is_none) {
        fanout.tag("outcome", "deadline_exceeded");
        return Err(ServeError::DeadlineExceeded);
    }
    let report = ParallelReport {
        shard_busy: busy,
        wall: start.elapsed(),
        threads: workers,
    };
    Ok((partials.into_iter().flatten().collect(), report))
}

// ---------------------------------------------------------------------------
// Canonical result ordering
// ---------------------------------------------------------------------------

/// Sort solution rows canonically: by the resolved text of the first
/// column's term (IRI order), the stable tie-break that makes parallel
/// and sequential evaluations byte-identical on the wire. Rows whose
/// first column is not a term (there are none in the charting
/// aggregations) sort after all terms, by row debug order.
pub fn canonicalize_rows(solutions: &mut Solutions, store: &TripleStore) {
    solutions.rows.sort_by(|a, b| {
        let key = |row: &Vec<Option<Value>>| match row.first() {
            Some(Some(Value::Term(id))) => Some(store.resolve(*id).to_string()),
            _ => None,
        };
        match (key(a), key(b)) {
            (Some(x), Some(y)) => x.cmp(&y),
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => format!("{a:?}").cmp(&format!("{b:?}")),
        }
    });
}

/// Finish a `property → (entity count, triple count)` aggregate into a
/// canonically ordered [`Solutions`].
pub fn property_agg_solutions(
    agg: FxHashMap<TermId, (i64, i64)>,
    columns: &[String; 3],
    store: &TripleStore,
) -> Solutions {
    let rows = agg
        .into_iter()
        .map(|(p, (count, sum))| {
            vec![
                Some(Value::Term(p)),
                Some(Value::Int(count)),
                Some(Value::Int(sum)),
            ]
        })
        .collect();
    let mut solutions = Solutions {
        vars: columns.to_vec(),
        rows,
    };
    canonicalize_rows(&mut solutions, store);
    solutions
}

// ---------------------------------------------------------------------------
// Property expansion: partials and merges
// ---------------------------------------------------------------------------

/// Outgoing partial for one shard: `property → (entity count, triple
/// count)` over the instances whose subject hashes into this shard.
///
/// Subjects are colocated, so each per-shard count is already the final
/// count for its subjects; the merge is a plain keyed sum.
pub fn property_partial_outgoing(
    shard: &Shard,
    shard_index: usize,
    num_shards: usize,
    instances: &[TermId],
) -> FxHashMap<TermId, (i64, i64)> {
    let mut agg: FxHashMap<TermId, (i64, i64)> = FxHashMap::default();
    for &s in instances {
        if elinda_store::shard_of(s, num_shards) != shard_index {
            continue;
        }
        let range = shard.spo_range(s, None);
        let mut i = 0;
        while i < range.len() {
            let p = range[i].p;
            let run = range[i..].partition_point(|t| t.p == p);
            let e = agg.entry(p).or_default();
            e.0 += 1;
            e.1 += run as i64;
            i += run;
        }
    }
    agg
}

/// Merge outgoing partials (any order) by keyed summation.
pub fn merge_outgoing_partials(
    partials: impl IntoIterator<Item = FxHashMap<TermId, (i64, i64)>>,
) -> FxHashMap<TermId, (i64, i64)> {
    let mut merged: FxHashMap<TermId, (i64, i64)> = FxHashMap::default();
    for partial in partials {
        for (p, (count, sum)) in partial {
            let e = merged.entry(p).or_default();
            e.0 += count;
            e.1 += sum;
        }
    }
    merged
}

/// Incoming partial for one shard: `(object instance, property) → triple
/// count` over this shard's triples.
///
/// Incoming triples of an object are spread across shards (sharding is
/// by subject), so the per-shard partial must stay keyed by the
/// `(object, property)` pair; collapsing to per-property counts happens
/// only after the merge, in [`merge_incoming_partials`].
pub fn property_partial_incoming(
    shard: &Shard,
    instances: &[TermId],
) -> FxHashMap<(TermId, TermId), i64> {
    let mut agg: FxHashMap<(TermId, TermId), i64> = FxHashMap::default();
    let mut props: Vec<TermId> = Vec::new();
    for &o in instances {
        props.clear();
        props.extend(shard.osp_range(o, None).iter().map(|t| t.p));
        if props.is_empty() {
            continue;
        }
        props.sort_unstable();
        let mut i = 0;
        while i < props.len() {
            let p = props[i];
            let run = props[i..].partition_point(|&x| x == p);
            *agg.entry((o, p)).or_default() += run as i64;
            i += run;
        }
    }
    agg
}

/// Merge incoming partials (any order): sum triple counts per
/// `(object, property)` pair, then collapse to `property → (entity
/// count, triple count)` — each object counts once per property it
/// features, no matter how many shards its incoming triples landed in.
pub fn merge_incoming_partials(
    partials: impl IntoIterator<Item = FxHashMap<(TermId, TermId), i64>>,
) -> FxHashMap<TermId, (i64, i64)> {
    let mut pairs: FxHashMap<(TermId, TermId), i64> = FxHashMap::default();
    for partial in partials {
        for (key, count) in partial {
            *pairs.entry(key).or_default() += count;
        }
    }
    let mut merged: FxHashMap<TermId, (i64, i64)> = FxHashMap::default();
    for ((_, p), count) in pairs {
        let e = merged.entry(p).or_default();
        e.0 += 1;
        e.1 += count;
    }
    merged
}

/// Answer a recognized property-expansion query by fanning the shard maps
/// across the [`Parallelism`] budget and merging partials.
///
/// Byte-identical on the SPARQL-JSON wire format to
/// [`crate::decomposer::execute_decomposed`] for every shard and thread
/// count (the differential suite in `tests/parallel_equivalence.rs`
/// asserts exactly this).
pub fn execute_decomposed_sharded(
    store: &TripleStore,
    sharded: &ShardedTripleStore,
    hierarchy: &ClassHierarchy,
    q: &PropertyExpansionQuery,
    par: &Parallelism,
) -> (Solutions, ParallelReport) {
    try_execute_decomposed_sharded(
        store,
        sharded,
        hierarchy,
        q,
        par,
        Deadline::unbounded(),
        &TraceCtx::disabled(),
        ROOT_SPAN,
    )
    .expect("an unbounded deadline never expires")
}

/// [`execute_decomposed_sharded`] under a [`Deadline`] (cooperative
/// cancellation between shard maps), recording `fanout`/`shard/<i>` and
/// `merge` spans under `parent` when `trace` is sampled.
#[allow(clippy::too_many_arguments)]
pub fn try_execute_decomposed_sharded(
    store: &TripleStore,
    sharded: &ShardedTripleStore,
    hierarchy: &ClassHierarchy,
    q: &PropertyExpansionQuery,
    par: &Parallelism,
    deadline: Deadline,
    trace: &TraceCtx,
    parent: u32,
) -> Result<(Solutions, ParallelReport), ServeError> {
    let Some(class_id) = store.interner().get(&q.class) else {
        let empty = Solutions {
            vars: q.columns.to_vec(),
            rows: Vec::new(),
        };
        let report = ParallelReport {
            shard_busy: vec![Duration::ZERO; sharded.num_shards()],
            wall: Duration::ZERO,
            threads: 1,
        };
        return Ok((empty, report));
    };
    let instances = hierarchy.instances(store, class_id);
    let n = sharded.num_shards();
    let (agg, report) = match q.direction {
        ExpansionDirection::Outgoing => {
            let (partials, report) =
                try_map_shards(sharded, par.threads, deadline, trace, parent, |i, shard| {
                    property_partial_outgoing(shard, i, n, &instances)
                })?;
            let _merge = trace.span_under(parent, "merge");
            (merge_outgoing_partials(partials), report)
        }
        ExpansionDirection::Incoming => {
            let (partials, report) =
                try_map_shards(sharded, par.threads, deadline, trace, parent, |_, shard| {
                    property_partial_incoming(shard, &instances)
                })?;
            let _merge = trace.span_under(parent, "merge");
            (merge_incoming_partials(partials), report)
        }
    };
    Ok((property_agg_solutions(agg, &q.columns, store), report))
}

// ---------------------------------------------------------------------------
// Subclass rollup
// ---------------------------------------------------------------------------

/// Column names of the subclass-rollup result.
pub const SUBCLASS_ROLLUP_VARS: [&str; 2] = ["class", "count"];

pub(crate) fn subclass_rollup_solutions(
    counts: Vec<(TermId, i64)>,
    store: &TripleStore,
) -> Solutions {
    let rows = counts
        .into_iter()
        .map(|(c, n)| vec![Some(Value::Term(c)), Some(Value::Int(n))])
        .collect();
    let mut solutions = Solutions {
        vars: SUBCLASS_ROLLUP_VARS.iter().map(|v| v.to_string()).collect(),
        rows,
    };
    canonicalize_rows(&mut solutions, store);
    solutions
}

/// Sequential subclass rollup: for each direct subclass `τ` of `class`,
/// the number of instances of `class` that are also instances of `τ` —
/// the bar heights of the paper's subclass expansion, as a chart result.
pub fn subclass_rollup(
    store: &TripleStore,
    hierarchy: &ClassHierarchy,
    class: TermId,
) -> Solutions {
    let members = hierarchy.instances(store, class);
    let counts = hierarchy
        .direct_subclasses(class)
        .iter()
        .map(|&sub| {
            let sub_instances = hierarchy.instances(store, sub);
            (
                sub,
                sorted_intersection_len(&members, &sub_instances) as i64,
            )
        })
        .collect();
    subclass_rollup_solutions(counts, store)
}

/// Per-shard subclass-rollup partial: for each direct subclass, the size
/// of the member∩subclass-instance intersection restricted to subjects
/// living in this shard. Subjects are colocated, so per-shard counts sum
/// to the global counts.
pub fn subclass_rollup_partial(
    shard: &Shard,
    rdf_type: TermId,
    class: TermId,
    subclasses: &[TermId],
) -> Vec<i64> {
    let members: Vec<TermId> = dedup_subjects(shard.pos_range(rdf_type, Some(class)));
    subclasses
        .iter()
        .map(|&sub| {
            let subs = dedup_subjects(shard.pos_range(rdf_type, Some(sub)));
            sorted_intersection_len(&members, &subs) as i64
        })
        .collect()
}

/// Sharded subclass rollup; merges per-shard partials by index-wise sum.
pub fn subclass_rollup_sharded(
    store: &TripleStore,
    sharded: &ShardedTripleStore,
    hierarchy: &ClassHierarchy,
    class: TermId,
    par: &Parallelism,
) -> (Solutions, ParallelReport) {
    let subclasses: Vec<TermId> = hierarchy.direct_subclasses(class).to_vec();
    let Some(rdf_type) = store.lookup_iri(elinda_rdf::vocab::rdf::TYPE) else {
        let report = ParallelReport {
            shard_busy: vec![Duration::ZERO; sharded.num_shards()],
            wall: Duration::ZERO,
            threads: 1,
        };
        return (subclass_rollup_solutions(Vec::new(), store), report);
    };
    let (partials, report) = map_shards(sharded, par.threads, |_, shard| {
        subclass_rollup_partial(shard, rdf_type, class, &subclasses)
    });
    let mut totals = vec![0i64; subclasses.len()];
    for partial in partials {
        for (slot, v) in totals.iter_mut().zip(partial) {
            *slot += v;
        }
    }
    let counts = subclasses.into_iter().zip(totals).collect();
    (subclass_rollup_solutions(counts, store), report)
}

/// Length of the intersection of two sorted, deduplicated id slices.
pub(crate) fn sorted_intersection_len(a: &[TermId], b: &[TermId]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Distinct subjects of a POS range with fixed `(p, o)` — the range is
/// sorted by subject, so a linear dedup suffices.
fn dedup_subjects(range: &[elinda_rdf::Triple]) -> Vec<TermId> {
    let mut out: Vec<TermId> = range.iter().map(|t| t.s).collect();
    out.dedup();
    out
}

// ---------------------------------------------------------------------------
// Object rollup
// ---------------------------------------------------------------------------

/// Column names of the object-rollup result.
pub const OBJECT_ROLLUP_VARS: [&str; 2] = ["class", "count"];

pub(crate) fn object_rollup_solutions(
    agg: FxHashMap<TermId, i64>,
    store: &TripleStore,
) -> Solutions {
    let rows = agg
        .into_iter()
        .map(|(c, n)| vec![Some(Value::Term(c)), Some(Value::Int(n))])
        .collect();
    let mut solutions = Solutions {
        vars: OBJECT_ROLLUP_VARS.iter().map(|v| v.to_string()).collect(),
        rows,
    };
    canonicalize_rows(&mut solutions, store);
    solutions
}

/// Sequential object rollup: the nodes connected to instances of `class`
/// via `prop` (objects for [`ExpansionDirection::Outgoing`], subjects for
/// [`ExpansionDirection::Incoming`]), grouped by their classes, counting
/// distinct connected nodes per class — the paper's object expansion as
/// a chart result.
pub fn object_rollup(
    store: &TripleStore,
    hierarchy: &ClassHierarchy,
    class: TermId,
    prop: TermId,
    direction: ExpansionDirection,
) -> Solutions {
    let instances = hierarchy.instances(store, class);
    let mut connected: Vec<TermId> = Vec::new();
    for &s in &instances {
        match direction {
            ExpansionDirection::Outgoing => connected.extend(store.objects_of(s, prop)),
            ExpansionDirection::Incoming => connected.extend(store.subjects_with(prop, s)),
        }
    }
    connected.sort_unstable();
    connected.dedup();
    let mut agg: FxHashMap<TermId, i64> = FxHashMap::default();
    for &o in &connected {
        for c in hierarchy.classes_of(store, o) {
            *agg.entry(c).or_default() += 1;
        }
    }
    object_rollup_solutions(agg, store)
}

/// Gather phase partial: the connected nodes contributed by one shard
/// (outgoing: objects of this shard's instance subjects; incoming:
/// subjects of this shard pointing at any instance).
pub fn object_gather_partial(
    shard: &Shard,
    shard_index: usize,
    num_shards: usize,
    instances: &[TermId],
    prop: TermId,
    direction: ExpansionDirection,
) -> Vec<TermId> {
    let mut out = Vec::new();
    match direction {
        ExpansionDirection::Outgoing => {
            for &s in instances {
                if elinda_store::shard_of(s, num_shards) != shard_index {
                    continue;
                }
                out.extend(shard.spo_range(s, Some(prop)).iter().map(|t| t.o));
            }
        }
        ExpansionDirection::Incoming => {
            for &o in instances {
                out.extend(shard.pos_range(prop, Some(o)).iter().map(|t| t.s));
            }
        }
    }
    out
}

/// Classify phase partial: per-class distinct-node counts for the
/// connected nodes whose subject hash lands in this shard (a node's
/// `rdf:type` triples are colocated with its other outgoing triples).
pub fn object_classify_partial(
    shard: &Shard,
    shard_index: usize,
    num_shards: usize,
    connected: &[TermId],
    rdf_type: Option<TermId>,
) -> FxHashMap<TermId, i64> {
    let mut agg: FxHashMap<TermId, i64> = FxHashMap::default();
    let Some(ty) = rdf_type else {
        return agg;
    };
    let mut classes: Vec<TermId> = Vec::new();
    for &o in connected {
        if elinda_store::shard_of(o, num_shards) != shard_index {
            continue;
        }
        classes.clear();
        classes.extend(shard.spo_range(o, Some(ty)).iter().map(|t| t.o));
        classes.sort_unstable();
        classes.dedup();
        for &c in &classes {
            *agg.entry(c).or_default() += 1;
        }
    }
    agg
}

/// Sharded object rollup: gather connected nodes per shard, merge to a
/// distinct set, then classify per shard and merge by keyed sum.
pub fn object_rollup_sharded(
    store: &TripleStore,
    sharded: &ShardedTripleStore,
    hierarchy: &ClassHierarchy,
    class: TermId,
    prop: TermId,
    direction: ExpansionDirection,
    par: &Parallelism,
) -> (Solutions, ParallelReport) {
    let instances = hierarchy.instances(store, class);
    let n = sharded.num_shards();
    let (gathered, mut report) = map_shards(sharded, par.threads, |i, shard| {
        object_gather_partial(shard, i, n, &instances, prop, direction)
    });
    let mut connected: Vec<TermId> = gathered.into_iter().flatten().collect();
    connected.sort_unstable();
    connected.dedup();
    let rdf_type = store.lookup_iri(elinda_rdf::vocab::rdf::TYPE);
    let (partials, classify_report) = map_shards(sharded, par.threads, |i, shard| {
        object_classify_partial(shard, i, n, &connected, rdf_type)
    });
    let mut agg: FxHashMap<TermId, i64> = FxHashMap::default();
    for partial in partials {
        for (c, count) in partial {
            *agg.entry(c).or_default() += count;
        }
    }
    for (slot, extra) in report.shard_busy.iter_mut().zip(classify_report.shard_busy) {
        *slot += extra;
    }
    report.wall += classify_report.wall;
    (object_rollup_solutions(agg, store), report)
}

// ---------------------------------------------------------------------------
// Threshold filter
// ---------------------------------------------------------------------------

/// The threshold filter of the eLinda frontend: keep only the properties
/// whose entity count covers at least `threshold` (a fraction in
/// `[0, 1]`) of the `total` expanded instances. Applied to a merged
/// (canonically ordered) property-expansion result, so it preserves
/// byte-identity between sequential and parallel evaluations.
pub fn filter_by_coverage(solutions: &Solutions, total: usize, threshold: f64) -> Solutions {
    let rows = solutions
        .rows
        .iter()
        .filter(|row| match row.get(1) {
            Some(Some(Value::Int(count))) => (*count as f64) >= threshold * (total as f64),
            _ => false,
        })
        .cloned()
        .collect();
    Solutions {
        vars: solutions.vars.clone(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposer::{
        execute_decomposed, property_expansion_sparql, recognize_property_expansion,
    };
    use elinda_sparql::parse_query;

    fn store() -> TripleStore {
        TripleStore::from_turtle(
            r#"
            @prefix ex: <http://e/> .
            @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
            @prefix owl: <http://www.w3.org/2002/07/owl#> .
            ex:B rdfs:subClassOf ex:A . ex:C rdfs:subClassOf ex:A .
            ex:x a ex:A ; a ex:B ; ex:p ex:y ; ex:p ex:z ; ex:q ex:y .
            ex:y a ex:A ; a ex:C ; ex:p ex:z .
            ex:z a ex:A ; ex:r ex:x .
            ex:w ex:p ex:x ; ex:p ex:y .
            "#,
        )
        .unwrap()
    }

    fn id(s: &TripleStore, local: &str) -> TermId {
        s.lookup_iri(&format!("http://e/{local}")).unwrap()
    }

    fn recognized(class: &str, dir: ExpansionDirection) -> PropertyExpansionQuery {
        let text = property_expansion_sparql(class, dir);
        recognize_property_expansion(&parse_query(&text).unwrap()).unwrap()
    }

    #[test]
    fn parallelism_defaults_and_budget() {
        assert_eq!(Parallelism::default(), Parallelism::sequential());
        assert!(!Parallelism::sequential().is_parallel());
        assert!(Parallelism::fixed(4, 8).is_parallel());
        assert!(!Parallelism::fixed(4, 1).is_parallel());
        assert_eq!(Parallelism::fixed(0, 0), Parallelism::sequential());
        let b = Parallelism::budgeted(1_000_000, 8);
        assert_eq!(b.threads, 1); // budget floor is one thread
        assert_eq!(b.shards, 8);
    }

    #[test]
    fn map_shards_returns_partials_in_index_order() {
        let s = store();
        for threads in [1, 2, 4] {
            let sharded = ShardedTripleStore::build(&s, 7);
            let (partials, report) = map_shards(&sharded, threads, |i, shard| (i, shard.len()));
            assert_eq!(partials.len(), 7);
            for (i, (idx, len)) in partials.iter().enumerate() {
                assert_eq!(*idx, i);
                assert_eq!(*len, sharded.shard(i).len());
            }
            assert_eq!(report.shard_busy.len(), 7);
            assert!(report.threads >= 1);
        }
    }

    #[test]
    fn sharded_matches_sequential_both_directions() {
        let s = store();
        let h = ClassHierarchy::build(&s);
        for dir in [ExpansionDirection::Outgoing, ExpansionDirection::Incoming] {
            let q = recognized("http://e/A", dir);
            let sequential = execute_decomposed(&s, &h, &q);
            for shards in [1, 2, 7, 16] {
                for threads in [1, 2, 4] {
                    let sharded = ShardedTripleStore::build(&s, shards);
                    let (parallel, _) = execute_decomposed_sharded(
                        &s,
                        &sharded,
                        &h,
                        &q,
                        &Parallelism::fixed(threads, shards),
                    );
                    assert_eq!(parallel.vars, sequential.vars);
                    assert_eq!(parallel.rows, sequential.rows, "{dir:?} {shards} {threads}");
                }
            }
        }
    }

    #[test]
    fn unknown_class_is_empty_with_clean_report() {
        let s = store();
        let h = ClassHierarchy::build(&s);
        let sharded = ShardedTripleStore::build(&s, 4);
        let q = recognized("http://e/Nothing", ExpansionDirection::Outgoing);
        let (sol, report) =
            execute_decomposed_sharded(&s, &sharded, &h, &q, &Parallelism::fixed(2, 4));
        assert!(sol.is_empty());
        assert_eq!(report.shard_busy.len(), 4);
    }

    #[test]
    fn subclass_rollup_sharded_matches_sequential() {
        let s = store();
        let h = ClassHierarchy::build(&s);
        let a = id(&s, "A");
        let sequential = subclass_rollup(&s, &h, a);
        assert_eq!(sequential.rows.len(), 2); // B and C
        for shards in [1, 2, 7, 16] {
            let sharded = ShardedTripleStore::build(&s, shards);
            let (parallel, _) =
                subclass_rollup_sharded(&s, &sharded, &h, a, &Parallelism::fixed(2, shards));
            assert_eq!(parallel.rows, sequential.rows, "shards={shards}");
        }
    }

    #[test]
    fn object_rollup_sharded_matches_sequential() {
        let s = store();
        let h = ClassHierarchy::build(&s);
        let a = id(&s, "A");
        let p = id(&s, "p");
        for dir in [ExpansionDirection::Outgoing, ExpansionDirection::Incoming] {
            let sequential = object_rollup(&s, &h, a, p, dir);
            for shards in [1, 2, 7, 16] {
                let sharded = ShardedTripleStore::build(&s, shards);
                let (parallel, _) = object_rollup_sharded(
                    &s,
                    &sharded,
                    &h,
                    a,
                    p,
                    dir,
                    &Parallelism::fixed(2, shards),
                );
                assert_eq!(parallel.rows, sequential.rows, "{dir:?} shards={shards}");
            }
        }
    }

    #[test]
    fn coverage_filter_keeps_rows_at_or_above_threshold() {
        let s = store();
        let h = ClassHierarchy::build(&s);
        let q = recognized("http://e/A", ExpansionDirection::Outgoing);
        let full = execute_decomposed(&s, &h, &q);
        // 3 instances of A; ex:p covers 2 of them (x, y), ex:q and ex:r 1.
        let filtered = filter_by_coverage(&full, 3, 0.5);
        assert!(filtered.rows.len() < full.rows.len());
        assert!(filtered
            .rows
            .iter()
            .all(|r| matches!(r[1], Some(Value::Int(n)) if n >= 2)));
        // Zero threshold keeps everything.
        assert_eq!(
            filter_by_coverage(&full, 3, 0.0).rows.len(),
            full.rows.len()
        );
    }

    #[test]
    fn speedup_gauge_is_sane() {
        let report = ParallelReport {
            shard_busy: vec![Duration::from_millis(10); 4],
            wall: Duration::from_millis(20),
            threads: 2,
        };
        assert!((report.speedup() - 2.0).abs() < 1e-9);
        assert_eq!(report.busy_total(), Duration::from_millis(40));
        let degenerate = ParallelReport {
            shard_busy: vec![],
            wall: Duration::ZERO,
            threads: 1,
        };
        assert_eq!(degenerate.speedup(), 1.0);
    }
}
