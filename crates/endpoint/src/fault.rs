//! Deterministic fault injection for the remote compatibility mode.
//!
//! A misbehaving SPARQL backend fails in characteristic ways: latency
//! spikes, stalls that end in a timeout, transient connection errors,
//! malformed response bodies, and bursts where several consecutive
//! requests fail together. [`FaultPlan`] models all of them behind a
//! single seed, so a chaos test or a `loadgen --fault-profile` run is
//! **reproducible**: the fault assigned to the `n`-th request is a pure
//! function of `(seed, n)`, with burst state layered deterministically
//! on top.
//!
//! The same profiles apply beyond the simulated wire: a
//! [`FaultInjector`] attached to the shard fabric's
//! [`ShardClient`](crate::fabric::ShardClient) injects its faults into
//! *real* TCP shard connections — a connection error fails the exchange
//! before the send, a timeout stalls then fails within the deadline, and
//! a malformed-body fault corrupts the received partial.

use crate::resilience::splitmix64;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The failure modes a [`FaultPlan`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Answer normally, but `spike_latency` slower than the latency
    /// model alone.
    LatencySpike,
    /// Stall for `stall` (bounded by the caller's deadline) and then
    /// fail like a client-side timeout.
    Timeout,
    /// Fail immediately with a transient connection error.
    ConnectionError,
    /// Answer with a truncated SPARQL-JSON body that fails to decode.
    MalformedJson,
}

/// A seeded, deterministic fault schedule.
///
/// Rates are independent probabilities in `[0, 1]`, checked in the fixed
/// order connection → timeout → malformed → latency spike (at most one
/// fault per request). `burst_len > 1` makes every triggered fault
/// repeat for the following `burst_len - 1` requests as well — the
/// "error burst" shape real backends produce when a replica goes down.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed of the per-request draws.
    pub seed: u64,
    /// Probability of a transient connection error.
    pub connection_rate: f64,
    /// Probability of a stall-then-timeout.
    pub timeout_rate: f64,
    /// Probability of a malformed response body.
    pub malformed_rate: f64,
    /// Probability of a latency spike.
    pub spike_rate: f64,
    /// Extra latency charged on a spike.
    pub spike_latency: Duration,
    /// How long a timing-out request stalls before failing (clamped to
    /// the request deadline when one is set).
    pub stall: Duration,
    /// Number of consecutive requests a triggered fault repeats for.
    pub burst_len: u32,
}

impl FaultPlan {
    /// No faults at all.
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            connection_rate: 0.0,
            timeout_rate: 0.0,
            malformed_rate: 0.0,
            spike_rate: 0.0,
            spike_latency: Duration::ZERO,
            stall: Duration::ZERO,
            burst_len: 1,
        }
    }

    /// A mixed plan with `rate` total transient-fault probability,
    /// split evenly across connection errors, timeouts, and malformed
    /// bodies — the shape the chaos suite runs at `rate = 0.1`.
    pub fn transient(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            connection_rate: rate / 3.0,
            timeout_rate: rate / 3.0,
            malformed_rate: rate / 3.0,
            spike_rate: 0.0,
            spike_latency: Duration::ZERO,
            stall: Duration::from_millis(5),
            burst_len: 1,
        }
    }

    /// The fault (if any) scheduled for request number `n`, ignoring
    /// burst carry-over — a pure function of `(seed, n)`.
    pub fn fault_at(&self, n: u64) -> Option<FaultKind> {
        // One uniform draw in [0, 1); the rates partition the interval.
        let draw = (splitmix64(self.seed ^ n.wrapping_mul(0x9e37_79b9)) >> 11) as f64
            / (1u64 << 53) as f64;
        let mut edge = self.connection_rate;
        if draw < edge {
            return Some(FaultKind::ConnectionError);
        }
        edge += self.timeout_rate;
        if draw < edge {
            return Some(FaultKind::Timeout);
        }
        edge += self.malformed_rate;
        if draw < edge {
            return Some(FaultKind::MalformedJson);
        }
        edge += self.spike_rate;
        if draw < edge {
            return Some(FaultKind::LatencySpike);
        }
        None
    }
}

/// Shared, thread-safe fault scheduler: assigns each request the next
/// sequence number and resolves the plan (including burst carry-over)
/// into the fault to inject.
pub struct FaultInjector {
    plan: FaultPlan,
    next: AtomicU64,
    /// Burst carry-over: `(kind, remaining)` packed under a lock.
    burst: parking_lot::Mutex<Option<(FaultKind, u32)>>,
    injected: AtomicU64,
}

impl FaultInjector {
    /// An injector for the plan.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            next: AtomicU64::new(0),
            burst: parking_lot::Mutex::new(None),
            injected: AtomicU64::new(0),
        }
    }

    /// The plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Number of requests scheduled so far.
    pub fn requests(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Decide the fault for the next request.
    pub fn next_fault(&self) -> Option<FaultKind> {
        let n = self.next.fetch_add(1, Ordering::Relaxed);
        let fault = {
            let mut burst = self.burst.lock();
            match burst.take() {
                Some((kind, remaining)) => {
                    if remaining > 1 {
                        *burst = Some((kind, remaining - 1));
                    }
                    Some(kind)
                }
                None => {
                    let fresh = self.plan.fault_at(n);
                    if let Some(kind) = fresh {
                        if self.plan.burst_len > 1 {
                            *burst = Some((kind, self.plan.burst_len - 1));
                        }
                    }
                    fresh
                }
            }
        };
        if fault.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        fault
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            connection_rate: 0.1,
            timeout_rate: 0.1,
            malformed_rate: 0.1,
            spike_rate: 0.1,
            spike_latency: Duration::from_millis(1),
            stall: Duration::from_millis(1),
            burst_len: 1,
        }
    }

    #[test]
    fn schedule_is_deterministic() {
        let a: Vec<_> = (0..500).map(|n| mixed(42).fault_at(n)).collect();
        let b: Vec<_> = (0..500).map(|n| mixed(42).fault_at(n)).collect();
        assert_eq!(a, b);
        let c: Vec<_> = (0..500).map(|n| mixed(43).fault_at(n)).collect();
        assert_ne!(a, c, "different seeds give different schedules");
    }

    #[test]
    fn rates_are_approximately_respected() {
        let plan = FaultPlan::transient(7, 0.3);
        let n = 20_000u64;
        let faults = (0..n).filter(|&i| plan.fault_at(i).is_some()).count();
        let rate = faults as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "observed rate {rate}");
    }

    #[test]
    fn none_plan_never_faults() {
        let plan = FaultPlan::none(1);
        assert!((0..1000).all(|n| plan.fault_at(n).is_none()));
    }

    #[test]
    fn all_kinds_appear_in_a_mixed_plan() {
        let plan = mixed(3);
        let mut seen = std::collections::HashSet::new();
        for n in 0..2000 {
            if let Some(kind) = plan.fault_at(n) {
                seen.insert(format!("{kind:?}"));
            }
        }
        assert_eq!(seen.len(), 4, "{seen:?}");
    }

    #[test]
    fn injector_bursts_repeat_the_triggering_fault() {
        let mut plan = FaultPlan::none(0);
        plan.connection_rate = 0.2;
        plan.burst_len = 3;
        let injector = FaultInjector::new(plan.clone());
        let schedule: Vec<_> = (0..300).map(|_| injector.next_fault()).collect();
        // Wherever the underlying plan fires, the injected schedule must
        // show at least burst_len consecutive faults.
        let mut i = 0;
        let mut verified = 0;
        while i < schedule.len() {
            if schedule[i].is_some() {
                let run = schedule[i..].iter().take_while(|f| f.is_some()).count();
                assert!(run >= 3 || i + run == schedule.len(), "run {run} at {i}");
                i += run;
                verified += 1;
            } else {
                i += 1;
            }
        }
        assert!(verified > 0, "plan never fired in 300 requests");
        assert_eq!(injector.requests(), 300);
        assert!(injector.injected() > 0);
    }

    #[test]
    fn injector_sequence_is_replayable() {
        let a = FaultInjector::new(FaultPlan::transient(11, 0.5));
        let b = FaultInjector::new(FaultPlan::transient(11, 0.5));
        let sa: Vec<_> = (0..200).map(|_| a.next_fault()).collect();
        let sb: Vec<_> = (0..200).map(|_| b.next_fault()).collect();
        assert_eq!(sa, sb);
    }
}
