//! Deadline-aware fault tolerance for the query path.
//!
//! The paper's central requirement is *responsiveness*: every exploration
//! step should answer "in tens to hundreds of milliseconds", and the
//! remote compatibility mode explicitly accepts a backend eLinda cannot
//! control. This module gives the serving stack a failure story:
//!
//! * [`Deadline`] — a per-request time budget created at admission,
//!   propagated through the router into the parallel executor (shard
//!   workers check it cooperatively between partials) and the remote
//!   client;
//! * [`RetryPolicy`] — exponential backoff with decorrelated jitter,
//!   applied only to transient failures of idempotent reads, and always
//!   capped by the remaining deadline;
//! * [`CircuitBreaker`] — a per-backend closed → open → half-open state
//!   machine that sheds fast when the backend is down and probes with a
//!   single request before closing again;
//! * [`ResilientEndpoint`] — the wrapper composing all of the above
//!   around any [`QueryEngine`], with a graceful-degradation ladder: on
//!   an open breaker or an exhausted budget it serves the last known
//!   result from an epoch-tagged stale cache, or a (sequential, local)
//!   fallback engine, before giving up with an explicit timeout status.

use crate::engine::{QueryContext, QueryEngine, QueryOutcome, ServeError, ServedBy};
use crate::hvs::{HeavyQueryStore, HvsConfig};
use crate::trace::TraceCtx;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Deadline
// ---------------------------------------------------------------------------

/// A per-request time budget.
///
/// Created once at request admission and handed down the stack by value;
/// every layer that can take meaningful time checks it cooperatively.
/// [`Deadline::unbounded`] disables the budget (the pre-existing
/// behavior).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    expires: Option<Instant>,
}

impl Default for Deadline {
    fn default() -> Self {
        Deadline::unbounded()
    }
}

impl Deadline {
    /// No budget: checks never fire.
    pub fn unbounded() -> Self {
        Deadline { expires: None }
    }

    /// A budget of `limit` starting now.
    pub fn within(limit: Duration) -> Self {
        Deadline {
            expires: Some(Instant::now() + limit),
        }
    }

    /// A budget expiring at `at`.
    pub fn at(at: Instant) -> Self {
        Deadline { expires: Some(at) }
    }

    /// True when a budget is set at all.
    pub fn is_bounded(&self) -> bool {
        self.expires.is_some()
    }

    /// Time left, saturating at zero. `None` when unbounded.
    pub fn remaining(&self) -> Option<Duration> {
        self.expires
            .map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// True when the budget is spent.
    pub fn is_expired(&self) -> bool {
        matches!(self.remaining(), Some(d) if d.is_zero())
    }

    /// Guard: `Err(ServeError::DeadlineExceeded)` once the budget is
    /// spent.
    pub fn check(&self) -> Result<(), ServeError> {
        if self.is_expired() {
            Err(ServeError::DeadlineExceeded)
        } else {
            Ok(())
        }
    }

    /// Clamp a planned sleep (backoff, simulated latency) to the
    /// remaining budget.
    pub fn clamp(&self, d: Duration) -> Duration {
        match self.remaining() {
            Some(left) => d.min(left),
            None => d,
        }
    }
}

// ---------------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------------

/// Exponential backoff with decorrelated jitter, for transient failures
/// of idempotent reads (every SPARQL query in this system is a read).
///
/// The sleep for attempt `k` is drawn uniformly from
/// `[base, min(cap, 3 * previous_sleep))` — the "decorrelated jitter"
/// scheme — from a deterministic per-policy seed, so a seeded test run
/// replays byte-identically. Backoff is additionally capped by the
/// remaining [`Deadline`]: a retry never sleeps past the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retry attempts after the initial try (0 disables retry).
    pub max_retries: u32,
    /// Minimum backoff sleep.
    pub base: Duration,
    /// Maximum backoff sleep.
    pub cap: Duration,
    /// Seed for the jitter draws (deterministic replay).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::disabled()
    }
}

impl RetryPolicy {
    /// No retries at all.
    pub fn disabled() -> Self {
        RetryPolicy {
            max_retries: 0,
            base: Duration::ZERO,
            cap: Duration::ZERO,
            seed: 0,
        }
    }

    /// `max_retries` attempts with the given backoff window.
    pub fn new(max_retries: u32, base: Duration, cap: Duration) -> Self {
        RetryPolicy {
            max_retries,
            base,
            cap: cap.max(base),
            seed: 0x000e_11da_f0e1,
        }
    }

    /// Same policy, different jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The decorrelated-jitter sleep before retry `attempt` (1-based),
    /// given the previous sleep (use `base` for the first retry).
    pub fn backoff(&self, attempt: u32, previous: Duration) -> Duration {
        let lo = self.base;
        let hi = (previous * 3).clamp(lo, self.cap).max(lo);
        if hi <= lo {
            return lo;
        }
        let span = (hi - lo).as_nanos() as u64;
        let draw = splitmix64(self.seed ^ u64::from(attempt).rotate_left(17));
        lo + Duration::from_nanos(if span == 0 { 0 } else { draw % span })
    }
}

/// Splitmix64 — the deterministic bit mixer behind jitter and fault
/// draws.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive transient failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open before admitting one probe.
    pub open_cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            open_cooldown: Duration::from_millis(500),
        }
    }
}

/// The three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow; consecutive failures are counted.
    Closed,
    /// Requests are rejected without touching the backend.
    Open,
    /// One probe request is in flight; its outcome decides.
    HalfOpen,
}

/// Monotone transition counters (each only ever increases).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerStats {
    /// Closed/HalfOpen → Open transitions.
    pub opened: u64,
    /// Open → HalfOpen transitions (probe admitted).
    pub half_opened: u64,
    /// HalfOpen → Closed transitions (probe succeeded).
    pub closed: u64,
    /// Requests rejected while open.
    pub rejected: u64,
}

/// What the breaker decided for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Closed: proceed normally.
    Allowed,
    /// Half-open: proceed as the single probe.
    Probe,
    /// Open: shed without calling the backend.
    Rejected,
}

struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    probe_in_flight: bool,
    stats: BreakerStats,
}

/// A per-backend circuit breaker (closed → open → half-open with a
/// single probe), safe to share across worker threads.
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: parking_lot::Mutex<BreakerInner>,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            inner: parking_lot::Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
                probe_in_flight: false,
                stats: BreakerStats::default(),
            }),
        }
    }

    /// The configuration.
    pub fn config(&self) -> BreakerConfig {
        self.config
    }

    /// Current state (the open → half-open move happens lazily inside
    /// [`CircuitBreaker::admit`], so this is the last decided state).
    pub fn state(&self) -> BreakerState {
        self.inner.lock().state
    }

    /// Transition counters.
    pub fn stats(&self) -> BreakerStats {
        self.inner.lock().stats
    }

    /// Time left before an open breaker admits its probe: `Some(ZERO)`
    /// when the cooldown has elapsed (the next request probes), `None`
    /// when the breaker is not open. Backs the server's `Retry-After`
    /// header on breaker-open 503s, so clients back off for exactly as
    /// long as the breaker will keep shedding.
    pub fn cooldown_remaining(&self) -> Option<Duration> {
        let inner = self.inner.lock();
        match inner.state {
            BreakerState::Open => Some(inner.opened_at.map_or(Duration::ZERO, |at| {
                self.config.open_cooldown.saturating_sub(at.elapsed())
            })),
            _ => None,
        }
    }

    /// Decide admission for one request.
    pub fn admit(&self) -> Admission {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => Admission::Allowed,
            BreakerState::Open => {
                let cooled = inner
                    .opened_at
                    .is_some_and(|at| at.elapsed() >= self.config.open_cooldown);
                if cooled {
                    inner.state = BreakerState::HalfOpen;
                    inner.probe_in_flight = true;
                    inner.stats.half_opened += 1;
                    Admission::Probe
                } else {
                    inner.stats.rejected += 1;
                    Admission::Rejected
                }
            }
            BreakerState::HalfOpen => {
                if inner.probe_in_flight {
                    // Exactly one probe at a time; everyone else sheds.
                    inner.stats.rejected += 1;
                    Admission::Rejected
                } else {
                    inner.probe_in_flight = true;
                    Admission::Probe
                }
            }
        }
    }

    /// Report a successful backend call.
    pub fn on_success(&self) {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => inner.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                inner.state = BreakerState::Closed;
                inner.consecutive_failures = 0;
                inner.probe_in_flight = false;
                inner.opened_at = None;
                inner.stats.closed += 1;
            }
            // A success racing an open breaker (admitted before the trip)
            // does not close it: only a probe may.
            BreakerState::Open => {}
        }
    }

    /// Report a transient backend failure.
    pub fn on_failure(&self) {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.config.failure_threshold {
                    inner.state = BreakerState::Open;
                    inner.opened_at = Some(Instant::now());
                    inner.stats.opened += 1;
                }
            }
            BreakerState::HalfOpen => {
                // Failed probe: back to open, restart the cooldown.
                inner.state = BreakerState::Open;
                inner.opened_at = Some(Instant::now());
                inner.probe_in_flight = false;
                inner.stats.opened += 1;
            }
            BreakerState::Open => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Resilience counters
// ---------------------------------------------------------------------------

/// Cumulative fault-tolerance counters, exported on `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Retry attempts performed (beyond first tries).
    pub retries: u64,
    /// Requests whose deadline expired inside the stack.
    pub deadline_expiries: u64,
    /// Responses served from the degradation ladder (stale cache or
    /// local fallback).
    pub degraded_serves: u64,
    /// Requests shed by an open breaker with no degraded answer
    /// available.
    pub unavailable: u64,
    /// Breaker transition counters.
    pub breaker: BreakerStats,
}

#[derive(Default)]
struct StatCells {
    retries: AtomicU64,
    deadline_expiries: AtomicU64,
    degraded_serves: AtomicU64,
    unavailable: AtomicU64,
}

// ---------------------------------------------------------------------------
// The resilient endpoint
// ---------------------------------------------------------------------------

/// Configuration of the fault-tolerant wrapper.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Default per-request budget applied when the caller's
    /// [`QueryContext`] carries an unbounded deadline.
    pub default_deadline: Option<Duration>,
    /// Retry policy for transient failures.
    pub retry: RetryPolicy,
    /// Breaker tuning.
    pub breaker: BreakerConfig,
    /// Capacity of the stale last-known-good cache backing the
    /// degradation ladder.
    pub stale_cache_capacity: usize,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            default_deadline: None,
            retry: RetryPolicy::disabled(),
            breaker: BreakerConfig::default(),
            stale_cache_capacity: 1024,
        }
    }
}

/// A [`QueryEngine`] wrapper adding deadlines, retry, a circuit breaker,
/// and graceful degradation.
///
/// The degradation ladder, in order:
///
/// 1. **primary** — the wrapped engine, with retry/backoff on transient
///    failures while budget remains;
/// 2. **stale cache** — every successful answer is remembered (epoch
///    tagged); on an open breaker or an exhausted deadline the last
///    known result is served as [`ServedBy::DegradedStale`], even if its
///    epoch is behind the live store;
/// 3. **fallback engine** — an optional local engine (sequential
///    evaluation over the mirror) consulted when the breaker is open
///    and there is still budget, served as [`ServedBy::DegradedLocal`];
/// 4. an explicit [`ServeError::DeadlineExceeded`] or
///    [`ServeError::Unavailable`] — never a hang.
pub struct ResilientEndpoint {
    primary: Box<dyn QueryEngine>,
    fallback: Option<Box<dyn QueryEngine>>,
    breaker: CircuitBreaker,
    cache: HeavyQueryStore,
    /// The router's shared result cache, when it runs one: its
    /// epoch-tagged stale side is a second rung of last-known-good
    /// answers for the degradation ladder (keyed by normalized text).
    stale_source: Option<Arc<crate::cache::ResultCache>>,
    stats: StatCells,
    config: ResilienceConfig,
}

impl ResilientEndpoint {
    /// Wrap `primary` with the given policies (no local fallback).
    pub fn new(primary: Box<dyn QueryEngine>, config: ResilienceConfig) -> Self {
        let epoch = primary.data_epoch();
        ResilientEndpoint {
            primary,
            fallback: None,
            breaker: CircuitBreaker::new(config.breaker),
            cache: HeavyQueryStore::new(
                HvsConfig {
                    // Threshold zero: remember every successful answer,
                    // not only heavy ones — the ladder serves last-known
                    // results, and cheap queries deserve one too.
                    heavy_threshold: Duration::ZERO,
                    capacity: config.stale_cache_capacity,
                },
                epoch,
            ),
            stale_source: None,
            stats: StatCells::default(),
            config,
        }
    }

    /// Add a local fallback engine consulted when the breaker is open.
    pub fn with_fallback(mut self, fallback: Box<dyn QueryEngine>) -> Self {
        self.fallback = Some(fallback);
        self
    }

    /// Let the degradation ladder also consult the stale side of the
    /// router's result cache (after this endpoint's own stale cache
    /// misses) — exploration charts evicted here may still live there.
    pub fn with_stale_source(mut self, source: Arc<crate::cache::ResultCache>) -> Self {
        self.stale_source = Some(source);
        self
    }

    /// The wrapped primary engine.
    pub fn primary(&self) -> &dyn QueryEngine {
        self.primary.as_ref()
    }

    /// The breaker guarding the primary.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Snapshot of the fault-tolerance counters.
    pub fn stats(&self) -> ResilienceStats {
        ResilienceStats {
            retries: self.stats.retries.load(Ordering::Relaxed),
            deadline_expiries: self.stats.deadline_expiries.load(Ordering::Relaxed),
            degraded_serves: self.stats.degraded_serves.load(Ordering::Relaxed),
            unavailable: self.stats.unavailable.load(Ordering::Relaxed),
            breaker: self.breaker.stats(),
        }
    }

    fn effective_deadline(&self, ctx: &QueryContext) -> Deadline {
        if ctx.deadline.is_bounded() {
            ctx.deadline
        } else {
            match self.config.default_deadline {
                Some(limit) => Deadline::within(limit),
                None => Deadline::unbounded(),
            }
        }
    }

    /// Serve from the degradation ladder (stale cache → local fallback
    /// → the explicit error). Only the O(1) stale lookup is allowed once
    /// the deadline is gone. Records a `degrade` span with the rung that
    /// answered when the request is sampled.
    fn degrade(
        &self,
        query: &str,
        deadline: Deadline,
        trace: &TraceCtx,
        on_miss: ServeError,
    ) -> Result<QueryOutcome, ServeError> {
        let mut span = trace.span("degrade");
        let start = Instant::now();
        if let Some(stale) = self.cache.get_stale(query) {
            self.stats.degraded_serves.fetch_add(1, Ordering::Relaxed);
            span.tag("outcome", "stale");
            return Ok(QueryOutcome {
                solutions: stale.solutions,
                elapsed: start.elapsed(),
                served_by: ServedBy::DegradedStale,
                shards_used: 1,
                data_epoch: stale.epoch,
            });
        }
        // Second stale rung: the router's result cache keeps evicted
        // epochs on its own stale side, keyed by normalized query text
        // (the router normalizes at ingress; this wrapper sees raw text).
        if let Some(source) = &self.stale_source {
            if let Some(stale) = source.get_stale(&crate::cache::normalize_query_text(query)) {
                self.stats.degraded_serves.fetch_add(1, Ordering::Relaxed);
                span.tag("outcome", "stale_result_cache");
                return Ok(QueryOutcome {
                    solutions: stale.solutions,
                    elapsed: start.elapsed(),
                    served_by: ServedBy::DegradedStale,
                    shards_used: 1,
                    data_epoch: stale.epoch,
                });
            }
        }
        if !deadline.is_expired() {
            if let Some(fallback) = &self.fallback {
                // Do not hand the trace down this path: the fallback is a
                // full router whose root-level stage spans would overlap
                // the `degrade` span and double-count wall time.
                let ctx = QueryContext::with_deadline(deadline);
                if let Ok(mut out) = fallback.execute_with(query, &ctx) {
                    self.stats.degraded_serves.fetch_add(1, Ordering::Relaxed);
                    out.served_by = ServedBy::DegradedLocal;
                    span.tag("outcome", "local_fallback");
                    return Ok(out);
                }
            }
        }
        if matches!(on_miss, ServeError::Unavailable(_)) {
            self.stats.unavailable.fetch_add(1, Ordering::Relaxed);
        }
        span.tag("outcome", "error");
        Err(on_miss)
    }
}

impl QueryEngine for ResilientEndpoint {
    fn execute(&self, query: &str) -> Result<QueryOutcome, ServeError> {
        self.execute_with(query, &QueryContext::default())
    }

    fn execute_with(&self, query: &str, ctx: &QueryContext) -> Result<QueryOutcome, ServeError> {
        let deadline = self.effective_deadline(ctx);
        let trace = ctx.trace.clone();
        let admission = self.breaker.admit();
        if admission == Admission::Rejected {
            return self.degrade(
                query,
                deadline,
                &trace,
                ServeError::Unavailable("circuit breaker open".into()),
            );
        }

        let ctx = QueryContext::with_deadline_and_trace(deadline, trace.clone());
        let mut attempt: u32 = 0;
        let mut previous_sleep = self.config.retry.base;
        loop {
            if deadline.is_expired() {
                self.stats.deadline_expiries.fetch_add(1, Ordering::Relaxed);
                return self.degrade(query, deadline, &trace, ServeError::DeadlineExceeded);
            }
            match self.primary.execute_with(query, &ctx) {
                Ok(outcome) => {
                    self.breaker.on_success();
                    self.cache
                        .record_at_epoch(query, &outcome.solutions, outcome.data_epoch);
                    return Ok(outcome);
                }
                Err(e) if e.is_transient() => {
                    self.breaker.on_failure();
                    let retryable = attempt < self.config.retry.max_retries
                        && admission != Admission::Probe
                        && !deadline.is_expired();
                    if !retryable {
                        if matches!(e, ServeError::DeadlineExceeded) {
                            self.stats.deadline_expiries.fetch_add(1, Ordering::Relaxed);
                        }
                        return self.degrade(query, deadline, &trace, e);
                    }
                    attempt += 1;
                    self.stats.retries.fetch_add(1, Ordering::Relaxed);
                    let sleep = self.config.retry.backoff(attempt, previous_sleep);
                    previous_sleep = sleep;
                    let sleep = deadline.clamp(sleep);
                    if !sleep.is_zero() {
                        // The backoff sleep is dead wall time between
                        // attempts; giving it a span keeps the trace's
                        // stage sum tracking end-to-end latency on flaky
                        // paths too.
                        let mut span = trace.span("backoff");
                        if trace.is_enabled() {
                            span.tag("attempt", attempt.to_string());
                        }
                        std::thread::sleep(sleep);
                    }
                }
                // Permanent failures (parse errors, execution errors) are
                // the query's own fault: no breaker penalty, no retry, no
                // degradation — the client must see the error.
                Err(e) => return Err(e),
            }
        }
    }

    fn data_epoch(&self) -> u64 {
        self.primary.data_epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::DirectEndpoint;
    use elinda_sparql::Solutions;
    use elinda_store::TripleStore;
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn store() -> TripleStore {
        TripleStore::from_turtle("@prefix ex: <http://e/> . ex:a a ex:C . ex:b a ex:C .").unwrap()
    }

    /// An engine failing transiently for the first `failures` calls.
    struct Flaky {
        store: Arc<TripleStore>,
        failures: Mutex<u32>,
    }

    impl QueryEngine for Flaky {
        fn execute(&self, query: &str) -> Result<QueryOutcome, ServeError> {
            {
                let mut left = self.failures.lock();
                if *left > 0 {
                    *left -= 1;
                    return Err(ServeError::Transient("connection reset".into()));
                }
            }
            DirectEndpoint::new(&self.store).execute(query)
        }

        fn data_epoch(&self) -> u64 {
            self.store.epoch()
        }
    }

    fn flaky(failures: u32) -> Box<Flaky> {
        Box::new(Flaky {
            store: Arc::new(store()),
            failures: Mutex::new(failures),
        })
    }

    const Q: &str = "SELECT ?s WHERE { ?s a <http://e/C> }";

    fn fast_retry(n: u32) -> RetryPolicy {
        RetryPolicy::new(n, Duration::from_micros(10), Duration::from_micros(100))
    }

    #[test]
    fn deadline_bounds_and_expiry() {
        let d = Deadline::within(Duration::from_millis(50));
        assert!(d.is_bounded());
        assert!(!d.is_expired());
        assert!(d.check().is_ok());
        assert!(d.clamp(Duration::from_secs(5)) <= Duration::from_millis(50));
        let gone = Deadline::at(Instant::now() - Duration::from_millis(1));
        assert!(gone.is_expired());
        assert!(matches!(gone.check(), Err(ServeError::DeadlineExceeded)));
        assert_eq!(gone.remaining(), Some(Duration::ZERO));
        assert!(Deadline::unbounded().remaining().is_none());
        assert!(!Deadline::unbounded().is_expired());
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy::new(5, Duration::from_millis(1), Duration::from_millis(20));
        let mut prev = p.base;
        for attempt in 1..=5 {
            let a = p.backoff(attempt, prev);
            let b = p.backoff(attempt, prev);
            assert_eq!(a, b, "jitter must be deterministic");
            assert!(a >= p.base && a <= p.cap, "{a:?}");
            prev = a;
        }
        // Different seeds draw differently somewhere in the schedule.
        let other = p.with_seed(99);
        assert!((1..=5).any(|k| other.backoff(k, p.base) != p.backoff(k, p.base)));
    }

    #[test]
    fn retry_recovers_from_transient_failures() {
        let ep = ResilientEndpoint::new(
            flaky(2),
            ResilienceConfig {
                retry: fast_retry(3),
                ..ResilienceConfig::default()
            },
        );
        let out = ep.execute(Q).unwrap();
        assert_eq!(out.solutions.len(), 2);
        assert_eq!(ep.stats().retries, 2);
        assert_eq!(ep.breaker().state(), BreakerState::Closed);
    }

    #[test]
    fn retries_exhausted_surfaces_transient_error() {
        let ep = ResilientEndpoint::new(
            flaky(10),
            ResilienceConfig {
                retry: fast_retry(2),
                ..ResilienceConfig::default()
            },
        );
        assert!(matches!(ep.execute(Q), Err(ServeError::Transient(_))));
        assert_eq!(ep.stats().retries, 2);
    }

    #[test]
    fn breaker_opens_and_sheds_then_probe_recovers() {
        let config = ResilienceConfig {
            retry: RetryPolicy::disabled(),
            breaker: BreakerConfig {
                failure_threshold: 3,
                open_cooldown: Duration::from_millis(20),
            },
            ..ResilienceConfig::default()
        };
        let ep = ResilientEndpoint::new(flaky(3), config);
        for _ in 0..3 {
            assert!(ep.execute(Q).is_err());
        }
        assert_eq!(ep.breaker().state(), BreakerState::Open);
        // Shed fast while open (no stale entry yet: explicit 503).
        assert!(matches!(ep.execute(Q), Err(ServeError::Unavailable(_))));
        assert!(ep.stats().unavailable >= 1);
        // After the cooldown one probe is admitted; the backend has
        // recovered, so the breaker closes.
        std::thread::sleep(Duration::from_millis(25));
        let out = ep.execute(Q).unwrap();
        assert_eq!(out.solutions.len(), 2);
        assert_eq!(ep.breaker().state(), BreakerState::Closed);
        let stats = ep.stats().breaker;
        assert_eq!(stats.opened, 1);
        assert_eq!(stats.half_opened, 1);
        assert_eq!(stats.closed, 1);
    }

    #[test]
    fn open_breaker_serves_stale_cache() {
        let config = ResilienceConfig {
            breaker: BreakerConfig {
                failure_threshold: 1,
                open_cooldown: Duration::from_secs(3600),
            },
            ..ResilienceConfig::default()
        };
        let ep = ResilientEndpoint::new(flaky(0), config);
        let fresh = ep.execute(Q).unwrap();
        // Force the breaker open by reporting a failure directly.
        ep.breaker().on_failure();
        assert_eq!(ep.breaker().state(), BreakerState::Open);
        let degraded = ep.execute(Q).unwrap();
        assert_eq!(degraded.served_by, ServedBy::DegradedStale);
        assert_eq!(degraded.solutions.rows, fresh.solutions.rows);
        assert_eq!(degraded.data_epoch, fresh.data_epoch);
        assert_eq!(ep.stats().degraded_serves, 1);
    }

    #[test]
    fn open_breaker_falls_back_to_local_engine() {
        let s = Arc::new(store());
        let config = ResilienceConfig {
            breaker: BreakerConfig {
                failure_threshold: 1,
                open_cooldown: Duration::from_secs(3600),
            },
            ..ResilienceConfig::default()
        };
        let ep = ResilientEndpoint::new(flaky(100), config).with_fallback(Box::new(
            crate::router::ElindaEndpoint::new(
                Arc::clone(&s),
                crate::router::EndpointConfig::full(),
            ),
        ));
        // First call fails, trips the breaker; nothing cached, so the
        // ladder reaches the local fallback.
        let out = ep.execute(Q).unwrap();
        assert_eq!(out.served_by, ServedBy::DegradedLocal);
        assert_eq!(out.solutions.len(), 2);
    }

    #[test]
    fn expired_deadline_is_an_explicit_error_not_a_hang() {
        let ep = ResilientEndpoint::new(flaky(0), ResilienceConfig::default());
        let ctx =
            QueryContext::with_deadline(Deadline::at(Instant::now() - Duration::from_millis(1)));
        let started = Instant::now();
        let err = ep.execute_with(Q, &ctx).unwrap_err();
        assert!(matches!(err, ServeError::DeadlineExceeded));
        assert!(started.elapsed() < Duration::from_millis(100));
        assert_eq!(ep.stats().deadline_expiries, 1);
    }

    #[test]
    fn expired_deadline_serves_stale_if_available() {
        let ep = ResilientEndpoint::new(flaky(0), ResilienceConfig::default());
        ep.execute(Q).unwrap();
        let ctx =
            QueryContext::with_deadline(Deadline::at(Instant::now() - Duration::from_millis(1)));
        let out = ep.execute_with(Q, &ctx).unwrap();
        assert_eq!(out.served_by, ServedBy::DegradedStale);
    }

    #[test]
    fn permanent_errors_pass_through_without_retry_or_breaker_penalty() {
        let ep = ResilientEndpoint::new(
            flaky(0),
            ResilienceConfig {
                retry: fast_retry(5),
                ..ResilienceConfig::default()
            },
        );
        assert!(matches!(
            ep.execute("SELECT nonsense"),
            Err(ServeError::Query(_))
        ));
        assert_eq!(ep.stats().retries, 0);
        assert_eq!(ep.breaker().stats().opened, 0);
    }

    #[test]
    fn default_deadline_applies_when_context_is_unbounded() {
        /// An engine that sleeps past any reasonable budget.
        struct Slow;
        impl QueryEngine for Slow {
            fn execute(&self, _q: &str) -> Result<QueryOutcome, ServeError> {
                unreachable!("execute_with is always used")
            }
            fn execute_with(
                &self,
                _q: &str,
                ctx: &QueryContext,
            ) -> Result<QueryOutcome, ServeError> {
                assert!(ctx.deadline.is_bounded(), "default deadline not applied");
                std::thread::sleep(ctx.deadline.clamp(Duration::from_secs(5)));
                Err(ServeError::DeadlineExceeded)
            }
            fn data_epoch(&self) -> u64 {
                0
            }
        }
        let ep = ResilientEndpoint::new(
            Box::new(Slow),
            ResilienceConfig {
                default_deadline: Some(Duration::from_millis(20)),
                ..ResilienceConfig::default()
            },
        );
        let started = Instant::now();
        assert!(matches!(ep.execute(Q), Err(ServeError::DeadlineExceeded)));
        assert!(started.elapsed() < Duration::from_millis(120));
    }

    #[test]
    fn stale_cache_is_epoch_tagged() {
        let h = HeavyQueryStore::new(
            HvsConfig {
                heavy_threshold: Duration::ZERO,
                capacity: 4,
            },
            7,
        );
        let sol = Solutions {
            vars: vec!["x".into()],
            rows: vec![],
        };
        h.record_at_epoch("q", &sol, 7);
        let stale = h.get_stale("q").unwrap();
        assert_eq!(stale.epoch, 7);
    }
}
