//! The [`QueryEngine`] abstraction: anything that can answer a SPARQL
//! query with a measured runtime.

use elinda_sparql::exec::QueryError;
use elinda_sparql::Solutions;
use std::time::Duration;

/// Which component served a query (the Fig. 4 store configurations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServedBy {
    /// The plain SPARQL executor (the "Virtuoso endpoint" path).
    Direct,
    /// A heavy-query-store hit.
    Hvs,
    /// The eLinda decomposer.
    Decomposer,
    /// A remote endpoint in compatibility mode.
    Remote,
}

/// A query result with its measured runtime and serving component.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The solution sequence.
    pub solutions: Solutions,
    /// Measured wall-clock runtime.
    pub elapsed: Duration,
    /// Which component answered.
    pub served_by: ServedBy,
    /// Number of store shards the evaluation fanned across — 1 on every
    /// sequential path, the shard count of the endpoint's
    /// [`crate::parallel::Parallelism`] budget when the sharded parallel
    /// evaluator answered.
    pub shards_used: usize,
}

/// An engine that answers SPARQL text queries.
///
/// Engines are shared across server worker threads behind an `Arc`, so
/// the trait requires `Send + Sync`: implementations take `&self` and
/// use interior mutability (see the HVS and the metering wrapper) for
/// any state they update per query.
pub trait QueryEngine: Send + Sync {
    /// Execute a query, measuring its runtime.
    fn execute(&self, query: &str) -> Result<QueryOutcome, QueryError>;

    /// The epoch of the underlying data (bumped on updates).
    fn data_epoch(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn served_by_is_comparable() {
        assert_ne!(ServedBy::Direct, ServedBy::Hvs);
        assert_eq!(ServedBy::Decomposer, ServedBy::Decomposer);
    }
}
