//! The [`QueryEngine`] abstraction: anything that can answer a SPARQL
//! query with a measured runtime, under an optional per-request
//! [`Deadline`](crate::resilience::Deadline).

use crate::resilience::Deadline;
use crate::trace::TraceCtx;
use elinda_sparql::exec::QueryError;
use elinda_sparql::Solutions;
use std::fmt;
use std::time::Duration;

/// Which component served a query (the Fig. 4 store configurations,
/// plus the degradation ladder of the fault-tolerant path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServedBy {
    /// The plain SPARQL executor (the "Virtuoso endpoint" path).
    Direct,
    /// A heavy-query-store hit.
    Hvs,
    /// The eLinda decomposer.
    Decomposer,
    /// A remote endpoint in compatibility mode.
    Remote,
    /// A fresh result-cache hit: the finished chart bytes of an earlier
    /// identical request at the current data epoch.
    CacheHit,
    /// Incremental evaluation seeded from a cached parent entity
    /// frontier instead of a whole-store instance derivation.
    Incremental,
    /// The shard fabric: a coordinator scattered the chart query across
    /// real shard processes and merged their partial aggregates.
    Fabric,
    /// Degraded: a stale (epoch-tagged) last-known-good cache entry,
    /// served because the backend was unavailable or the budget spent.
    DegradedStale,
    /// Degraded: a sequential local fallback evaluation, served because
    /// the primary backend was unavailable.
    DegradedLocal,
}

impl ServedBy {
    /// True for the degradation-ladder components.
    pub fn is_degraded(&self) -> bool {
        matches!(self, ServedBy::DegradedStale | ServedBy::DegradedLocal)
    }
}

/// A query result with its measured runtime and serving component.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The solution sequence.
    pub solutions: Solutions,
    /// Measured wall-clock runtime.
    pub elapsed: Duration,
    /// Which component answered.
    pub served_by: ServedBy,
    /// Number of store shards the evaluation fanned across — 1 on every
    /// sequential path, the shard count of the endpoint's
    /// [`crate::parallel::Parallelism`] budget when the sharded parallel
    /// evaluator answered.
    pub shards_used: usize,
    /// The data epoch this answer reflects. Equal to the engine's
    /// current epoch on every live path; older on a
    /// [`ServedBy::DegradedStale`] serve, where it tags how stale the
    /// answer is.
    pub data_epoch: u64,
}

/// Per-request execution context handed down the serving stack.
#[derive(Debug, Clone, Default)]
pub struct QueryContext {
    /// The request's time budget (unbounded by default).
    pub deadline: Deadline,
    /// The request's trace handle (disabled by default: every tracing
    /// operation is then a no-op branch).
    pub trace: TraceCtx,
}

impl QueryContext {
    /// A context carrying the given budget (tracing disabled).
    pub fn with_deadline(deadline: Deadline) -> Self {
        QueryContext {
            deadline,
            trace: TraceCtx::disabled(),
        }
    }

    /// A context carrying the given budget and trace handle.
    pub fn with_deadline_and_trace(deadline: Deadline, trace: TraceCtx) -> Self {
        QueryContext { deadline, trace }
    }
}

/// Everything that can go wrong while serving a query.
///
/// [`ServeError::is_transient`] is the retry/breaker pivot: transient
/// failures are infrastructure faults (connection drops, timeouts,
/// malformed wire payloads) that an idempotent read may safely retry,
/// while [`ServeError::Query`] is the query's own fault and must reach
/// the client unchanged.
#[derive(Debug, Clone)]
pub enum ServeError {
    /// The query itself is invalid (parse or execution error).
    Query(QueryError),
    /// The request's deadline expired before an answer was produced.
    DeadlineExceeded,
    /// A transient infrastructure failure (retryable for reads).
    Transient(String),
    /// The backend is unavailable (e.g. circuit breaker open) and no
    /// degraded answer could be produced.
    Unavailable(String),
    /// The request body is not a well-formed request for its endpoint
    /// (e.g. an unparsable SPARQL UPDATE string). Maps to HTTP 400.
    Malformed(String),
}

impl ServeError {
    /// True for failures a retry of an idempotent read may fix.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            ServeError::Transient(_) | ServeError::DeadlineExceeded
        )
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Query(e) => e.fmt(f),
            ServeError::DeadlineExceeded => f.write_str("deadline exceeded"),
            ServeError::Transient(msg) => write!(f, "transient failure: {msg}"),
            ServeError::Unavailable(msg) => write!(f, "service unavailable: {msg}"),
            ServeError::Malformed(msg) => write!(f, "malformed request: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<QueryError> for ServeError {
    fn from(e: QueryError) -> Self {
        ServeError::Query(e)
    }
}

/// An engine that answers SPARQL text queries.
///
/// Engines are shared across server worker threads behind an `Arc`, so
/// the trait requires `Send + Sync`: implementations take `&self` and
/// use interior mutability (see the HVS and the metering wrapper) for
/// any state they update per query.
pub trait QueryEngine: Send + Sync {
    /// Execute a query with no deadline, measuring its runtime.
    fn execute(&self, query: &str) -> Result<QueryOutcome, ServeError>;

    /// Execute a query under a per-request context (deadline budget).
    ///
    /// The default implementation ignores the context — engines whose
    /// work is not meaningfully interruptible (the direct executor) keep
    /// that behavior, while the router, the parallel evaluator, and the
    /// remote client override it to check the deadline cooperatively.
    fn execute_with(&self, query: &str, _ctx: &QueryContext) -> Result<QueryOutcome, ServeError> {
        self.execute(query)
    }

    /// The epoch of the underlying data (bumped on updates).
    fn data_epoch(&self) -> u64;
}

impl QueryEngine for Box<dyn QueryEngine> {
    fn execute(&self, query: &str) -> Result<QueryOutcome, ServeError> {
        self.as_ref().execute(query)
    }

    fn execute_with(&self, query: &str, ctx: &QueryContext) -> Result<QueryOutcome, ServeError> {
        self.as_ref().execute_with(query, ctx)
    }

    fn data_epoch(&self) -> u64 {
        self.as_ref().data_epoch()
    }
}

impl<E: QueryEngine + ?Sized> QueryEngine for std::sync::Arc<E> {
    fn execute(&self, query: &str) -> Result<QueryOutcome, ServeError> {
        self.as_ref().execute(query)
    }

    fn execute_with(&self, query: &str, ctx: &QueryContext) -> Result<QueryOutcome, ServeError> {
        self.as_ref().execute_with(query, ctx)
    }

    fn data_epoch(&self) -> u64 {
        self.as_ref().data_epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn served_by_is_comparable() {
        assert_ne!(ServedBy::Direct, ServedBy::Hvs);
        assert_eq!(ServedBy::Decomposer, ServedBy::Decomposer);
        assert!(ServedBy::DegradedStale.is_degraded());
        assert!(ServedBy::DegradedLocal.is_degraded());
        assert!(!ServedBy::Remote.is_degraded());
    }

    #[test]
    fn transient_classification() {
        assert!(ServeError::Transient("reset".into()).is_transient());
        assert!(ServeError::DeadlineExceeded.is_transient());
        assert!(!ServeError::Unavailable("open".into()).is_transient());
        let parse = elinda_sparql::parse_query("SELECT").unwrap_err();
        assert!(!ServeError::Query(QueryError::Parse(parse)).is_transient());
    }

    #[test]
    fn errors_display() {
        assert_eq!(
            ServeError::DeadlineExceeded.to_string(),
            "deadline exceeded"
        );
        assert!(ServeError::Transient("x".into()).to_string().contains("x"));
        assert!(ServeError::Unavailable("y".into())
            .to_string()
            .contains("unavailable"));
    }
}
