//! The eLinda heavy query store (HVS).
//!
//! "For each query to the ELINDA endpoint, the system first checks if the
//! HVS encountered it before and determined it to be heavy. If so, use
//! the result from the HVS, otherwise route it to the Virtuoso endpoint.
//! ELINDA backend measures the run time of the routed queries. Queries
//! with runtime bigger than one second are considered heavy and saved in
//! the HVS. The HVS is cleared on any updated to the ELINDA knowledge
//! bases." (Section 4)

use elinda_rdf::fx::FxHashMap;
use elinda_sparql::Solutions;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// HVS configuration.
#[derive(Debug, Clone)]
pub struct HvsConfig {
    /// Queries at or above this runtime are considered heavy. The paper
    /// uses 1 s against a ~400M-triple Virtuoso; scale it down with the
    /// dataset.
    pub heavy_threshold: Duration,
    /// Maximum number of cached queries (FIFO eviction).
    pub capacity: usize,
}

impl Default for HvsConfig {
    fn default() -> Self {
        HvsConfig {
            heavy_threshold: Duration::from_secs(1),
            capacity: 1024,
        }
    }
}

/// Cache effectiveness counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HvsStats {
    /// Lookups that found a cached heavy result.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Heavy results stored.
    pub insertions: u64,
    /// Entries dropped by capacity eviction.
    pub evictions: u64,
    /// Full clears triggered by knowledge-base updates.
    pub invalidations: u64,
}

/// A last-known-good result surviving knowledge-base updates, tagged
/// with the data epoch it was computed against.
///
/// The fresh map answers "is this query heavy and cached?" and is
/// cleared on every update, exactly as the paper specifies. The stale
/// side exists for the degradation ladder: when the backend is down or
/// the budget spent, an answer from a previous epoch — explicitly marked
/// as such — beats no answer at all.
#[derive(Debug, Clone)]
pub struct StaleEntry {
    /// The cached result.
    pub solutions: Solutions,
    /// The data epoch the result was computed at.
    pub epoch: u64,
}

struct Inner {
    /// Results are held behind `Arc` so a hit only bumps a refcount
    /// under the mutex; the deep clone handed to the caller happens
    /// outside the critical section (see [`HeavyQueryStore::get`]).
    map: FxHashMap<String, Arc<Solutions>>,
    order: VecDeque<String>,
    /// Last-known-good entries, epoch-tagged. NOT cleared by
    /// `sync_epoch` — invalidated fresh entries migrate here instead.
    stale: FxHashMap<String, (Arc<Solutions>, u64)>,
    stale_order: VecDeque<String>,
    stats: HvsStats,
}

/// The key-value heavy query store.
///
/// Safe to share across server worker threads (`&self` everywhere,
/// `Send + Sync`). The data epoch lives in an atomic outside the mutex
/// so the per-query `sync_epoch` check — by far the most frequent
/// operation under serving load, and almost always a no-op — never
/// contends with concurrent lookups.
pub struct HeavyQueryStore {
    config: HvsConfig,
    epoch: AtomicU64,
    inner: Mutex<Inner>,
}

impl HeavyQueryStore {
    /// An empty HVS bound to the given data epoch.
    pub fn new(config: HvsConfig, epoch: u64) -> Self {
        HeavyQueryStore {
            config,
            epoch: AtomicU64::new(epoch),
            inner: Mutex::new(Inner {
                map: FxHashMap::default(),
                order: VecDeque::new(),
                stale: FxHashMap::default(),
                stale_order: VecDeque::new(),
                stats: HvsStats::default(),
            }),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &HvsConfig {
        &self.config
    }

    /// Clear the cache if the knowledge base moved to a new epoch
    /// ("cleared on any update"). Returns `true` if this call cleared.
    ///
    /// Lock-free when the epoch is unchanged. When many threads observe
    /// the same epoch bump concurrently, exactly one performs the clear
    /// (the others see the atomic already updated under the lock).
    pub fn sync_epoch(&self, epoch: u64) -> bool {
        if self.epoch.load(Ordering::Acquire) == epoch {
            return false;
        }
        let mut inner = self.inner.lock();
        // Re-check under the lock: a racing thread may have cleared for
        // this epoch already.
        if self.epoch.load(Ordering::Acquire) == epoch {
            return false;
        }
        // Migrate cleared fresh entries to the stale side, tagged with
        // the epoch they were valid for, before dropping the fresh map:
        // "cleared on any update" still holds for lookups via `get`,
        // while the degradation ladder keeps a last-known-good answer.
        let old_epoch = self.epoch.load(Ordering::Acquire);
        let migrate: Vec<(String, Arc<Solutions>)> = inner.map.drain().collect();
        for (query, sol) in migrate {
            Self::upsert_stale(&mut inner, self.config.capacity, query, sol, old_epoch);
        }
        inner.order.clear();
        inner.stats.invalidations += 1;
        self.epoch.store(epoch, Ordering::Release);
        true
    }

    /// Insert or refresh a stale entry, never letting an older epoch
    /// overwrite a newer one, with FIFO eviction at `capacity`.
    fn upsert_stale(
        inner: &mut Inner,
        capacity: usize,
        query: String,
        solutions: Arc<Solutions>,
        epoch: u64,
    ) {
        match inner.stale.get(&query) {
            Some((_, have)) if *have > epoch => {}
            Some(_) => {
                inner.stale.insert(query, (solutions, epoch));
            }
            None => {
                while inner.stale_order.len() >= capacity {
                    if let Some(oldest) = inner.stale_order.pop_front() {
                        inner.stale.remove(&oldest);
                    }
                }
                inner.stale_order.push_back(query.clone());
                inner.stale.insert(query, (solutions, epoch));
            }
        }
    }

    /// Look up a query previously determined to be heavy.
    ///
    /// Only an `Arc` refcount bump happens under the lock; the deep
    /// clone of a (potentially large) cached result is done after
    /// releasing it, so concurrent lookups never serialize on copying.
    pub fn get(&self, query: &str) -> Option<Solutions> {
        let cached = {
            let mut inner = self.inner.lock();
            match inner.map.get(query).cloned() {
                Some(sol) => {
                    inner.stats.hits += 1;
                    Some(sol)
                }
                None => {
                    inner.stats.misses += 1;
                    None
                }
            }
        };
        cached.map(|sol| (*sol).clone())
    }

    /// True when `query` is cached as heavy, without counting the lookup
    /// as a hit or miss — the `/explain` path predicts routing without
    /// perturbing the cache-effectiveness counters.
    pub fn peek(&self, query: &str) -> bool {
        self.inner.lock().map.contains_key(query)
    }

    /// Record a measured query. Stored only if its runtime met the heavy
    /// threshold. Returns `true` if stored.
    pub fn record(&self, query: &str, solutions: &Solutions, elapsed: Duration) -> bool {
        if elapsed < self.config.heavy_threshold {
            return false;
        }
        // Deep-copy the result before taking the lock for the same
        // reason `get` clones after releasing it.
        let solutions = Arc::new(solutions.clone());
        let mut inner = self.inner.lock();
        if inner.map.contains_key(query) {
            return false;
        }
        while inner.order.len() >= self.config.capacity {
            if let Some(oldest) = inner.order.pop_front() {
                inner.map.remove(&oldest);
                inner.stats.evictions += 1;
            }
        }
        inner.map.insert(query.to_string(), solutions);
        inner.order.push_back(query.to_string());
        inner.stats.insertions += 1;
        true
    }

    /// Record a result as the last-known-good answer for `query` at the
    /// given data epoch, regardless of runtime (the degradation ladder
    /// wants cheap answers remembered too). Independent of the fresh
    /// heavy-query map; survives [`HeavyQueryStore::sync_epoch`].
    pub fn record_at_epoch(&self, query: &str, solutions: &Solutions, epoch: u64) {
        let solutions = Arc::new(solutions.clone());
        let mut inner = self.inner.lock();
        Self::upsert_stale(
            &mut inner,
            self.config.capacity,
            query.to_string(),
            solutions,
            epoch,
        );
    }

    /// The last-known-good answer for `query`, possibly from an earlier
    /// data epoch (the entry says which).
    pub fn get_stale(&self, query: &str) -> Option<StaleEntry> {
        let cached = self.inner.lock().stale.get(query).cloned();
        cached.map(|(sol, epoch)| StaleEntry {
            solutions: (*sol).clone(),
            epoch,
        })
    }

    /// Number of stale (last-known-good) entries.
    pub fn stale_len(&self) -> usize {
        self.inner.lock().stale.len()
    }

    /// Number of cached queries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> HvsStats {
        self.inner.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sol(n: usize) -> Solutions {
        Solutions {
            vars: vec!["x".into()],
            rows: (0..n)
                .map(|i| vec![Some(elinda_sparql::Value::Int(i as i64))])
                .collect(),
        }
    }

    fn hvs(threshold_ms: u64, capacity: usize) -> HeavyQueryStore {
        HeavyQueryStore::new(
            HvsConfig {
                heavy_threshold: Duration::from_millis(threshold_ms),
                capacity,
            },
            0,
        )
    }

    #[test]
    fn stores_only_heavy_queries() {
        let h = hvs(100, 10);
        assert!(!h.record("q1", &sol(1), Duration::from_millis(50)));
        assert!(h.record("q2", &sol(2), Duration::from_millis(150)));
        assert!(h.get("q1").is_none());
        assert_eq!(h.get("q2").unwrap().len(), 2);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn threshold_is_inclusive() {
        let h = hvs(100, 10);
        assert!(h.record("q", &sol(1), Duration::from_millis(100)));
    }

    #[test]
    fn epoch_sync_clears() {
        let h = hvs(0, 10);
        h.record("q", &sol(1), Duration::from_millis(1));
        assert!(!h.sync_epoch(0)); // same epoch: no clear
        assert_eq!(h.len(), 1);
        assert!(h.sync_epoch(1)); // update happened: clear
        assert!(h.is_empty());
        assert_eq!(h.stats().invalidations, 1);
    }

    #[test]
    fn capacity_eviction_is_fifo() {
        let h = hvs(0, 2);
        h.record("a", &sol(1), Duration::from_millis(1));
        h.record("b", &sol(2), Duration::from_millis(1));
        h.record("c", &sol(3), Duration::from_millis(1));
        assert!(h.get("a").is_none()); // evicted
        assert!(h.get("b").is_some());
        assert!(h.get("c").is_some());
        assert_eq!(h.stats().evictions, 1);
    }

    #[test]
    fn duplicate_records_are_ignored() {
        let h = hvs(0, 10);
        assert!(h.record("q", &sol(1), Duration::from_millis(1)));
        assert!(!h.record("q", &sol(9), Duration::from_millis(1)));
        assert_eq!(h.get("q").unwrap().len(), 1); // first result kept
    }

    #[test]
    fn concurrent_readers_and_invalidation_are_safe() {
        use std::sync::Arc;

        let h = Arc::new(hvs(0, 64));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..500 {
                        let q = format!("q{}", (t * 31 + i) % 40);
                        if h.get(&q).is_none() {
                            h.record(&q, &sol(1), Duration::from_millis(1));
                        }
                        if i % 100 == 0 {
                            // Epoch bumps race with lookups from the
                            // other threads.
                            h.sync_epoch((t * 500 + i) as u64 + 1);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.stats();
        assert_eq!(s.hits + s.misses, 8 * 500);
        // Exactly one thread wins each distinct epoch bump; every bump
        // in this schedule moves to a fresh value, and at least the
        // first observed bump must clear.
        assert!(s.invalidations >= 1);
        assert!(h.len() <= 64);
    }

    #[test]
    fn epoch_sync_migrates_entries_to_stale() {
        let h = hvs(0, 10);
        h.record("q", &sol(3), Duration::from_millis(1));
        h.sync_epoch(1);
        assert!(h.is_empty(), "fresh side cleared on update");
        let stale = h.get_stale("q").unwrap();
        assert_eq!(stale.solutions.len(), 3);
        assert_eq!(stale.epoch, 0, "tagged with the epoch it was valid for");
    }

    #[test]
    fn record_at_epoch_upserts_and_keeps_newest() {
        let h = hvs(0, 10);
        h.record_at_epoch("q", &sol(1), 5);
        h.record_at_epoch("q", &sol(2), 6);
        assert_eq!(h.get_stale("q").unwrap().epoch, 6);
        assert_eq!(h.get_stale("q").unwrap().solutions.len(), 2);
        // An older epoch never overwrites a newer entry.
        h.record_at_epoch("q", &sol(9), 4);
        assert_eq!(h.get_stale("q").unwrap().epoch, 6);
        assert_eq!(h.stale_len(), 1);
        assert!(h.get_stale("other").is_none());
    }

    #[test]
    fn stale_side_is_capacity_bounded() {
        let h = hvs(0, 2);
        h.record_at_epoch("a", &sol(1), 0);
        h.record_at_epoch("b", &sol(1), 0);
        h.record_at_epoch("c", &sol(1), 0);
        assert_eq!(h.stale_len(), 2);
        assert!(h.get_stale("a").is_none(), "FIFO eviction");
        assert!(h.get_stale("c").is_some());
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let h = hvs(0, 10);
        h.get("nope");
        h.record("q", &sol(1), Duration::from_millis(1));
        h.get("q");
        h.get("q");
        let s = h.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.insertions, 1);
    }
}
