//! [`DirectEndpoint`]: the plain SPARQL path — the stand-in for the
//! Virtuoso endpoint the paper routes non-heavy queries to.

use crate::engine::{QueryEngine, QueryOutcome, ServeError, ServedBy};
use elinda_sparql::Executor;
use elinda_store::TripleStore;
use std::time::Instant;

/// Executes every query with the naive SPARQL executor.
pub struct DirectEndpoint<'a> {
    store: &'a TripleStore,
}

impl<'a> DirectEndpoint<'a> {
    /// An endpoint over the store.
    pub fn new(store: &'a TripleStore) -> Self {
        DirectEndpoint { store }
    }

    /// The underlying store.
    pub fn store(&self) -> &'a TripleStore {
        self.store
    }
}

impl QueryEngine for DirectEndpoint<'_> {
    fn execute(&self, query: &str) -> Result<QueryOutcome, ServeError> {
        let start = Instant::now();
        let solutions = Executor::new(self.store).run(query)?;
        Ok(QueryOutcome {
            solutions,
            elapsed: start.elapsed(),
            served_by: ServedBy::Direct,
            shards_used: 1,
            data_epoch: self.store.epoch(),
        })
    }

    fn data_epoch(&self) -> u64 {
        self.store.epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executes_and_measures() {
        let store =
            TripleStore::from_turtle("@prefix ex: <http://e/> . ex:a a ex:C . ex:b a ex:C .")
                .unwrap();
        let ep = DirectEndpoint::new(&store);
        let out = ep.execute("SELECT ?s WHERE { ?s a <http://e/C> }").unwrap();
        assert_eq!(out.solutions.len(), 2);
        assert_eq!(out.served_by, ServedBy::Direct);
        assert_eq!(ep.data_epoch(), 0);
    }

    #[test]
    fn parse_errors_propagate() {
        let store = TripleStore::new();
        let ep = DirectEndpoint::new(&store);
        assert!(ep.execute("SELECT").is_err());
    }
}
