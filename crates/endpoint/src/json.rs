//! A minimal SPARQL 1.1 Query Results JSON codec.
//!
//! The remote compatibility mode talks to its endpoint "via its HTTP/JSON
//! SPARQL interface" (paper footnote 9). This module implements exactly
//! that wire format — `{"head": {"vars": […]}, "results": {"bindings":
//! […]}}` — with a purpose-built encoder and a small recursive-descent
//! JSON parser. A general JSON dependency is deliberately avoided (see
//! DESIGN.md dependency notes).

use elinda_rdf::Term;
use elinda_sparql::{Solutions, Value};
use elinda_store::TripleStore;
use std::collections::BTreeMap;
use std::fmt;

/// A decoding error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Append `s` to `out` with JSON string escaping (shared with the
/// fabric's partial-aggregate wire encoder).
pub(crate) fn escape_json(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn encode_binding(out: &mut String, value: &Value, store: &TripleStore) {
    out.push('{');
    match value {
        Value::Term(id) => match store.resolve(*id) {
            Term::Iri(iri) if iri.starts_with("_:") => {
                out.push_str("\"type\":\"bnode\",\"value\":\"");
                escape_json(out, &iri[2..]);
                out.push('"');
            }
            Term::Iri(iri) => {
                out.push_str("\"type\":\"uri\",\"value\":\"");
                escape_json(out, iri);
                out.push('"');
            }
            Term::Literal(lit) => {
                out.push_str("\"type\":\"literal\",\"value\":\"");
                escape_json(out, lit.lexical());
                out.push('"');
                if let Some(lang) = lit.language() {
                    out.push_str(",\"xml:lang\":\"");
                    escape_json(out, lang);
                    out.push('"');
                } else if let elinda_rdf::term::LiteralKind::Typed(dt) = lit.kind() {
                    out.push_str(",\"datatype\":\"");
                    escape_json(out, dt);
                    out.push('"');
                }
            }
        },
        Value::Int(n) => {
            out.push_str(&format!(
                "\"type\":\"literal\",\"value\":\"{n}\",\"datatype\":\"{}\"",
                elinda_rdf::vocab::xsd::INTEGER
            ));
        }
        Value::Float(f) => {
            out.push_str(&format!(
                "\"type\":\"literal\",\"value\":\"{f}\",\"datatype\":\"{}\"",
                elinda_rdf::vocab::xsd::DOUBLE
            ));
        }
        Value::Bool(b) => {
            out.push_str(&format!(
                "\"type\":\"literal\",\"value\":\"{b}\",\"datatype\":\"{}\"",
                elinda_rdf::vocab::xsd::BOOLEAN
            ));
        }
        Value::Str(s) => {
            out.push_str("\"type\":\"literal\",\"value\":\"");
            escape_json(out, s);
            out.push('"');
        }
    }
    out.push('}');
}

/// Encode a solution sequence in the SPARQL-JSON results format.
pub fn encode_solutions(solutions: &Solutions, store: &TripleStore) -> String {
    let mut out = String::with_capacity(64 + solutions.rows.len() * 64);
    out.push_str("{\"head\":{\"vars\":[");
    for (i, v) in solutions.vars.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json(&mut out, v);
        out.push('"');
    }
    out.push_str("]},\"results\":{\"bindings\":[");
    for (ri, row) in solutions.rows.iter().enumerate() {
        if ri > 0 {
            out.push(',');
        }
        out.push('{');
        let mut first = true;
        for (v, cell) in solutions.vars.iter().zip(row) {
            if let Some(value) = cell {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push('"');
                escape_json(&mut out, v);
                out.push_str("\":");
                encode_binding(&mut out, value, store);
            }
        }
        out.push('}');
    }
    out.push_str("]}}");
    out
}

// ---------------------------------------------------------------------------
// Generic JSON value + parser
// ---------------------------------------------------------------------------

/// A parsed JSON value (the subset the results format needs).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A number (always carried as f64).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object (sorted keys).
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// Object field access.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// Parse a JSON document.
pub fn parse_json(input: &str) -> Result<Json, JsonError> {
    let mut p = JsonParser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(v)
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{text}'")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(self.bytes.get(self.pos), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        text.parse()
            .map(Json::Number)
            .map_err(|_| self.err(format!("bad number '{text}'")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = std::str::from_utf8(&self.bytes[self.pos..])
                .map_err(|_| self.err("invalid UTF-8"))?;
            let mut chars = rest.char_indices();
            match chars.next() {
                None => return Err(self.err("unterminated string")),
                Some((_, '"')) => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some((_, '\\')) => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = std::str::from_utf8(
                                self.bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or_else(|| self.err("truncated \\u escape"))?,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs for completeness.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 2;
                                let hex2 = std::str::from_utf8(
                                    self.bytes
                                        .get(self.pos..self.pos + 4)
                                        .ok_or_else(|| self.err("truncated surrogate"))?,
                                )
                                .map_err(|_| self.err("bad surrogate"))?;
                                let low = u32::from_str_radix(hex2, 16)
                                    .map_err(|_| self.err("bad surrogate"))?;
                                self.pos += 4;
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("bad surrogate pair"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("bad codepoint"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(self.err(format!("unknown escape '\\{}'", other as char)))
                        }
                    }
                }
                Some((_, c)) => {
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }
}

/// Build a [`Solutions`]-shaped structure back from wire JSON, resolving
/// URIs/literals against a store interner where possible. Unresolvable
/// terms (the remote endpoint may return terms the local store has never
/// seen) become computed [`Value::Str`] values.
pub fn decode_solutions(input: &str, store: &TripleStore) -> Result<Solutions, JsonError> {
    let root = parse_json(input)?;
    let vars: Vec<String> = root
        .get("head")
        .and_then(|h| h.get("vars"))
        .and_then(Json::as_array)
        .map(|a| {
            a.iter()
                .filter_map(|v| v.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default();
    let bindings = root
        .get("results")
        .and_then(|r| r.get("bindings"))
        .and_then(Json::as_array)
        .unwrap_or(&[]);
    let mut rows = Vec::with_capacity(bindings.len());
    for b in bindings {
        let mut row: Vec<Option<Value>> = vec![None; vars.len()];
        for (i, v) in vars.iter().enumerate() {
            if let Some(cell) = b.get(v) {
                row[i] = Some(decode_binding(cell, store));
            }
        }
        rows.push(row);
    }
    Ok(Solutions { vars, rows })
}

fn decode_binding(cell: &Json, store: &TripleStore) -> Value {
    let ty = cell.get("type").and_then(Json::as_str).unwrap_or("literal");
    let value = cell.get("value").and_then(Json::as_str).unwrap_or("");
    let term: Option<Term> = match ty {
        "uri" => Some(Term::iri(value)),
        "bnode" => Some(Term::blank(value)),
        _ => {
            if let Some(lang) = cell.get("xml:lang").and_then(Json::as_str) {
                Some(Term::Literal(elinda_rdf::term::Literal::lang(value, lang)))
            } else if let Some(dt) = cell.get("datatype").and_then(Json::as_str) {
                Some(Term::Literal(elinda_rdf::term::Literal::typed(value, dt)))
            } else {
                Some(Term::Literal(elinda_rdf::term::Literal::plain(value)))
            }
        }
    };
    let term = term.expect("always constructed");
    match store.interner().get(&term) {
        Some(id) => Value::Term(id),
        None => {
            // Not in the local interner: surface as a computed scalar.
            if let Term::Literal(lit) = &term {
                if let Some(n) = lit.as_integer() {
                    return Value::Int(n);
                }
                if let Some(f) = lit.as_double() {
                    return Value::Float(f);
                }
            }
            Value::Str(value.to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elinda_sparql::Executor;

    fn store() -> TripleStore {
        TripleStore::from_turtle(
            r#"
            @prefix ex: <http://e/> .
            @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
            ex:a a ex:C ; rdfs:label "A \"quoted\" label"@en ; ex:n 42 .
            ex:b a ex:C .
            _:x a ex:C .
            "#,
        )
        .unwrap()
    }

    #[test]
    fn json_parser_handles_primitives() {
        assert_eq!(parse_json("null").unwrap(), Json::Null);
        assert_eq!(parse_json("true").unwrap(), Json::Bool(true));
        assert_eq!(parse_json("-2.5e2").unwrap(), Json::Number(-250.0));
        assert_eq!(
            parse_json(r#""a\nbA""#).unwrap(),
            Json::String("a\nbA".into())
        );
        assert_eq!(parse_json(r#""😀""#).unwrap(), Json::String("😀".into()));
    }

    #[test]
    fn json_parser_handles_structures() {
        let v = parse_json(r#"{"a": [1, 2], "b": {"c": "d"}, "e": []}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("d"));
        assert_eq!(v.get("e").unwrap().as_array().unwrap().len(), 0);
    }

    #[test]
    fn json_parser_rejects_garbage() {
        for bad in ["{", "[1,", r#""unterminated"#, "tru", "{}extra", "{1: 2}"] {
            assert!(parse_json(bad).is_err(), "should reject {bad}");
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let s = store();
        let sol = Executor::new(&s)
            .run("SELECT ?x ?l WHERE { ?x a <http://e/C> OPTIONAL { ?x <http://www.w3.org/2000/01/rdf-schema#label> ?l } }")
            .unwrap();
        let wire = encode_solutions(&sol, &s);
        let decoded = decode_solutions(&wire, &s).unwrap();
        assert_eq!(decoded.vars, sol.vars);
        assert_eq!(decoded.rows.len(), sol.rows.len());
        // Every term resolves back to the same id.
        for (a, b) in sol.rows.iter().zip(&decoded.rows) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn encode_computed_values() {
        let s = store();
        let sol = Executor::new(&s)
            .run("SELECT (COUNT(*) AS ?n) WHERE { ?x a <http://e/C> }")
            .unwrap();
        let wire = encode_solutions(&sol, &s);
        assert!(wire.contains("\"3\""));
        assert!(wire.contains(elinda_rdf::vocab::xsd::INTEGER));
        let decoded = decode_solutions(&wire, &s).unwrap();
        // "3"^^xsd:integer is not in the interner, so it decodes as Int.
        assert_eq!(decoded.rows[0][0], Some(Value::Int(3)));
    }

    #[test]
    fn unknown_terms_decode_as_strings() {
        let s = store();
        let wire = r#"{"head":{"vars":["x"]},"results":{"bindings":[{"x":{"type":"uri","value":"http://elsewhere/unseen"}}]}}"#;
        let decoded = decode_solutions(wire, &s).unwrap();
        assert_eq!(
            decoded.rows[0][0],
            Some(Value::Str("http://elsewhere/unseen".into()))
        );
    }

    #[test]
    fn unbound_cells_survive_the_wire() {
        let s = store();
        let sol = Solutions {
            vars: vec!["a".into(), "b".into()],
            rows: vec![vec![Some(Value::Int(1)), None]],
        };
        let wire = encode_solutions(&sol, &s);
        let decoded = decode_solutions(&wire, &s).unwrap();
        assert_eq!(decoded.rows[0][1], None);
    }
}
