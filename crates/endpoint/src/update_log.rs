//! Serialization of parsed [`Update`]s as WAL record payloads.
//!
//! The WAL in `elinda-store` frames and checksums opaque byte payloads;
//! this module defines what goes inside them for the update path: a
//! compact tag + length-prefixed binary encoding of the `Update` AST,
//! using the same term-tag convention as the persistent dictionary
//! (`IRI = 0`, plain / language-tagged / typed literal = 1 / 2 / 3) and
//! little-endian length prefixes. Decoding runs on recovery replay —
//! after the record's checksum has already validated — so any decode
//! failure is structural corruption and maps to a typed
//! [`WalError::Corrupt`], never a panic and never silently-invented
//! data.

use elinda_rdf::{Literal, LiteralKind, Term};
use elinda_sparql::{GroundTriple, Update, UpdateOp};
use elinda_store::WalError;

/// Payload format version, bumped on incompatible changes.
const CODEC_VERSION: u8 = 1;

/// Term tags, matching the dictionary codec in `elinda-store`.
const TAG_IRI: u8 = 0;
const TAG_PLAIN: u8 = 1;
const TAG_LANG: u8 = 2;
const TAG_TYPED: u8 = 3;

/// Operation tags.
const OP_INSERT: u8 = 0;
const OP_DELETE: u8 = 1;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_term(out: &mut Vec<u8>, term: &Term) {
    match term {
        Term::Iri(iri) => {
            out.push(TAG_IRI);
            put_str(out, iri);
        }
        Term::Literal(lit) => match lit.kind() {
            LiteralKind::Plain => {
                out.push(TAG_PLAIN);
                put_str(out, lit.lexical());
            }
            LiteralKind::Lang(tag) => {
                out.push(TAG_LANG);
                put_str(out, lit.lexical());
                put_str(out, tag);
            }
            LiteralKind::Typed(dt) => {
                out.push(TAG_TYPED);
                put_str(out, lit.lexical());
                put_str(out, dt);
            }
        },
    }
}

/// Encode `update` as a WAL record payload.
pub fn encode_update(update: &Update) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + update.triple_count() * 48);
    out.push(CODEC_VERSION);
    put_u32(&mut out, update.ops.len() as u32);
    for op in &update.ops {
        let (tag, triples) = match op {
            UpdateOp::InsertData(t) => (OP_INSERT, t),
            UpdateOp::DeleteData(t) => (OP_DELETE, t),
        };
        out.push(tag);
        put_u32(&mut out, triples.len() as u32);
        for t in triples {
            put_term(&mut out, &t.s);
            put_term(&mut out, &t.p);
            put_term(&mut out, &t.o);
        }
    }
    out
}

/// Bounds-checked reader over a record payload; short reads are
/// structural corruption (the record checksum already passed).
struct PayloadReader<'a> {
    label: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    fn corrupt(&self, detail: impl Into<String>) -> WalError {
        WalError::corrupt(self.label, detail)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WalError> {
        if self.bytes.len() - self.pos < n {
            return Err(self.corrupt(format!(
                "payload ends early (needed {n} bytes at offset {})",
                self.pos
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn read_u8(&mut self) -> Result<u8, WalError> {
        Ok(self.take(1)?[0])
    }

    fn read_u32(&mut self) -> Result<u32, WalError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn read_str(&mut self) -> Result<&'a str, WalError> {
        let len = self.read_u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| self.corrupt("invalid UTF-8 in string field"))
    }

    fn read_term(&mut self) -> Result<Term, WalError> {
        match self.read_u8()? {
            TAG_IRI => Ok(Term::iri(self.read_str()?)),
            TAG_PLAIN => Ok(Term::Literal(Literal::plain(self.read_str()?))),
            TAG_LANG => {
                let lexical = self.read_str()?.to_string();
                let tag = self.read_str()?;
                Ok(Term::Literal(Literal::lang(lexical, tag)))
            }
            TAG_TYPED => {
                let lexical = self.read_str()?.to_string();
                let dt = self.read_str()?;
                Ok(Term::Literal(Literal::typed(lexical, dt)))
            }
            other => Err(self.corrupt(format!("unknown term tag {other}"))),
        }
    }
}

/// Decode a WAL record payload back into the [`Update`] it encoded.
/// `label` names the record in error messages (e.g. `wal record #7`).
pub fn decode_update(label: &str, payload: &[u8]) -> Result<Update, WalError> {
    let mut r = PayloadReader {
        label,
        bytes: payload,
        pos: 0,
    };
    let version = r.read_u8()?;
    if version != CODEC_VERSION {
        return Err(r.corrupt(format!("unsupported update codec version {version}")));
    }
    let op_count = r.read_u32()?;
    let mut ops = Vec::new();
    for _ in 0..op_count {
        let tag = r.read_u8()?;
        let triple_count = r.read_u32()?;
        let mut triples = Vec::new();
        for _ in 0..triple_count {
            let s = r.read_term()?;
            let p = r.read_term()?;
            let o = r.read_term()?;
            // The parser enforces IRI subjects and predicates; a decoded
            // record claiming otherwise is corrupt, not a new feature.
            if !s.is_iri() || !p.is_iri() {
                return Err(r.corrupt("non-IRI subject or predicate"));
            }
            triples.push(GroundTriple::new(s, p, o));
        }
        ops.push(match tag {
            OP_INSERT => UpdateOp::InsertData(triples),
            OP_DELETE => UpdateOp::DeleteData(triples),
            other => return Err(r.corrupt(format!("unknown op tag {other}"))),
        });
    }
    if r.pos != payload.len() {
        return Err(r.corrupt(format!(
            "{} trailing bytes after the last op",
            payload.len() - r.pos
        )));
    }
    Ok(Update { ops })
}

#[cfg(test)]
mod tests {
    use super::*;
    use elinda_sparql::parse_update;
    use proptest::prelude::*;

    fn round_trip(update: &Update) -> Update {
        decode_update("test-record", &encode_update(update)).unwrap()
    }

    #[test]
    fn parsed_updates_round_trip() {
        for text in [
            "INSERT DATA { <http://e/x> <http://e/p> <http://e/y> }",
            "PREFIX ex: <http://e/> DELETE DATA { ex:a ex:p ex:b }",
            "INSERT DATA { <http://e/x> <http://e/label> \"zé \\\"q\\\"\"@fr . \
             <http://e/x> <http://e/age> 42 } ; \
             DELETE DATA { <http://e/y> <http://e/label> \"plain\" }",
        ] {
            let update = parse_update(text).unwrap();
            assert_eq!(round_trip(&update), update, "{text}");
        }
    }

    #[test]
    fn empty_update_round_trips() {
        let update = Update { ops: Vec::new() };
        assert_eq!(round_trip(&update), update);
        assert_eq!(encode_update(&update).len(), 5);
    }

    #[test]
    fn boundary_lexical_sizes_round_trip() {
        // Sizes straddling the u8/u16 boundaries of the length prefix
        // (the prefix is u32, so these exercise multi-byte lengths and
        // the empty case).
        for n in [0usize, 1, 255, 256, 65535, 65536] {
            let lexical = "x".repeat(n);
            let update = Update {
                ops: vec![UpdateOp::InsertData(vec![GroundTriple::new(
                    Term::iri("http://e/s"),
                    Term::iri("http://e/p"),
                    Term::Literal(Literal::plain(lexical)),
                )])],
            };
            assert_eq!(round_trip(&update), update, "lexical size {n}");
        }
    }

    #[test]
    fn truncation_at_every_offset_is_typed_corruption() {
        let update = parse_update(
            "INSERT DATA { <http://e/x> <http://e/p> \"v\"@en } ; \
             DELETE DATA { <http://e/x> <http://e/q> \"42\"^^<http://www.w3.org/2001/XMLSchema#integer> }",
        )
        .unwrap();
        let bytes = encode_update(&update);
        for cut in 0..bytes.len() {
            match decode_update("cut", &bytes[..cut]) {
                Err(WalError::Corrupt { .. }) => {}
                Err(other) => panic!("cut {cut}: unexpected error {other}"),
                Ok(decoded) => panic!("cut {cut}: decoded {decoded:?} from a truncated payload"),
            }
        }
        assert_eq!(decode_update("full", &bytes).unwrap(), update);
    }

    #[test]
    fn trailing_bytes_and_bad_tags_are_rejected() {
        let update =
            parse_update("INSERT DATA { <http://e/x> <http://e/p> <http://e/y> }").unwrap();
        let mut bytes = encode_update(&update);
        bytes.push(0);
        assert!(matches!(
            decode_update("trail", &bytes),
            Err(WalError::Corrupt { .. })
        ));
        let mut bytes = encode_update(&update);
        bytes[0] = 9; // codec version
        assert!(matches!(
            decode_update("ver", &bytes),
            Err(WalError::Corrupt { .. })
        ));
        let mut bytes = encode_update(&update);
        bytes[5] = 7; // op tag
        assert!(matches!(
            decode_update("op", &bytes),
            Err(WalError::Corrupt { .. })
        ));
    }

    #[test]
    fn literal_subject_is_rejected_on_decode() {
        // Hand-encode a triple whose subject is a literal: the parser
        // could never produce it, so decode must refuse it.
        let mut out = vec![CODEC_VERSION];
        put_u32(&mut out, 1);
        out.push(OP_INSERT);
        put_u32(&mut out, 1);
        put_term(&mut out, &Term::Literal(Literal::plain("s")));
        put_term(&mut out, &Term::iri("http://e/p"));
        put_term(&mut out, &Term::iri("http://e/o"));
        assert!(matches!(
            decode_update("lit-subj", &out),
            Err(WalError::Corrupt { .. })
        ));
    }

    // -- satellite: proptest round-trips over the full AST shape --------

    fn arb_term() -> impl Strategy<Value = Term> {
        prop_oneof![
            "[a-z]{0,12}".prop_map(|s| Term::iri(format!("http://e/{s}"))),
            "[a-z ]{0,16}".prop_map(|s| Term::Literal(Literal::plain(s))),
            ("[a-z]{0,8}", "[a-z]{2}").prop_map(|(s, t)| Term::Literal(Literal::lang(s, t))),
            (
                "[0-9]{1,6}",
                prop_oneof![
                    Just("http://www.w3.org/2001/XMLSchema#integer"),
                    Just("http://www.w3.org/2001/XMLSchema#string"),
                ]
            )
                .prop_map(|(s, dt)| Term::Literal(Literal::typed(s, dt))),
        ]
    }

    fn arb_ground() -> impl Strategy<Value = GroundTriple> {
        ("[a-z]{1,8}", "[a-z]{1,8}", arb_term()).prop_map(|(s, p, o)| {
            GroundTriple::new(
                Term::iri(format!("http://e/{s}")),
                Term::iri(format!("http://e/{p}")),
                o,
            )
        })
    }

    fn arb_update() -> impl Strategy<Value = Update> {
        let op = (any::<bool>(), proptest::collection::vec(arb_ground(), 0..6)).prop_map(
            |(insert, triples)| {
                if insert {
                    UpdateOp::InsertData(triples)
                } else {
                    UpdateOp::DeleteData(triples)
                }
            },
        );
        proptest::collection::vec(op, 0..5).prop_map(|ops| Update { ops })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn any_update_round_trips_byte_exactly(update in arb_update()) {
            let bytes = encode_update(&update);
            let decoded = decode_update("prop", &bytes).unwrap();
            prop_assert_eq!(&decoded, &update);
            // Re-encoding is deterministic: the log is byte-stable.
            prop_assert_eq!(encode_update(&decoded), bytes);
        }

        #[test]
        fn any_truncation_errors_never_panics(update in arb_update(), cut_draw in 0u64..10_000) {
            let bytes = encode_update(&update);
            let cut = (cut_draw as usize) % bytes.len().max(1);
            if cut < bytes.len() {
                prop_assert!(decode_update("prop-cut", &bytes[..cut]).is_err());
            }
        }
    }
}
