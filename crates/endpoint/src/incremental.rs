//! Incremental evaluation.
//!
//! "ELINDA builds the chart of an expansion by computing it on the first
//! N triples in the RDF graph. It then continues to compute the query on
//! the next N triples and aggregates the results in the frontend. It
//! continues for k steps, or until the full chart is computed. In the
//! current implementation, the parameters N and k are determined by an
//! administrator's configuration." (Section 4)
//!
//! [`IncrementalPropertyChart`] implements this for the heavy chart — the
//! property expansion. The triple stream is the store's SPO order for
//! outgoing charts (POS for incoming), so each `(s, p)` aggregation run
//! is contiguous; a one-element carry across window boundaries keeps the
//! partial counts exact. After every window the evaluator reports a
//! [`PartialChart`] — the "frontend aggregation" — so the UI can render a
//! progressively completing chart with bounded latency per step.

use elinda_rdf::fx::{FxHashMap, FxHashSet};
use elinda_rdf::{TermId, Triple};
use elinda_sparql::{Solutions, Value};
use elinda_store::{ClassHierarchy, TripleStore};

/// Administrator configuration: the window size `N` and step budget `k`.
#[derive(Debug, Clone, Copy)]
pub struct IncrementalConfig {
    /// Triples per evaluation window (`N`).
    pub chunk_size: usize,
    /// Maximum number of windows to evaluate (`k`); `None` runs to
    /// completion.
    pub max_steps: Option<usize>,
}

impl Default for IncrementalConfig {
    fn default() -> Self {
        IncrementalConfig {
            chunk_size: 50_000,
            max_steps: None,
        }
    }
}

/// Direction of the chart being computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChartDirection {
    /// Instances as subjects (stream in SPO order).
    Outgoing,
    /// Instances as objects (stream in POS order).
    Incoming,
}

/// A frontend snapshot after one evaluation window.
#[derive(Debug, Clone)]
pub struct PartialChart {
    /// `property → (distinct entities so far, triples so far)`.
    pub rows: Vec<(TermId, u64, u64)>,
    /// Triples consumed so far.
    pub triples_seen: usize,
    /// Windows evaluated so far.
    pub steps: usize,
    /// True when the whole graph has been consumed (the chart is exact).
    pub complete: bool,
}

impl PartialChart {
    /// Convert to a [`Solutions`] with the canonical `(p, count, sp)`
    /// columns.
    pub fn to_solutions(&self) -> Solutions {
        Solutions {
            vars: vec!["p".into(), "count".into(), "sp".into()],
            rows: self
                .rows
                .iter()
                .map(|&(p, c, s)| {
                    vec![
                        Some(Value::Term(p)),
                        Some(Value::Int(c as i64)),
                        Some(Value::Int(s as i64)),
                    ]
                })
                .collect(),
        }
    }
}

/// The incremental property-chart evaluator.
pub struct IncrementalPropertyChart<'a> {
    store: &'a TripleStore,
    members: FxHashSet<TermId>,
    direction: ChartDirection,
    config: IncrementalConfig,
    // Aggregation state.
    agg: FxHashMap<TermId, (u64, u64)>,
    pos: usize,
    steps: usize,
    // Carry: the (entity, property) run currently open at a window edge.
    open_run: Option<(TermId, TermId)>,
}

impl<'a> IncrementalPropertyChart<'a> {
    /// Start an incremental evaluation of the property chart for a class.
    pub fn for_class(
        store: &'a TripleStore,
        hierarchy: &ClassHierarchy,
        class: TermId,
        direction: ChartDirection,
        config: IncrementalConfig,
    ) -> Self {
        let members: FxHashSet<TermId> = hierarchy.instances(store, class).into_iter().collect();
        Self::for_members(store, members, direction, config)
    }

    /// Start over an explicit member set.
    pub fn for_members(
        store: &'a TripleStore,
        members: FxHashSet<TermId>,
        direction: ChartDirection,
        config: IncrementalConfig,
    ) -> Self {
        IncrementalPropertyChart {
            store,
            members,
            direction,
            config,
            agg: FxHashMap::default(),
            pos: 0,
            steps: 0,
            open_run: None,
        }
    }

    fn stream(&self) -> &'a [Triple] {
        match self.direction {
            ChartDirection::Outgoing => self.store.spo_slice(),
            ChartDirection::Incoming => self.store.pos_slice(),
        }
    }

    /// Entity/property of a streamed triple under the current direction.
    fn key(&self, t: Triple) -> (TermId, TermId) {
        match self.direction {
            ChartDirection::Outgoing => (t.s, t.p),
            ChartDirection::Incoming => (t.o, t.p),
        }
    }

    /// True if the evaluation has consumed the whole stream or exhausted
    /// its step budget.
    pub fn is_finished(&self) -> bool {
        self.pos >= self.stream().len() || self.config.max_steps.is_some_and(|k| self.steps >= k)
    }

    /// Evaluate one window of `N` triples and return the refreshed
    /// frontend snapshot; `None` if already finished.
    pub fn step(&mut self) -> Option<PartialChart> {
        if self.is_finished() {
            return None;
        }
        let stream = self.stream();
        let end = self
            .pos
            .saturating_add(self.config.chunk_size)
            .min(stream.len());
        for &t in &stream[self.pos..end] {
            let (entity, prop) = self.key(t);
            if !self.members.contains(&entity) {
                continue;
            }
            let e = self.agg.entry(prop).or_default();
            e.1 += 1;
            // A new (entity, property) run contributes one distinct entity.
            if self.open_run != Some((entity, prop)) {
                e.0 += 1;
                self.open_run = Some((entity, prop));
            }
        }
        // Runs are contiguous in SPO order but a window edge may split one;
        // `open_run` carries across windows. (In POS order the runs are
        // (p, o)-contiguous; the key (o, p) preserves run contiguity too.)
        self.pos = end;
        self.steps += 1;
        Some(self.snapshot())
    }

    /// Run to completion (or the step budget), returning the final
    /// snapshot.
    pub fn run(&mut self) -> PartialChart {
        while self.step().is_some() {}
        self.snapshot()
    }

    /// The current frontend snapshot.
    pub fn snapshot(&self) -> PartialChart {
        let mut rows: Vec<(TermId, u64, u64)> =
            self.agg.iter().map(|(&p, &(c, s))| (p, c, s)).collect();
        rows.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        PartialChart {
            rows,
            triples_seen: self.pos,
            steps: self.steps,
            complete: self.pos >= self.stream().len(),
        }
    }
}

// ---------------------------------------------------------------------------
// Frontier-seeded evaluation
// ---------------------------------------------------------------------------
//
// The second half of incremental evaluation: when the router has the parent
// bar's entity frontier cached (see [`crate::cache::ResultCache`]), a child
// expansion seeds from that frontier instead of re-deriving the instance set
// from the store. The evaluators below replicate the exact aggregation loops
// of [`crate::decomposer::execute_decomposed`] and the sharded partials in
// [`crate::parallel`] over an explicit member slice, so their results are
// byte-identical to cold evaluation whenever the slice equals the class's
// instance set — which [`seed_child_frontier`] guarantees by cardinality
// verification before handing a derived frontier out.

use crate::decomposer::{ExpansionDirection, PropertyExpansionQuery};
use crate::engine::ServeError;
use crate::parallel::{
    merge_incoming_partials, merge_outgoing_partials, property_agg_solutions,
    property_partial_incoming, property_partial_outgoing, sorted_intersection_len, try_map_shards,
    ParallelReport, Parallelism,
};
use crate::resilience::Deadline;
use crate::trace::TraceCtx;
use elinda_store::ShardedTripleStore;

/// Sequential property expansion over an explicit member frontier.
///
/// Mirrors [`crate::decomposer::execute_decomposed`] exactly, minus the
/// instance-set derivation: same scans, same aggregation, same canonical
/// finisher — so the result is byte-identical when `members` equals the
/// sorted instance set of `q.class`.
pub fn execute_decomposed_from_frontier(
    store: &TripleStore,
    members: &[TermId],
    q: &PropertyExpansionQuery,
) -> Solutions {
    let mut agg: FxHashMap<TermId, (i64, i64)> = FxHashMap::default();
    match q.direction {
        ExpansionDirection::Outgoing => {
            for &s in members {
                let range = store.spo_range(s, None);
                let mut i = 0;
                while i < range.len() {
                    let p = range[i].p;
                    let run = range[i..].partition_point(|t| t.p == p);
                    let e = agg.entry(p).or_default();
                    e.0 += 1;
                    e.1 += run as i64;
                    i += run;
                }
            }
        }
        ExpansionDirection::Incoming => {
            let mut props: Vec<TermId> = Vec::new();
            for &o in members {
                props.clear();
                props.extend(store.osp_range(o, None).iter().map(|t| t.p));
                props.sort_unstable();
                let mut i = 0;
                while i < props.len() {
                    let p = props[i];
                    let run = props[i..].partition_point(|&x| x == p);
                    let e = agg.entry(p).or_default();
                    e.0 += 1;
                    e.1 += run as i64;
                    i += run;
                }
            }
        }
    }
    property_agg_solutions(agg, &q.columns, store)
}

/// Sharded property expansion over an explicit member frontier, under a
/// [`Deadline`], with `fanout`/`shard/<i>`/`merge` spans under `parent`.
///
/// Same partials, merge, and finisher as
/// [`crate::parallel::try_execute_decomposed_sharded`], so byte-identical
/// to every other tier when `members` equals the class's instance set.
#[allow(clippy::too_many_arguments)]
pub fn try_execute_sharded_from_frontier(
    store: &TripleStore,
    sharded: &ShardedTripleStore,
    members: &[TermId],
    q: &PropertyExpansionQuery,
    par: &Parallelism,
    deadline: Deadline,
    trace: &TraceCtx,
    parent: u32,
) -> Result<(Solutions, ParallelReport), ServeError> {
    let n = sharded.num_shards();
    let (agg, report) = match q.direction {
        ExpansionDirection::Outgoing => {
            let (partials, report) =
                try_map_shards(sharded, par.threads, deadline, trace, parent, |i, shard| {
                    property_partial_outgoing(shard, i, n, members)
                })?;
            let _merge = trace.span_under(parent, "merge");
            (merge_outgoing_partials(partials), report)
        }
        ExpansionDirection::Incoming => {
            let (partials, report) =
                try_map_shards(sharded, par.threads, deadline, trace, parent, |_, shard| {
                    property_partial_incoming(shard, members)
                })?;
            let _merge = trace.span_under(parent, "merge");
            (merge_incoming_partials(partials), report)
        }
    };
    Ok((property_agg_solutions(agg, &q.columns, store), report))
}

/// Subclass rollup seeded from a member frontier: bar heights for each
/// direct subclass of `class`, counting members that are also instances
/// of the subclass. Equals [`crate::parallel::subclass_rollup`] when
/// `members` is the instance set of `class`.
pub fn subclass_rollup_from_frontier(
    store: &TripleStore,
    hierarchy: &ClassHierarchy,
    members: &[TermId],
    class: TermId,
) -> Solutions {
    let counts = hierarchy
        .direct_subclasses(class)
        .iter()
        .map(|&sub| {
            let sub_instances = hierarchy.instances(store, sub);
            (sub, sorted_intersection_len(members, &sub_instances) as i64)
        })
        .collect();
    crate::parallel::subclass_rollup_solutions(counts, store)
}

/// Object rollup seeded from a member frontier: the nodes connected to
/// `members` via `prop` (objects when outgoing, subjects when incoming),
/// grouped by class with distinct-node counts. Equals
/// [`crate::parallel::object_rollup`] when `members` is the instance set.
pub fn object_rollup_from_frontier(
    store: &TripleStore,
    hierarchy: &ClassHierarchy,
    members: &[TermId],
    prop: TermId,
    direction: ExpansionDirection,
) -> Solutions {
    let mut connected: Vec<TermId> = Vec::new();
    for &s in members {
        match direction {
            ExpansionDirection::Outgoing => connected.extend(store.objects_of(s, prop)),
            ExpansionDirection::Incoming => connected.extend(store.subjects_with(prop, s)),
        }
    }
    connected.sort_unstable();
    connected.dedup();
    let mut agg: FxHashMap<TermId, i64> = FxHashMap::default();
    for &o in &connected {
        for c in hierarchy.classes_of(store, o) {
            *agg.entry(c).or_default() += 1;
        }
    }
    crate::parallel::object_rollup_solutions(agg, store)
}

/// Derives the frontier of `child` from its parent's cached frontier:
/// keeps the parent members with an explicit `(e, rdf:type, child)`
/// triple, then verifies the result is the *complete* instance set by
/// cardinality (a subset of equal size is equal). Returns `None` — fall
/// back to cold evaluation — when some `child` instance is not a parent
/// member (non-materialized hierarchies) or the store lacks `rdf:type`.
pub fn seed_child_frontier(
    store: &TripleStore,
    hierarchy: &ClassHierarchy,
    parent_members: &[TermId],
    child: TermId,
) -> Option<Vec<TermId>> {
    let candidate: Vec<TermId> = parent_members
        .iter()
        .copied()
        .filter(|&e| hierarchy.is_instance_of(store, e, child))
        .collect();
    if candidate.len() == hierarchy.instance_count(store, child) {
        Some(candidate)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposer::{
        execute_decomposed, property_expansion_sparql, recognize_property_expansion,
        ExpansionDirection,
    };
    use elinda_sparql::parse_query;

    fn store() -> TripleStore {
        TripleStore::from_turtle(
            r#"
            @prefix ex: <http://e/> .
            @prefix owl: <http://www.w3.org/2002/07/owl#> .
            ex:a a owl:Thing ; ex:p ex:b , ex:c , ex:d ; ex:q ex:b .
            ex:b a owl:Thing ; ex:p ex:c ; ex:r ex:a .
            ex:c a owl:Thing .
            ex:d a owl:Thing ; ex:q ex:a , ex:b .
            ex:outside ex:p ex:a .
            "#,
        )
        .unwrap()
    }

    fn final_rows(
        store: &TripleStore,
        direction: ChartDirection,
        chunk: usize,
        k: Option<usize>,
    ) -> PartialChart {
        let h = ClassHierarchy::build(store);
        let thing = store.lookup_iri(elinda_rdf::vocab::owl::THING).unwrap();
        let mut inc = IncrementalPropertyChart::for_class(
            store,
            &h,
            thing,
            direction,
            IncrementalConfig {
                chunk_size: chunk,
                max_steps: k,
            },
        );
        inc.run()
    }

    #[test]
    fn completes_and_matches_decomposer_every_chunk_size() {
        let store = store();
        let h = ClassHierarchy::build(&store);
        for direction in [ChartDirection::Outgoing, ChartDirection::Incoming] {
            let exp_dir = match direction {
                ChartDirection::Outgoing => ExpansionDirection::Outgoing,
                ChartDirection::Incoming => ExpansionDirection::Incoming,
            };
            let q = parse_query(&property_expansion_sparql(
                elinda_rdf::vocab::owl::THING,
                exp_dir,
            ))
            .unwrap();
            let rec = recognize_property_expansion(&q).unwrap();
            let reference = execute_decomposed(&store, &h, &rec);
            let mut ref_rows: Vec<(TermId, i64, i64)> = reference
                .rows
                .iter()
                .map(|r| {
                    let p = match r[0] {
                        Some(Value::Term(id)) => id,
                        _ => panic!(),
                    };
                    let c = match r[1] {
                        Some(Value::Int(n)) => n,
                        _ => panic!(),
                    };
                    let s = match r[2] {
                        Some(Value::Int(n)) => n,
                        _ => panic!(),
                    };
                    (p, c, s)
                })
                .collect();
            ref_rows.sort_unstable();

            // Window sizes that split runs at every possible boundary.
            for chunk in 1..=store.len() {
                let partial = final_rows(&store, direction, chunk, None);
                assert!(partial.complete);
                let mut rows: Vec<(TermId, i64, i64)> = partial
                    .rows
                    .iter()
                    .map(|&(p, c, s)| (p, c as i64, s as i64))
                    .collect();
                rows.sort_unstable();
                assert_eq!(rows, ref_rows, "direction {direction:?} chunk {chunk}");
            }
        }
    }

    #[test]
    fn step_budget_yields_partial_chart() {
        let store = store();
        let partial = final_rows(&store, ChartDirection::Outgoing, 3, Some(2));
        assert!(!partial.complete);
        assert_eq!(partial.steps, 2);
        assert_eq!(partial.triples_seen, 6);
    }

    #[test]
    fn snapshots_grow_monotonically() {
        let store = store();
        let h = ClassHierarchy::build(&store);
        let thing = store.lookup_iri(elinda_rdf::vocab::owl::THING).unwrap();
        let mut inc = IncrementalPropertyChart::for_class(
            &store,
            &h,
            thing,
            ChartDirection::Outgoing,
            IncrementalConfig {
                chunk_size: 2,
                max_steps: None,
            },
        );
        let mut last_total = 0u64;
        let mut snapshots = 0;
        while let Some(snap) = inc.step() {
            let total: u64 = snap.rows.iter().map(|&(_, _, s)| s).sum();
            assert!(total >= last_total, "partial counts must never shrink");
            last_total = total;
            snapshots += 1;
        }
        assert_eq!(snapshots, store.len().div_ceil(2));
    }

    #[test]
    fn to_solutions_has_canonical_columns() {
        let store = store();
        let partial = final_rows(&store, ChartDirection::Outgoing, 100, None);
        let sol = partial.to_solutions();
        assert_eq!(sol.vars, vec!["p", "count", "sp"]);
        assert_eq!(sol.len(), partial.rows.len());
    }

    #[test]
    fn empty_member_set() {
        let store = store();
        let mut inc = IncrementalPropertyChart::for_members(
            &store,
            Default::default(),
            ChartDirection::Outgoing,
            IncrementalConfig {
                chunk_size: 4,
                max_steps: None,
            },
        );
        let final_chart = inc.run();
        assert!(final_chart.complete);
        assert!(final_chart.rows.is_empty());
    }

    /// A small materialized hierarchy: every Person is also typed Agent
    /// (DBpedia-style), plus one Agent that is not a Person.
    fn hierarchy_store() -> TripleStore {
        TripleStore::from_turtle(
            r#"
            @prefix ex: <http://e/> .
            @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
            ex:Person rdfs:subClassOf ex:Agent .
            ex:alice a ex:Agent , ex:Person ; ex:knows ex:bob ; ex:born ex:town .
            ex:bob a ex:Agent , ex:Person ; ex:knows ex:alice .
            ex:org a ex:Agent ; ex:owns ex:town .
            ex:town a ex:Place .
            "#,
        )
        .unwrap()
    }

    fn rec_for(
        store: &TripleStore,
        class: &str,
        dir: ExpansionDirection,
    ) -> PropertyExpansionQuery {
        let q = parse_query(&property_expansion_sparql(class, dir)).unwrap();
        let _ = store;
        recognize_property_expansion(&q).unwrap()
    }

    #[test]
    fn frontier_seeded_matches_cold_both_directions() {
        let store = hierarchy_store();
        let h = ClassHierarchy::build(&store);
        let agent = store.lookup_iri("http://e/Agent").unwrap();
        let members = h.instances(&store, agent);
        for dir in [ExpansionDirection::Outgoing, ExpansionDirection::Incoming] {
            let rec = rec_for(&store, "http://e/Agent", dir);
            let cold = execute_decomposed(&store, &h, &rec);
            let seeded = execute_decomposed_from_frontier(&store, &members, &rec);
            assert_eq!(cold, seeded, "direction {dir:?}");
        }
    }

    #[test]
    fn sharded_frontier_seeded_matches_cold() {
        let store = hierarchy_store();
        let h = ClassHierarchy::build(&store);
        let sharded = elinda_store::ShardedTripleStore::build(&store, 3);
        let agent = store.lookup_iri("http://e/Agent").unwrap();
        let members = h.instances(&store, agent);
        for dir in [ExpansionDirection::Outgoing, ExpansionDirection::Incoming] {
            let rec = rec_for(&store, "http://e/Agent", dir);
            let cold = execute_decomposed(&store, &h, &rec);
            let (seeded, _report) = try_execute_sharded_from_frontier(
                &store,
                &sharded,
                &members,
                &rec,
                &Parallelism::fixed(2, 3),
                Deadline::unbounded(),
                &TraceCtx::disabled(),
                0,
            )
            .unwrap();
            assert_eq!(cold, seeded, "direction {dir:?}");
        }
    }

    #[test]
    fn seed_child_frontier_derives_and_verifies() {
        let store = hierarchy_store();
        let h = ClassHierarchy::build(&store);
        let agent = store.lookup_iri("http://e/Agent").unwrap();
        let person = store.lookup_iri("http://e/Person").unwrap();
        let agents = h.instances(&store, agent);
        let derived = seed_child_frontier(&store, &h, &agents, person).expect("materialized");
        assert_eq!(derived, h.instances(&store, person));
        // A frontier that misses a Person instance must be rejected.
        let partial: Vec<TermId> = agents
            .iter()
            .copied()
            .filter(|&e| e != derived[0])
            .collect();
        assert!(seed_child_frontier(&store, &h, &partial, person).is_none());
    }

    #[test]
    fn rollups_from_frontier_match_cold() {
        let store = hierarchy_store();
        let h = ClassHierarchy::build(&store);
        let agent = store.lookup_iri("http://e/Agent").unwrap();
        let members = h.instances(&store, agent);
        assert_eq!(
            crate::parallel::subclass_rollup(&store, &h, agent),
            subclass_rollup_from_frontier(&store, &h, &members, agent)
        );
        let knows = store.lookup_iri("http://e/knows").unwrap();
        for dir in [ExpansionDirection::Outgoing, ExpansionDirection::Incoming] {
            assert_eq!(
                crate::parallel::object_rollup(&store, &h, agent, knows, dir),
                object_rollup_from_frontier(&store, &h, &members, knows, dir),
                "direction {dir:?}"
            );
        }
    }
}
