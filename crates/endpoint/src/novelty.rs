//! [`NoveltyStore`]: the write path's staging overlay.
//!
//! eLinda's read stack is built on immutable snapshots: the store's
//! sorted permutations, the sharded view, the precomputed aggregates,
//! and every cache are all epoch-tagged artifacts of one frozen
//! [`TripleStore`]. The novelty overlay makes that stack writable
//! without giving up snapshot reads (the same shape as Fluree's
//! novelty/commit split): updates land in small `added`/`removed` delta
//! sets on top of an immutable **base**, and readers always consume a
//! fully-indexed merged **view** — an `Arc<TripleStore>` republished
//! copy-on-write per update batch, so an in-flight query keeps the
//! snapshot it started with while the next query sees the writes.
//!
//! A background compactor (driven by the server: a periodic tick plus a
//! size-threshold signal from [`NoveltyStore::apply`]) **folds** the
//! novelty into a new base: the merged view is promoted, the delta sets
//! drain to zero, and the epoch is bumped one extra time to mark the
//! compaction point — demoting every fresh cache entry to the stale
//! rungs of the resilience ladder, exactly the machinery PR-4/PR-5
//! built. The router then rebuilds its derived indexes
//! ([`crate::router::ElindaEndpoint::refresh`]) so the fast paths
//! (precomputed, sharded) re-establish on the new base.
//!
//! Between a write and the next compaction, recognized chart queries
//! still answer **correctly** — the view is a real indexed store — but
//! on the slower rungs (sequential decomposed or direct), because the
//! epoch-staleness checks refuse the pre-write index snapshots. That
//! transient degradation is intentional and observable
//! (`elinda_novelty_*` / `elinda_compaction_*` metrics).

use elinda_sparql::{Update, UpdateOp};
use elinda_store::TripleStore;
use parking_lot::RwLock;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

use elinda_rdf::Triple;

/// Write-path tuning knobs.
#[derive(Debug, Clone)]
pub struct NoveltyConfig {
    /// Once the overlay holds this many staged triples (added +
    /// removed), [`NoveltyStore::apply`] signals the compactor to run
    /// ahead of its periodic tick.
    pub max_triples: usize,
}

impl Default for NoveltyConfig {
    fn default() -> Self {
        NoveltyConfig { max_triples: 4096 }
    }
}

/// What one UPDATE request did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// Triples newly added by `INSERT DATA`.
    pub inserted: usize,
    /// Triples removed by `DELETE DATA`.
    pub deleted: usize,
    /// Triples whose insert/delete was a no-op (already present /
    /// already absent).
    pub noops: usize,
    /// The view epoch after this update.
    pub epoch: u64,
    /// Staged novelty size (added + removed) after this update.
    pub novelty: usize,
}

/// What one compaction cycle did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionReport {
    /// Staged triples folded into the new base.
    pub folded: usize,
    /// The epoch after the compaction bump.
    pub epoch: u64,
    /// Wall time of the fold itself (excluding index rebuilds).
    pub duration: Duration,
    /// On-disk generation the new base was committed as, filled in by
    /// the serving layer when a persistent backend is attached (`None`
    /// here and for memory-only serving).
    pub persisted_generation: Option<u64>,
}

/// Monotonic write-path counters plus current gauges, for `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoveltyStats {
    /// UPDATE requests applied (including all-noop ones).
    pub updates: u64,
    /// Total triples inserted.
    pub inserts: u64,
    /// Total triples deleted.
    pub deletes: u64,
    /// Total no-op triples.
    pub noops: u64,
    /// Current staged novelty size (added + removed).
    pub novelty_triples: usize,
    /// Compaction cycles completed.
    pub compactions: u64,
    /// Total staged triples folded across all compactions.
    pub folded_triples: u64,
    /// Duration of the most recent fold, in microseconds.
    pub last_compaction_us: u64,
    /// Current view epoch.
    pub epoch: u64,
    /// Epoch of the current base (last compaction point).
    pub base_epoch: u64,
}

struct Inner {
    /// The last compacted snapshot. Frozen; readers that need the
    /// pre-novelty state (none today) and the compactor's accounting
    /// anchor.
    base: Arc<TripleStore>,
    /// The published merged view: base + novelty, fully indexed.
    /// Republished copy-on-write per update batch, so in-flight readers
    /// keep their snapshot.
    view: Arc<TripleStore>,
    /// Triples in `view` but not in `base`.
    added: BTreeSet<Triple>,
    /// Triples in `base` but not in `view`. Disjoint from `added`.
    removed: BTreeSet<Triple>,
}

#[derive(Default)]
struct Counters {
    updates: AtomicU64,
    inserts: AtomicU64,
    deletes: AtomicU64,
    noops: AtomicU64,
    compactions: AtomicU64,
    folded: AtomicU64,
    last_compaction_us: AtomicU64,
}

/// The staging overlay: immutable base + delta sets + published merged
/// view. All methods take `&self`; the store is shared across server
/// workers and the compactor thread behind an `Arc`.
pub struct NoveltyStore {
    config: NoveltyConfig,
    inner: RwLock<Inner>,
    counters: Counters,
    /// Compactor wake-up: set when the size threshold is crossed (or on
    /// shutdown), consumed by [`NoveltyStore::wait_for_work`].
    work: StdMutex<bool>,
    work_cond: Condvar,
}

impl NoveltyStore {
    /// Wrap `base` as the initial (empty-novelty) overlay. The view
    /// starts as the base itself; the first write forks it.
    pub fn new(base: Arc<TripleStore>, config: NoveltyConfig) -> Self {
        NoveltyStore {
            config,
            inner: RwLock::new(Inner {
                view: Arc::clone(&base),
                base,
                added: BTreeSet::new(),
                removed: BTreeSet::new(),
            }),
            counters: Counters::default(),
            work: StdMutex::new(false),
            work_cond: Condvar::new(),
        }
    }

    /// The current merged view — what every read consumes. An `Arc`
    /// snapshot: later writes republish a new view and never mutate
    /// this one.
    pub fn view(&self) -> Arc<TripleStore> {
        Arc::clone(&self.inner.read().view)
    }

    /// The last compacted base snapshot.
    pub fn base(&self) -> Arc<TripleStore> {
        Arc::clone(&self.inner.read().base)
    }

    /// The current view epoch (monotone: bumped per applied triple and
    /// once more per compaction).
    pub fn epoch(&self) -> u64 {
        self.inner.read().view.epoch()
    }

    /// Staged novelty size: added + removed.
    pub fn novelty_len(&self) -> usize {
        let inner = self.inner.read();
        inner.added.len() + inner.removed.len()
    }

    /// True if any novelty is staged (a compaction would do work).
    pub fn is_dirty(&self) -> bool {
        self.novelty_len() > 0
    }

    /// The configured size threshold.
    pub fn max_triples(&self) -> usize {
        self.config.max_triples
    }

    /// Apply one parsed UPDATE request as a single batch: clone the
    /// current view once, run the operations in order, and republish.
    /// Inserting a present triple and deleting an absent one are no-ops
    /// (SPARQL UPDATE semantics); an all-noop request leaves the view
    /// Arc and the epoch untouched, so caches stay fresh.
    pub fn apply(&self, update: &Update) -> ApplyOutcome {
        match self.apply_with(update, |_| Ok::<(), std::convert::Infallible>(())) {
            Ok(outcome) => outcome,
            Err(never) => match never {},
        }
    }

    /// [`NoveltyStore::apply`] with a durability hook: `log` runs under
    /// the overlay write lock *before* any mutation, so the order of
    /// successful log calls is exactly the order updates take effect —
    /// the WAL's replay order matches apply order by construction. If
    /// `log` fails, the overlay is untouched and the error propagates;
    /// the update was neither logged nor applied.
    pub fn apply_with<E>(
        &self,
        update: &Update,
        log: impl FnOnce(&Update) -> Result<(), E>,
    ) -> Result<ApplyOutcome, E> {
        let mut inner = self.inner.write();
        log(update)?;
        let mut store = (*inner.view).clone();
        let (mut inserted, mut deleted, mut noops) = (0usize, 0usize, 0usize);
        for op in &update.ops {
            match op {
                UpdateOp::InsertData(triples) => {
                    for gt in triples {
                        let s = store.intern(gt.s.clone());
                        let p = store.intern(gt.p.clone());
                        let o = store.intern(gt.o.clone());
                        if store.insert(s, p, o) {
                            inserted += 1;
                            let t = Triple::new(s, p, o);
                            // Re-inserting a base triple deleted earlier
                            // cancels the staged removal instead of
                            // growing `added`.
                            if !inner.removed.remove(&t) {
                                inner.added.insert(t);
                            }
                        } else {
                            noops += 1;
                        }
                    }
                }
                UpdateOp::DeleteData(triples) => {
                    for gt in triples {
                        let ids = (
                            store.interner().get(&gt.s),
                            store.interner().get(&gt.p),
                            store.interner().get(&gt.o),
                        );
                        let (Some(s), Some(p), Some(o)) = ids else {
                            // A term the store has never seen cannot be
                            // part of a present triple.
                            noops += 1;
                            continue;
                        };
                        let t = Triple::new(s, p, o);
                        if store.remove(t) {
                            deleted += 1;
                            if !inner.added.remove(&t) {
                                inner.removed.insert(t);
                            }
                        } else {
                            noops += 1;
                        }
                    }
                }
            }
        }
        if inserted + deleted > 0 {
            inner.view = Arc::new(store);
        }
        let outcome = ApplyOutcome {
            inserted,
            deleted,
            noops,
            epoch: inner.view.epoch(),
            novelty: inner.added.len() + inner.removed.len(),
        };
        drop(inner);
        self.counters.updates.fetch_add(1, Ordering::Relaxed);
        self.counters
            .inserts
            .fetch_add(inserted as u64, Ordering::Relaxed);
        self.counters
            .deletes
            .fetch_add(deleted as u64, Ordering::Relaxed);
        self.counters
            .noops
            .fetch_add(noops as u64, Ordering::Relaxed);
        if outcome.novelty >= self.config.max_triples {
            self.notify();
        }
        Ok(outcome)
    }

    /// Fold the staged novelty into a new base: promote the merged view,
    /// clear the delta sets, and bump the epoch to mark the compaction
    /// point. Returns `None` when nothing is staged. The caller is
    /// responsible for rebuilding derived indexes afterwards
    /// ([`crate::router::ElindaEndpoint::refresh`]).
    pub fn compact(&self) -> Option<CompactionReport> {
        self.compact_with(|| {})
    }

    /// [`NoveltyStore::compact`] with a durability hook: `post_fold`
    /// runs under the overlay write lock immediately after the fold, so
    /// no update can land between the fold and the hook. The WAL layer
    /// uses it to seal the active log segment at exactly the fold point:
    /// every record at or before the seal is covered by the folded base,
    /// every record after it is novelty on top.
    pub fn compact_with(&self, post_fold: impl FnOnce()) -> Option<CompactionReport> {
        let start = Instant::now();
        let mut inner = self.inner.write();
        let folded = inner.added.len() + inner.removed.len();
        if folded == 0 {
            return None;
        }
        let mut new_base = (*inner.view).clone();
        let epoch = new_base.bump_epoch();
        let new_base = Arc::new(new_base);
        inner.base = Arc::clone(&new_base);
        inner.view = new_base;
        inner.added.clear();
        inner.removed.clear();
        post_fold();
        drop(inner);
        let duration = start.elapsed();
        self.counters.compactions.fetch_add(1, Ordering::Relaxed);
        self.counters
            .folded
            .fetch_add(folded as u64, Ordering::Relaxed);
        self.counters
            .last_compaction_us
            .store(duration.as_micros() as u64, Ordering::Relaxed);
        Some(CompactionReport {
            folded,
            epoch,
            duration,
            persisted_generation: None,
        })
    }

    /// Block until [`NoveltyStore::notify`] fires or `timeout` elapses.
    /// Returns `true` when signalled. The compactor thread's wait
    /// primitive: a periodic tick with early wake-up on threshold.
    pub fn wait_for_work(&self, timeout: Duration) -> bool {
        let guard = self.work.lock().expect("novelty signal mutex poisoned");
        let (mut guard, result) = self
            .work_cond
            .wait_timeout_while(guard, timeout, |signalled| !*signalled)
            .expect("novelty signal mutex poisoned");
        let signalled = !result.timed_out() || *guard;
        *guard = false;
        signalled
    }

    /// Wake the compactor thread (threshold crossed, or shutdown).
    pub fn notify(&self) {
        *self.work.lock().expect("novelty signal mutex poisoned") = true;
        self.work_cond.notify_all();
    }

    /// Counter + gauge snapshot for `/metrics`.
    pub fn stats(&self) -> NoveltyStats {
        let (novelty_triples, epoch, base_epoch) = {
            let inner = self.inner.read();
            (
                inner.added.len() + inner.removed.len(),
                inner.view.epoch(),
                inner.base.epoch(),
            )
        };
        NoveltyStats {
            updates: self.counters.updates.load(Ordering::Relaxed),
            inserts: self.counters.inserts.load(Ordering::Relaxed),
            deletes: self.counters.deletes.load(Ordering::Relaxed),
            noops: self.counters.noops.load(Ordering::Relaxed),
            novelty_triples,
            compactions: self.counters.compactions.load(Ordering::Relaxed),
            folded_triples: self.counters.folded.load(Ordering::Relaxed),
            last_compaction_us: self.counters.last_compaction_us.load(Ordering::Relaxed),
            epoch,
            base_epoch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elinda_sparql::parse_update;

    fn base() -> Arc<TripleStore> {
        Arc::new(
            TripleStore::from_turtle(
                r#"
                @prefix ex: <http://e/> .
                ex:a a ex:C ; ex:p ex:b .
                ex:b a ex:C .
                "#,
            )
            .unwrap(),
        )
    }

    fn novelty() -> NoveltyStore {
        NoveltyStore::new(base(), NoveltyConfig::default())
    }

    #[test]
    fn insert_is_visible_in_next_view_not_prior_snapshot() {
        let n = novelty();
        let before = n.view();
        let e0 = n.epoch();
        let out = n.apply(
            &parse_update("INSERT DATA { <http://e/x> <http://e/p> <http://e/y> }").unwrap(),
        );
        assert_eq!((out.inserted, out.deleted, out.noops), (1, 0, 0));
        assert_eq!(out.novelty, 1);
        assert!(out.epoch > e0);
        let after = n.view();
        assert_eq!(after.len(), before.len() + 1);
        // The pre-write snapshot is untouched: copy-on-write publishing.
        assert!(before.lookup_iri("http://e/x").is_none());
        assert_eq!(before.epoch(), e0);
    }

    #[test]
    fn noop_update_leaves_view_and_epoch_alone() {
        let n = novelty();
        let before = n.view();
        let out = n.apply(
            &parse_update(
                "PREFIX ex: <http://e/> INSERT DATA { ex:a ex:p ex:b } ; \
                 DELETE DATA { ex:ghost ex:p ex:ghost }",
            )
            .unwrap(),
        );
        assert_eq!((out.inserted, out.deleted, out.noops), (0, 0, 2));
        assert_eq!(out.novelty, 0);
        // Same Arc: no republish, caches built on it stay fresh.
        assert!(Arc::ptr_eq(&before, &n.view()));
    }

    #[test]
    fn delete_then_reinsert_cancels_out() {
        let n = novelty();
        n.apply(&parse_update("PREFIX ex: <http://e/> DELETE DATA { ex:a ex:p ex:b }").unwrap());
        assert_eq!(n.novelty_len(), 1);
        n.apply(&parse_update("PREFIX ex: <http://e/> INSERT DATA { ex:a ex:p ex:b }").unwrap());
        // The view matches the base again; the staged sets cancelled.
        assert_eq!(n.novelty_len(), 0);
        assert_eq!(n.view().len(), n.base().len());
        // But epochs moved: both mutations really happened.
        assert_eq!(n.epoch(), n.base().epoch() + 2);
    }

    #[test]
    fn compact_folds_and_bumps_epoch() {
        let n = novelty();
        assert!(n.compact().is_none(), "clean overlay has nothing to fold");
        n.apply(
            &parse_update(
                "INSERT DATA { <http://e/x> <http://e/p> <http://e/y> . \
                               <http://e/y> <http://e/p> <http://e/z> }",
            )
            .unwrap(),
        );
        let pre_epoch = n.epoch();
        let view_before = n.view();
        let report = n.compact().expect("dirty overlay must fold");
        assert_eq!(report.folded, 2);
        assert_eq!(report.epoch, pre_epoch + 1);
        assert_eq!(n.novelty_len(), 0);
        // Base and view coincide on the folded data.
        assert!(Arc::ptr_eq(&n.base(), &n.view()));
        assert_eq!(n.view().len(), view_before.len());
        let stats = n.stats();
        assert_eq!(stats.compactions, 1);
        assert_eq!(stats.folded_triples, 2);
        assert_eq!(stats.novelty_triples, 0);
    }

    #[test]
    fn threshold_signals_compactor() {
        let n = NoveltyStore::new(base(), NoveltyConfig { max_triples: 2 });
        assert!(!n.wait_for_work(Duration::from_millis(1)));
        n.apply(&parse_update("INSERT DATA { <http://e/x1> <http://e/p> <http://e/y> }").unwrap());
        assert!(!n.wait_for_work(Duration::from_millis(1)));
        n.apply(&parse_update("INSERT DATA { <http://e/x2> <http://e/p> <http://e/y> }").unwrap());
        assert!(n.wait_for_work(Duration::from_millis(100)));
        // The signal is consumed.
        assert!(!n.wait_for_work(Duration::from_millis(1)));
    }

    #[test]
    fn stats_accumulate_across_updates() {
        let n = novelty();
        n.apply(&parse_update("INSERT DATA { <http://e/x> <http://e/p> <http://e/y> }").unwrap());
        n.apply(&parse_update("DELETE DATA { <http://e/x> <http://e/p> <http://e/y> }").unwrap());
        n.apply(&parse_update("DELETE DATA { <http://e/x> <http://e/p> <http://e/y> }").unwrap());
        let s = n.stats();
        assert_eq!(s.updates, 3);
        assert_eq!(s.inserts, 1);
        assert_eq!(s.deletes, 1);
        assert_eq!(s.noops, 1);
        assert_eq!(s.novelty_triples, 0);
    }
}
