//! [`ElindaEndpoint`]: the full Fig. 3 serving stack.
//!
//! Routing, per the paper: check the HVS first; then the exploration
//! result cache (a fresh hit returns the finished chart bytes); if the
//! query is a recognized property expansion whose class frontier — or a
//! cached parent's — is available, evaluate incrementally from that
//! frontier; otherwise answer with the decomposer (precomputed >
//! sharded > sequential) or route to the direct ("Virtuoso") executor.
//! Measured runtimes at or above the heavy threshold are recorded in the
//! HVS, finished chart results and class frontiers in the result cache,
//! and both are invalidated whenever the knowledge base's epoch moves.
//!
//! Query text is canonicalized once at ingress
//! ([`crate::cache::normalize_query_text`]) and the normalized text is
//! used for parsing, HVS keys, and cache keys alike — so semantically
//! identical `GET`/`POST /sparql` spellings (whitespace, percent-encoded
//! IRIs, filter order) converge on one execution and one cache entry,
//! and a cache key can never alias two queries with different answers.

use crate::cache::{normalize_query_text, CacheConfig, CacheStats, ResultCache};
use crate::decomposer::{
    execute_decomposed, execute_precomputed, recognize_property_expansion, PropertyExpansionQuery,
};
use crate::engine::{QueryContext, QueryEngine, QueryOutcome, ServeError, ServedBy};
use crate::hvs::{HeavyQueryStore, HvsConfig, HvsStats};
use crate::incremental::{
    execute_decomposed_from_frontier, seed_child_frontier, try_execute_sharded_from_frontier,
};
use crate::novelty::{CompactionReport, NoveltyStore};
use crate::parallel::{try_execute_decomposed_sharded, ParallelStats, Parallelism};
use crate::trace::push_json_str;
use elinda_rdf::TermId;
use elinda_sparql::exec::QueryError;
use elinda_sparql::{parse_query, Executor};
use elinda_store::{ClassHierarchy, PropertyAggregates, ShardedTripleStore, TripleStore};
use parking_lot::{Mutex, RwLock};
use std::borrow::Borrow;
use std::sync::Arc;
use std::time::Instant;

/// How the decomposer answers recognized queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecomposerMode {
    /// Scan the instance index runs at query time (the default: no extra
    /// memory, works after any update without rebuilding).
    #[default]
    OnDemand,
    /// Serve from fully precomputed `(class, property)` aggregates
    /// materialized at endpoint construction — faster per query, paid for
    /// with preprocessing time and memory (the ablation variant).
    Precomputed,
}

/// Endpoint configuration: each acceleration can be toggled, as in the
/// demonstration ("with the discussed solutions turned on and off").
#[derive(Debug, Clone, Default)]
pub struct EndpointConfig {
    /// Serve previously-measured heavy queries from the HVS.
    pub enable_hvs: bool,
    /// Rewrite recognized property-expansion queries onto the indexes.
    pub enable_decomposer: bool,
    /// On-demand index scans or fully precomputed aggregates.
    pub decomposer_mode: DecomposerMode,
    /// HVS settings.
    pub hvs: HvsConfig,
    /// Intra-query parallelism budget for decomposed aggregations
    /// (default sequential). When it fans out, the endpoint builds a
    /// [`ShardedTripleStore`] snapshot at construction and answers
    /// recognized expansions with the map-per-shard / merge-partials
    /// evaluator — byte-identical to the sequential path on the wire.
    pub parallelism: Parallelism,
    /// Serve repeated chart queries from the epoch-aware result cache and
    /// seed child expansions from cached parent frontiers.
    pub enable_cache: bool,
    /// Result-cache sizing (entries, bytes, lock shards).
    pub cache: CacheConfig,
}

impl EndpointConfig {
    /// Everything on — the "eLinda endpoint" configuration of Fig. 4.
    pub fn full() -> Self {
        EndpointConfig {
            enable_hvs: true,
            enable_decomposer: true,
            decomposer_mode: DecomposerMode::OnDemand,
            hvs: HvsConfig::default(),
            parallelism: Parallelism::sequential(),
            enable_cache: true,
            cache: CacheConfig::default(),
        }
    }

    /// Everything off — the plain "Virtuoso SPARQL endpoint" baseline.
    pub fn baseline() -> Self {
        EndpointConfig {
            enable_hvs: false,
            enable_decomposer: false,
            decomposer_mode: DecomposerMode::OnDemand,
            hvs: HvsConfig::default(),
            parallelism: Parallelism::sequential(),
            enable_cache: false,
            cache: CacheConfig::default(),
        }
    }

    /// Decomposer only (no caching) — the "eLinda decomposer" bar of
    /// Fig. 4, and the cold-evaluation reference of the differential
    /// cache suite.
    pub fn decomposer_only() -> Self {
        EndpointConfig {
            enable_hvs: false,
            enable_decomposer: true,
            decomposer_mode: DecomposerMode::OnDemand,
            hvs: HvsConfig::default(),
            parallelism: Parallelism::sequential(),
            enable_cache: false,
            cache: CacheConfig::default(),
        }
    }

    /// [`EndpointConfig::full`] with an intra-query parallelism budget.
    pub fn parallel(parallelism: Parallelism) -> Self {
        EndpointConfig {
            parallelism,
            ..EndpointConfig::full()
        }
    }
}

/// The evaluation path picked by the route decision, carrying the
/// recognized property-expansion shape where one applies.
enum EvalPlan {
    /// Evaluate from a cached (or parent-derived) entity frontier instead
    /// of re-deriving the class's instance set.
    Incremental(PropertyExpansionQuery, Arc<Vec<TermId>>),
    /// Serve from the materialized `(class, property)` aggregates.
    Precomputed(PropertyExpansionQuery),
    /// Fan the decomposed aggregation across the shard snapshot.
    Sharded(PropertyExpansionQuery),
    /// Sequential decomposed evaluation on the live indexes.
    Decomposed(PropertyExpansionQuery),
    /// A recognized chart evaluated on the plain executor (the
    /// uncompacted-writes window, when no index generation matches the
    /// view), then canonicalized — byte-identical to the chart tiers.
    DirectChart(PropertyExpansionQuery),
    /// The plain SPARQL executor.
    Direct,
}

impl EvalPlan {
    fn name(&self) -> &'static str {
        match self {
            EvalPlan::Incremental(..) => "incremental",
            EvalPlan::Precomputed(_) => "precomputed",
            EvalPlan::Sharded(_) => "sharded",
            EvalPlan::Decomposed(_) => "decomposed",
            EvalPlan::DirectChart(_) => "direct",
            EvalPlan::Direct => "direct",
        }
    }

    /// The recognized chart shape, when this plan evaluates one.
    fn recognized(&self) -> Option<&PropertyExpansionQuery> {
        match self {
            EvalPlan::Incremental(rec, _) => Some(rec),
            EvalPlan::Precomputed(rec)
            | EvalPlan::Sharded(rec)
            | EvalPlan::Decomposed(rec)
            | EvalPlan::DirectChart(rec) => Some(rec),
            EvalPlan::Direct => None,
        }
    }
}

/// The router's prediction for a query: which path would serve it right
/// now, computed **without executing** the query (the `/explain`
/// endpoint). The HVS check uses a non-counting peek so explaining a
/// query does not perturb cache-effectiveness counters.
#[derive(Debug, Clone)]
pub struct ExplainReport {
    /// Whether the fresh HVS currently caches this query.
    pub hvs_hit: bool,
    /// Whether the decomposer recognized the property-expansion shape
    /// (`None` when the query failed to parse).
    pub recognized: Option<bool>,
    /// The parse error, when the query is invalid.
    pub parse_error: Option<String>,
    /// The predicted serving path: `hvs`, `cache-hit`, `incremental`,
    /// `precomputed`, `sharded`, `decomposed`, `direct`, or `invalid`.
    pub path: &'static str,
    /// Number of shards the predicted path would fan across (1 on every
    /// sequential path).
    pub shards: usize,
    /// The data epoch the prediction was made against.
    pub data_epoch: u64,
}

impl ExplainReport {
    /// Render the prediction as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(160);
        out.push_str("{\"path\":");
        push_json_str(&mut out, self.path);
        out.push_str(&format!(",\"hvs_hit\":{}", self.hvs_hit));
        match self.recognized {
            Some(r) => out.push_str(&format!(",\"recognized\":{r}")),
            None => out.push_str(",\"recognized\":null"),
        }
        if let Some(err) = &self.parse_error {
            out.push_str(",\"parse_error\":");
            push_json_str(&mut out, err);
        }
        out.push_str(&format!(
            ",\"shards\":{},\"data_epoch\":{}}}",
            self.shards, self.data_epoch
        ));
        out
    }
}

/// The eLinda endpoint: HVS + decomposer + direct executor.
///
/// Generic over how the store is owned: `ElindaEndpoint<&TripleStore>`
/// borrows (the in-process library mode), while
/// `ElindaEndpoint<Arc<TripleStore>>` shares ownership so the endpoint
/// can be handed to server worker threads as `Arc<ElindaEndpoint<_>>`
/// with no lifetime tie to the caller's stack.
pub struct ElindaEndpoint<S: Borrow<TripleStore>> {
    store: S,
    /// The write-path overlay, when this endpoint serves a writable
    /// store. Reads then consume the overlay's merged view snapshot
    /// instead of `store` directly.
    novelty: Option<Arc<NoveltyStore>>,
    /// The derived read indexes (hierarchy, precomputed aggregates,
    /// sharded snapshot), rebuilt as a unit by [`Self::refresh`] after a
    /// compaction. Readers clone the `Arc`s out under a brief read lock,
    /// so a query consults one consistent index generation end to end.
    indexes: RwLock<Indexes>,
    hvs: HeavyQueryStore,
    /// Cumulative per-shard timings and speedup, fed by the parallel path.
    parallel_stats: Mutex<ParallelStats>,
    /// Epoch-aware result + frontier cache; present when
    /// [`EndpointConfig::enable_cache`] is on. Shared via `Arc` so the
    /// resilience layer can consult its stale side in the degradation
    /// ladder.
    cache: Option<Arc<ResultCache>>,
    config: EndpointConfig,
}

/// One generation of derived read indexes, tagged with the store
/// snapshot it was built from. Cloning is cheap (`Arc`s).
#[derive(Clone)]
struct Indexes {
    /// Epoch of the view these indexes were built from.
    epoch: u64,
    /// Lineage id of that view (see [`TripleStore::store_id`]).
    store_id: u64,
    hierarchy: Arc<ClassHierarchy>,
    /// Materialized only in [`DecomposerMode::Precomputed`].
    aggregates: Option<Arc<PropertyAggregates>>,
    /// Sharded snapshot for intra-query parallelism; built only when the
    /// configured [`Parallelism`] actually fans out.
    sharded: Option<Arc<ShardedTripleStore>>,
}

impl Indexes {
    fn build(store: &TripleStore, config: &EndpointConfig) -> Self {
        let hierarchy = Arc::new(ClassHierarchy::build(store));
        let aggregates = (config.enable_decomposer
            && config.decomposer_mode == DecomposerMode::Precomputed)
            .then(|| Arc::new(PropertyAggregates::build(store, &hierarchy)));
        let sharded = (config.enable_decomposer && config.parallelism.is_parallel())
            .then(|| Arc::new(ShardedTripleStore::build(store, config.parallelism.shards)));
        Indexes {
            epoch: store.epoch(),
            store_id: store.store_id(),
            hierarchy,
            aggregates,
            sharded,
        }
    }

    /// True when these indexes were built from exactly this view
    /// snapshot — the precondition for consulting the hierarchy (which,
    /// unlike the aggregates and shards, carries no own staleness check).
    fn is_fresh(&self, store: &TripleStore) -> bool {
        self.store_id == store.store_id() && self.epoch == store.epoch()
    }
}

impl<S: Borrow<TripleStore>> ElindaEndpoint<S> {
    /// Build the endpoint (computes the class hierarchy "mirror" once, as
    /// the paper's endpoint preprocesses its knowledge-base mirrors; in
    /// precomputed mode this also materializes every `(class, property)`
    /// aggregate).
    pub fn new(store: S, config: EndpointConfig) -> Self {
        Self::build(store, None, config)
    }

    /// Build a **writable** endpoint on top of a novelty overlay: every
    /// read consumes the overlay's merged view, `data_epoch` follows the
    /// view epoch, and [`Self::compact`] folds staged writes and
    /// refreshes the derived indexes. The overlay's base should be the
    /// same store handed in as `store` (the overlay view is what is
    /// actually read; `store` is kept for ownership parity with the
    /// read-only constructor).
    pub fn with_novelty(store: S, config: EndpointConfig, novelty: Arc<NoveltyStore>) -> Self {
        Self::build(store, Some(novelty), config)
    }

    fn build(store: S, novelty: Option<Arc<NoveltyStore>>, config: EndpointConfig) -> Self {
        let view = novelty.as_ref().map(|n| n.view());
        let s: &TripleStore = match &view {
            Some(v) => v,
            None => store.borrow(),
        };
        let indexes = Indexes::build(s, &config);
        let hvs = HeavyQueryStore::new(config.hvs.clone(), s.epoch());
        let cache = config.enable_cache.then(|| {
            let cache = ResultCache::new(config.cache);
            cache.sync_epoch(s.epoch());
            Arc::new(cache)
        });
        drop(view);
        ElindaEndpoint {
            store,
            novelty,
            indexes: RwLock::new(indexes),
            hvs,
            parallel_stats: Mutex::new(ParallelStats::default()),
            cache,
            config,
        }
    }

    /// The underlying base store. Note: on a writable endpoint the live
    /// data is [`Self::novelty`]'s view, not this base.
    pub fn store(&self) -> &TripleStore {
        self.store.borrow()
    }

    /// The write-path overlay, when this endpoint is writable.
    pub fn novelty(&self) -> Option<&Arc<NoveltyStore>> {
        self.novelty.as_ref()
    }

    /// The class hierarchy mirror (the current index generation's).
    pub fn hierarchy(&self) -> Arc<ClassHierarchy> {
        Arc::clone(&self.indexes.read().hierarchy)
    }

    /// Rebuild the derived read indexes (hierarchy, aggregates, sharded
    /// snapshot) from the current view — the post-compaction step that
    /// re-establishes the fast paths on the new base.
    pub fn refresh(&self) {
        let view = self.novelty.as_ref().map(|n| n.view());
        let s: &TripleStore = match &view {
            Some(v) => v,
            None => self.store.borrow(),
        };
        let fresh = Indexes::build(s, &self.config);
        *self.indexes.write() = fresh;
    }

    /// Fold staged novelty into a new base and refresh the derived
    /// indexes. Returns `None` on a read-only endpoint or when nothing
    /// is staged.
    pub fn compact(&self) -> Option<CompactionReport> {
        self.compact_with(|| {})
    }

    /// [`ElindaEndpoint::compact`] with a durability hook forwarded to
    /// [`NoveltyStore::compact_with`]: `post_fold` runs under the
    /// overlay write lock at the exact fold point (the WAL layer seals
    /// its active segment there).
    pub fn compact_with(&self, post_fold: impl FnOnce()) -> Option<CompactionReport> {
        let report = self.novelty.as_ref()?.compact_with(post_fold)?;
        self.refresh();
        Some(report)
    }

    /// HVS counters (hits, misses, invalidations, …).
    pub fn hvs_stats(&self) -> HvsStats {
        self.hvs.stats()
    }

    /// Number of queries currently cached in the HVS.
    pub fn hvs_len(&self) -> usize {
        self.hvs.len()
    }

    /// The intra-query parallelism budget this endpoint runs with.
    pub fn parallelism(&self) -> Parallelism {
        self.config.parallelism
    }

    /// Snapshot of the cumulative parallel-execution statistics, or
    /// `None` when intra-query parallelism is off.
    pub fn parallel_stats(&self) -> Option<ParallelStats> {
        self.indexes
            .read()
            .sharded
            .as_ref()
            .map(|_| self.parallel_stats.lock().clone())
    }

    /// The shared result cache, or `None` when caching is off — handed to
    /// the resilience layer so the degradation ladder can consult the
    /// cache's epoch-tagged stale side.
    pub fn result_cache(&self) -> Option<&Arc<ResultCache>> {
        self.cache.as_ref()
    }

    /// Result-cache counters, or `None` when caching is off.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Number of fresh results in the cache (0 when caching is off).
    pub fn cache_len(&self) -> usize {
        self.cache.as_ref().map_or(0, |c| c.len())
    }

    /// Estimated bytes held by the cache (0 when caching is off).
    pub fn cache_bytes(&self) -> usize {
        self.cache.as_ref().map_or(0, |c| c.bytes())
    }

    /// Finds a current-epoch frontier for `rec`'s class: directly, or by
    /// deriving it from a cached frontier of a direct superclass (kept
    /// members verified complete by cardinality before use). On the live
    /// route (`live`) the lookup counts hit/miss and a derived frontier
    /// is recorded back, so the next expansion of the same class finds it
    /// directly; `/explain` probes with `live` off and mutates nothing.
    fn find_frontier(
        &self,
        store: &TripleStore,
        hierarchy: &ClassHierarchy,
        cache: &ResultCache,
        rec: &PropertyExpansionQuery,
        epoch: u64,
        live: bool,
    ) -> Option<Arc<Vec<TermId>>> {
        let class_iri = rec.class.as_iri()?;
        let direct = if live {
            cache.frontier(class_iri)
        } else {
            cache.peek_frontier(class_iri)
        };
        if let Some(members) = direct {
            return Some(members);
        }
        let class_id = store.interner().get(&rec.class)?;
        for &parent in hierarchy.direct_superclasses(class_id) {
            let Some(parent_iri) = store.resolve(parent).as_iri() else {
                continue;
            };
            let Some(parent_members) = cache.peek_frontier(parent_iri) else {
                continue;
            };
            let derived = seed_child_frontier(store, hierarchy, &parent_members, class_id);
            if let Some(derived) = derived {
                let derived = Arc::new(derived);
                if live {
                    cache.record_frontier(class_iri, Arc::clone(&derived), epoch);
                }
                return Some(derived);
            }
        }
        None
    }

    /// Predict how [`QueryEngine::execute_with`] would route `query`
    /// right now, without executing it — the same decision sequence
    /// (HVS → recognition → index freshness) against the current store
    /// state. Backs the server's `GET /explain` route.
    pub fn explain(&self, query: &str) -> ExplainReport {
        let view = self.novelty.as_ref().map(|n| n.view());
        let store: &TripleStore = match &view {
            Some(v) => v,
            None => self.store.borrow(),
        };
        let epoch = store.epoch();
        self.hvs.sync_epoch(epoch);
        if let Some(cache) = &self.cache {
            cache.sync_epoch(epoch);
        }
        let ix = self.indexes.read().clone();
        let ix_fresh = ix.is_fresh(store);
        let normalized = normalize_query_text(query);
        let query = normalized.as_str();
        let hvs_hit = self.config.enable_hvs && self.hvs.peek(query);
        let cache_hit = !hvs_hit
            && self
                .cache
                .as_ref()
                .is_some_and(|cache| cache.peek(query).is_some());
        let (recognized, parse_error) = match parse_query(query) {
            Ok(parsed) => (Some(recognize_property_expansion(&parsed)), None),
            Err(e) => (None, Some(QueryError::Parse(e).to_string())),
        };
        let (path, shards) = if hvs_hit {
            ("hvs", 1)
        } else if parse_error.is_some() {
            ("invalid", 1)
        } else if cache_hit {
            ("cache-hit", 1)
        } else if self.config.enable_decomposer {
            match recognized.as_ref().and_then(|r| r.as_ref()) {
                Some(rec) => {
                    // Same frontier probe as the live route, minus the
                    // record side effect: explaining must not mutate.
                    // Frontier derivation consults the hierarchy, so it
                    // requires a fresh index generation.
                    let frontier = ix_fresh
                        .then(|| {
                            self.cache.as_ref().and_then(|cache| {
                                self.find_frontier(store, &ix.hierarchy, cache, rec, epoch, false)
                            })
                        })
                        .flatten();
                    if frontier.is_some() {
                        ("incremental", 1)
                    } else {
                        match &ix.aggregates {
                            Some(agg) if !agg.is_stale(store) => ("precomputed", 1),
                            _ => match &ix.sharded {
                                Some(sharded) if !sharded.is_stale(store) => {
                                    ("sharded", sharded.num_shards())
                                }
                                // A stale hierarchy cannot drive the
                                // decomposed path; uncompacted writes
                                // answer on the direct executor.
                                _ if ix_fresh => ("decomposed", 1),
                                _ => ("direct", 1),
                            },
                        }
                    }
                }
                None => ("direct", 1),
            }
        } else {
            ("direct", 1)
        };
        ExplainReport {
            hvs_hit,
            recognized: recognized.map(|r| r.is_some()),
            parse_error,
            path,
            shards,
            data_epoch: epoch,
        }
    }
}

impl<S: Borrow<TripleStore> + Send + Sync> QueryEngine for ElindaEndpoint<S> {
    fn execute(&self, query: &str) -> Result<QueryOutcome, ServeError> {
        self.execute_with(query, &QueryContext::default())
    }

    /// The routing pipeline under a per-request deadline, checked
    /// cooperatively at every stage boundary (HVS lookup → cache lookup →
    /// parse → evaluate) and handed into the sharded parallel evaluator,
    /// whose workers re-check it between shard maps. When the context
    /// carries a sampled trace, each stage records a span (`hvs`, `cache`,
    /// `parse`, `route`, `eval` with nested `fanout`/`shard/<i>`/`merge`).
    fn execute_with(&self, query: &str, ctx: &QueryContext) -> Result<QueryOutcome, ServeError> {
        // "The HVS is cleared on any update to the eLinda knowledge bases."
        // On a writable endpoint the read snapshot is the novelty
        // overlay's merged view, captured once here — concurrent writes
        // and compactions republish new Arcs and never touch this one,
        // so the whole query answers at one consistent epoch.
        let view = self.novelty.as_ref().map(|n| n.view());
        let store: &TripleStore = match &view {
            Some(v) => v,
            None => self.store.borrow(),
        };
        let epoch = store.epoch();
        self.hvs.sync_epoch(epoch);
        if let Some(cache) = &self.cache {
            cache.sync_epoch(epoch);
        }
        // One consistent index generation for the whole query: the
        // staleness checks below compare these snapshots against the
        // captured view, never against a live (concurrently compacting)
        // field — a sharded snapshot built before a compaction can
        // therefore never be consulted after the epoch bump.
        let ix = self.indexes.read().clone();
        let ix_fresh = ix.is_fresh(store);
        // Canonicalize once at ingress; everything downstream — parse,
        // HVS keys, cache keys — sees the normalized text, so the cache
        // key is the executed query and can never alias another one.
        let normalized = normalize_query_text(query);
        let query = normalized.as_str();
        let deadline = ctx.deadline;
        let trace = &ctx.trace;
        deadline.check()?;

        let start = Instant::now();
        if self.config.enable_hvs {
            let mut span = trace.span("hvs");
            if let Some(solutions) = self.hvs.get(query) {
                // The measured time covers the lookup and the clone of the
                // cached result — the serving cost of the ~80 ms HVS bar of
                // Fig. 4 (theirs additionally includes the HTTP stack).
                span.tag("outcome", "hit");
                return Ok(QueryOutcome {
                    solutions,
                    elapsed: start.elapsed(),
                    served_by: ServedBy::Hvs,
                    shards_used: 1,
                    data_epoch: epoch,
                });
            }
            span.tag("outcome", "miss");
        }

        if let Some(cache) = &self.cache {
            let mut span = trace.span("cache");
            if let Some(solutions) = cache.get(query) {
                span.tag("outcome", "hit");
                return Ok(QueryOutcome {
                    solutions: (*solutions).clone(),
                    elapsed: start.elapsed(),
                    served_by: ServedBy::CacheHit,
                    shards_used: 1,
                    data_epoch: epoch,
                });
            }
            span.tag("outcome", "miss");
        }

        let parsed = {
            let _span = trace.span("parse");
            parse_query(query).map_err(QueryError::Parse)?
        };
        deadline.check()?;

        // Route decision: which path will evaluate the query. Deciding
        // before evaluating keeps the decision observable (the `route`
        // span and `/explain`) and the stage spans disjoint.
        let mut route_span = trace.span("route");
        let plan = if self.config.enable_decomposer {
            match recognize_property_expansion(&parsed) {
                Some(rec) if ix_fresh => {
                    let frontier = self.cache.as_ref().and_then(|cache| {
                        self.find_frontier(store, &ix.hierarchy, cache, &rec, epoch, true)
                    });
                    match frontier {
                        // A cached (or parent-derived) frontier: evaluate
                        // incrementally over its members instead of
                        // re-deriving the instance set.
                        Some(members) => EvalPlan::Incremental(rec, members),
                        None => {
                            // Cold path: record this class's frontier so a
                            // later expansion along the same exploration
                            // path can seed from it.
                            if let Some(cache) = &self.cache {
                                if let (Some(iri), Some(class_id)) =
                                    (rec.class.as_iri(), store.interner().get(&rec.class))
                                {
                                    let members = ix.hierarchy.instances(store, class_id);
                                    cache.record_frontier(iri, Arc::new(members), epoch);
                                }
                            }
                            match &ix.aggregates {
                                // A stale precomputed index falls back to the
                                // on-demand path rather than serving old counts.
                                Some(agg) if !agg.is_stale(store) => EvalPlan::Precomputed(rec),
                                _ => match &ix.sharded {
                                    // Likewise: a stale sharded snapshot falls
                                    // back to sequential evaluation rather than
                                    // serving pre-update counts.
                                    Some(sharded) if !sharded.is_stale(store) => {
                                        EvalPlan::Sharded(rec)
                                    }
                                    _ => EvalPlan::Decomposed(rec),
                                },
                            }
                        }
                    }
                }
                // Uncompacted writes: the index generation (and its
                // hierarchy, which the decomposed and frontier paths
                // consult) predates the view, so a recognized chart
                // answers on the direct executor — byte-identical by the
                // canonical finisher, just slower until compaction
                // restores the fast rungs.
                Some(rec) => EvalPlan::DirectChart(rec),
                None => EvalPlan::Direct,
            }
        } else {
            EvalPlan::Direct
        };
        route_span.tag("path", plan.name());
        drop(route_span);

        let mut eval_span = trace.span("eval");
        let (solutions, served_by, shards_used) = match &plan {
            EvalPlan::Incremental(rec, members) => match &ix.sharded {
                // The frontier also restricts the shard scans, so the
                // parallel evaluator benefits from the seed when fresh.
                Some(sharded) if !sharded.is_stale(store) => {
                    let (solutions, report) = try_execute_sharded_from_frontier(
                        store,
                        sharded,
                        members,
                        rec,
                        &self.config.parallelism,
                        deadline,
                        trace,
                        eval_span.id(),
                    )?;
                    self.parallel_stats.lock().record(&report);
                    (solutions, ServedBy::Incremental, sharded.num_shards())
                }
                _ => (
                    execute_decomposed_from_frontier(store, members, rec),
                    ServedBy::Incremental,
                    1,
                ),
            },
            EvalPlan::Precomputed(rec) => {
                let agg = ix.aggregates.as_ref().expect("plan implies aggregates");
                (
                    execute_precomputed(store, agg, rec),
                    ServedBy::Decomposer,
                    1,
                )
            }
            EvalPlan::Sharded(rec) => {
                let sharded = ix.sharded.as_ref().expect("plan implies shards");
                let (solutions, report) = try_execute_decomposed_sharded(
                    store,
                    sharded,
                    &ix.hierarchy,
                    rec,
                    &self.config.parallelism,
                    deadline,
                    trace,
                    eval_span.id(),
                )?;
                self.parallel_stats.lock().record(&report);
                (solutions, ServedBy::Decomposer, sharded.num_shards())
            }
            EvalPlan::Decomposed(rec) => (
                execute_decomposed(store, &ix.hierarchy, rec),
                ServedBy::Decomposer,
                1,
            ),
            EvalPlan::DirectChart(_) => {
                let mut solutions = Executor::new(store)
                    .execute(&parsed)
                    .map_err(QueryError::Exec)?;
                // Same finisher as every chart tier: the pre-compaction
                // answer is byte-identical to the post-compaction one.
                crate::parallel::canonicalize_rows(&mut solutions, store);
                (solutions, ServedBy::Direct, 1)
            }
            EvalPlan::Direct => (
                Executor::new(store)
                    .execute(&parsed)
                    .map_err(QueryError::Exec)?,
                ServedBy::Direct,
                1,
            ),
        };
        let elapsed = start.elapsed();
        if self.config.enable_hvs {
            self.hvs.record(query, &solutions, elapsed);
        }
        // Only finished chart results enter the result cache: the chart
        // tiers share one canonical finisher, so a later cache hit is
        // byte-identical to re-evaluation on any tier.
        if plan.recognized().is_some() {
            if let Some(cache) = &self.cache {
                cache.record(query, &solutions, epoch);
            }
        }
        if trace.is_enabled() {
            eval_span.tag("rows", solutions.len().to_string());
        }
        drop(eval_span);
        Ok(QueryOutcome {
            solutions,
            elapsed,
            served_by,
            shards_used,
            data_epoch: epoch,
        })
    }

    fn data_epoch(&self) -> u64 {
        match &self.novelty {
            Some(n) => n.epoch(),
            None => self.store.borrow().epoch(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposer::{property_expansion_sparql, ExpansionDirection};
    use std::time::Duration;

    fn store() -> TripleStore {
        TripleStore::from_turtle(
            r#"
            @prefix ex: <http://e/> .
            @prefix owl: <http://www.w3.org/2002/07/owl#> .
            ex:a a owl:Thing ; ex:p ex:b ; ex:q ex:b .
            ex:b a owl:Thing ; ex:p ex:c .
            ex:c a owl:Thing .
            "#,
        )
        .unwrap()
    }

    fn zero_threshold(mut cfg: EndpointConfig) -> EndpointConfig {
        cfg.hvs.heavy_threshold = Duration::ZERO;
        cfg
    }

    #[test]
    fn baseline_serves_direct() {
        let s = store();
        let ep = ElindaEndpoint::new(&s, EndpointConfig::baseline());
        let q =
            property_expansion_sparql(elinda_rdf::vocab::owl::THING, ExpansionDirection::Outgoing);
        let out = ep.execute(&q).unwrap();
        assert_eq!(out.served_by, ServedBy::Direct);
    }

    #[test]
    fn decomposer_intercepts_property_expansion() {
        let s = store();
        let ep = ElindaEndpoint::new(&s, EndpointConfig::decomposer_only());
        let q =
            property_expansion_sparql(elinda_rdf::vocab::owl::THING, ExpansionDirection::Outgoing);
        let out = ep.execute(&q).unwrap();
        assert_eq!(out.served_by, ServedBy::Decomposer);
        // Other queries still go direct.
        let out = ep.execute("SELECT ?s WHERE { ?s ?p ?o }").unwrap();
        assert_eq!(out.served_by, ServedBy::Direct);
    }

    #[test]
    fn precomputed_mode_agrees_with_on_demand() {
        let s = store();
        let mut cfg = EndpointConfig::decomposer_only();
        cfg.decomposer_mode = DecomposerMode::Precomputed;
        let pre = ElindaEndpoint::new(&s, cfg);
        let on_demand = ElindaEndpoint::new(&s, EndpointConfig::decomposer_only());
        for dir in [ExpansionDirection::Outgoing, ExpansionDirection::Incoming] {
            let q = property_expansion_sparql(elinda_rdf::vocab::owl::THING, dir);
            let a = pre.execute(&q).unwrap();
            let b = on_demand.execute(&q).unwrap();
            assert_eq!(a.served_by, ServedBy::Decomposer);
            assert_eq!(a.solutions.len(), b.solutions.len());
        }
    }

    #[test]
    fn decomposer_and_direct_agree() {
        let s = store();
        let base = ElindaEndpoint::new(&s, EndpointConfig::baseline());
        let fast = ElindaEndpoint::new(&s, EndpointConfig::decomposer_only());
        let q =
            property_expansion_sparql(elinda_rdf::vocab::owl::THING, ExpansionDirection::Outgoing);
        let a = base.execute(&q).unwrap().solutions;
        let b = fast.execute(&q).unwrap().solutions;
        assert_eq!(a.len(), b.len());
        assert_eq!(a.vars, b.vars);
    }

    #[test]
    fn hvs_caches_second_call() {
        let s = store();
        let ep = ElindaEndpoint::new(&s, zero_threshold(EndpointConfig::full()));
        let q =
            property_expansion_sparql(elinda_rdf::vocab::owl::THING, ExpansionDirection::Outgoing);
        let first = ep.execute(&q).unwrap();
        assert_eq!(first.served_by, ServedBy::Decomposer);
        let second = ep.execute(&q).unwrap();
        assert_eq!(second.served_by, ServedBy::Hvs);
        assert_eq!(first.solutions.len(), second.solutions.len());
        assert_eq!(ep.hvs_stats().hits, 1);
    }

    #[test]
    fn update_invalidates_hvs() {
        let mut s = store();
        let q =
            property_expansion_sparql(elinda_rdf::vocab::owl::THING, ExpansionDirection::Outgoing);
        // Scope the endpoint so we can mutate the store between runs.
        {
            let ep = ElindaEndpoint::new(&s, zero_threshold(EndpointConfig::full()));
            ep.execute(&q).unwrap();
            assert_eq!(ep.hvs_len(), 1);
        }
        let x = s.intern(elinda_rdf::Term::iri("http://e/x"));
        let ty = s.lookup_iri(elinda_rdf::vocab::rdf::TYPE).unwrap();
        let thing = s.lookup_iri(elinda_rdf::vocab::owl::THING).unwrap();
        s.insert(x, ty, thing);
        {
            let ep = ElindaEndpoint::new(&s, zero_threshold(EndpointConfig::full()));
            ep.execute(&q).unwrap();
            // Fresh endpoint: served by decomposer again, and the result
            // reflects the update.
            let out = ep.execute(&q).unwrap();
            assert_eq!(out.served_by, ServedBy::Hvs);
            let type_rows = out.solutions.len();
            assert!(type_rows >= 1);
        }
    }

    #[test]
    fn parallel_config_is_byte_identical_and_reports_shards() {
        let s = store();
        let sequential = ElindaEndpoint::new(&s, EndpointConfig::decomposer_only());
        let mut cfg = EndpointConfig::decomposer_only();
        cfg.parallelism = Parallelism::fixed(2, 7);
        let parallel = ElindaEndpoint::new(&s, cfg);
        for dir in [ExpansionDirection::Outgoing, ExpansionDirection::Incoming] {
            let q = property_expansion_sparql(elinda_rdf::vocab::owl::THING, dir);
            let a = sequential.execute(&q).unwrap();
            let b = parallel.execute(&q).unwrap();
            assert_eq!(a.served_by, ServedBy::Decomposer);
            assert_eq!(b.served_by, ServedBy::Decomposer);
            assert_eq!(a.shards_used, 1);
            assert_eq!(b.shards_used, 7);
            assert_eq!(
                crate::json::encode_solutions(&a.solutions, &s),
                crate::json::encode_solutions(&b.solutions, &s),
                "{dir:?}"
            );
        }
        assert!(sequential.parallel_stats().is_none());
        let stats = parallel.parallel_stats().unwrap();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.shard_busy.len(), 7);
    }

    #[test]
    fn rebuilt_endpoint_after_update_serves_parallel_fresh() {
        let mut s = store();
        let q =
            property_expansion_sparql(elinda_rdf::vocab::owl::THING, ExpansionDirection::Outgoing);
        let mut cfg = EndpointConfig::decomposer_only();
        cfg.parallelism = Parallelism::fixed(2, 4);
        let before = {
            let ep = ElindaEndpoint::new(&s, cfg.clone());
            ep.execute(&q).unwrap().solutions.len()
        };
        // Give ex:c an outgoing edge with a brand-new property; the
        // rebuilt endpoint's shard snapshot must reflect it.
        let c = s.lookup_iri("http://e/c").unwrap();
        let r = s.intern(elinda_rdf::Term::iri("http://e/r"));
        s.insert(c, r, c);
        let ep = ElindaEndpoint::new(&s, cfg);
        let out = ep.execute(&q).unwrap();
        assert_eq!(out.shards_used, 4);
        assert_eq!(out.solutions.len(), before + 1);
        assert_eq!(ep.parallel_stats().unwrap().queries, 1);
    }

    #[test]
    fn writable_endpoint_serves_read_your_writes() {
        use crate::novelty::{NoveltyConfig, NoveltyStore};
        let s = Arc::new(store());
        let novelty = Arc::new(NoveltyStore::new(Arc::clone(&s), NoveltyConfig::default()));
        let mut cfg = EndpointConfig::full();
        cfg.parallelism = Parallelism::fixed(2, 4);
        let ep = ElindaEndpoint::with_novelty(Arc::clone(&s), cfg, Arc::clone(&novelty));
        let q =
            property_expansion_sparql(elinda_rdf::vocab::owl::THING, ExpansionDirection::Outgoing);

        let before = ep.execute(&q).unwrap();
        let before_rows =
            crate::json::encode_solutions(&before.solutions, &ep.novelty().unwrap().view());

        // A new Thing with an outgoing edge: visible on the very next
        // read, before any compaction, on the direct (stale-window) rung.
        novelty.apply(
            &elinda_sparql::parse_update(
                "PREFIX ex: <http://e/> PREFIX owl: <http://www.w3.org/2002/07/owl#> \
                 INSERT DATA { ex:n a owl:Thing . ex:n ex:p ex:a }",
            )
            .unwrap(),
        );
        let during = ep.execute(&q).unwrap();
        assert_eq!(during.served_by, ServedBy::Direct);
        assert!(during.data_epoch > before.data_epoch);
        let during_rows = crate::json::encode_solutions(&during.solutions, &novelty.view());
        assert_ne!(before_rows, during_rows, "write must be visible");

        // Compaction folds, bumps the epoch once more, and restores the
        // fast tiers — with byte-identical results.
        let report = ep.compact().expect("dirty overlay compacts");
        assert_eq!(report.folded, 2);
        assert_eq!(novelty.novelty_len(), 0);
        let after = ep.execute(&q).unwrap();
        assert_eq!(after.served_by, ServedBy::Decomposer);
        assert_eq!(after.shards_used, 4);
        assert_eq!(after.data_epoch, during.data_epoch + 1);
        let after_rows = crate::json::encode_solutions(&after.solutions, &novelty.view());
        assert_eq!(
            during_rows, after_rows,
            "pre- and post-compaction answers must be byte-identical"
        );
        // Nothing staged: compacting again is a no-op.
        assert!(ep.compact().is_none());
    }

    #[test]
    fn writable_endpoint_explain_tracks_the_stale_window() {
        use crate::novelty::{NoveltyConfig, NoveltyStore};
        let s = Arc::new(store());
        let novelty = Arc::new(NoveltyStore::new(Arc::clone(&s), NoveltyConfig::default()));
        let mut cfg = EndpointConfig::decomposer_only();
        cfg.parallelism = Parallelism::fixed(2, 3);
        let ep = ElindaEndpoint::with_novelty(Arc::clone(&s), cfg, Arc::clone(&novelty));
        let q =
            property_expansion_sparql(elinda_rdf::vocab::owl::THING, ExpansionDirection::Outgoing);
        assert_eq!(ep.explain(&q).path, "sharded");
        novelty.apply(
            &elinda_sparql::parse_update("INSERT DATA { <http://e/z> <http://e/p> <http://e/a> }")
                .unwrap(),
        );
        let explain = ep.explain(&q);
        assert_eq!(explain.path, "direct", "stale window answers direct");
        assert_eq!(explain.data_epoch, novelty.epoch());
        ep.compact().unwrap();
        assert_eq!(ep.explain(&q).path, "sharded");
    }

    #[test]
    fn write_demotes_fresh_cache_to_stale() {
        use crate::novelty::{NoveltyConfig, NoveltyStore};
        let s = Arc::new(store());
        let novelty = Arc::new(NoveltyStore::new(Arc::clone(&s), NoveltyConfig::default()));
        let ep = ElindaEndpoint::with_novelty(
            Arc::clone(&s),
            EndpointConfig::full(),
            Arc::clone(&novelty),
        );
        let q =
            property_expansion_sparql(elinda_rdf::vocab::owl::THING, ExpansionDirection::Outgoing);
        ep.execute(&q).unwrap();
        assert!(ep.cache_len() >= 1, "chart result cached fresh");
        novelty.apply(
            &elinda_sparql::parse_update("INSERT DATA { <http://e/w> <http://e/p> <http://e/a> }")
                .unwrap(),
        );
        // The next read syncs the cache to the new epoch: fresh entries
        // demote to the stale side (resilience ladder fodder).
        let out = ep.execute(&q).unwrap();
        assert_eq!(out.served_by, ServedBy::Direct);
        let stats = ep.cache_stats().unwrap();
        assert!(stats.invalidations >= 1, "write must demote fresh entries");
    }

    #[test]
    fn hvs_respects_threshold() {
        let s = store();
        let mut cfg = EndpointConfig::full();
        cfg.hvs.heavy_threshold = Duration::from_secs(3600); // nothing is heavy
        let ep = ElindaEndpoint::new(&s, cfg);
        let q = "SELECT ?s WHERE { ?s ?p ?o }";
        ep.execute(q).unwrap();
        let out = ep.execute(q).unwrap();
        assert_eq!(out.served_by, ServedBy::Direct);
        assert_eq!(ep.hvs_len(), 0);
    }
}
