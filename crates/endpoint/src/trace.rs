//! Request-scoped tracing: a span tree per sampled request.
//!
//! The serving claim of the paper is that *each exploration step is
//! responsive* because the router picks between the HVS, the decomposed
//! indexes, and the raw engine — this module makes that decision (and
//! where the latency of a request actually went) observable per request:
//!
//! * [`TraceCtx`] — a cheap handle threaded down the whole query path
//!   (admission → route decision → HVS lookup → decompose/recognize →
//!   shard fan-out → merge → serialize). When sampling is off it is a
//!   single `None` and every operation on it is a branch on that
//!   `Option` — no allocation, no lock, no clock read — so the
//!   disabled-tracing overhead is negligible (the `expansion_scaling`
//!   bench guards this).
//! * [`SpanGuard`] — one stage of the pipeline; records its wall time
//!   and outcome tags when dropped (or explicitly finished).
//! * [`FinishedTrace`] — the completed span tree, renderable as JSON for
//!   `GET /debug/trace/<id>`.
//! * [`TraceRing`] — a fixed-capacity ring keeping the last N sampled
//!   traces. The cursor is a lone atomic and each slot has its own
//!   reader-writer lock, so retaining a trace never contends with the
//!   serving hot path (which, with sampling off, never touches the ring
//!   at all).
//! * [`StageStats`] — per-stage latency histograms fed from finished
//!   traces, exported on `/metrics` as
//!   `elinda_stage_latency_*{stage="…"}` lines.

use crate::metrics::LatencySummary;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The parent id of top-level stage spans (the request itself).
pub const ROOT_SPAN: u32 = 0;

/// The canonical pipeline stages always present in the `/metrics`
/// per-stage histogram section (other observed stages are appended).
pub const CANONICAL_STAGES: [&str; 11] = [
    "admission",
    "hvs",
    "cache",
    "parse",
    "route",
    "eval",
    "fanout",
    "merge",
    "serialize",
    "write",
    "compact",
];

/// One recorded span: a named stage with its offset window (relative to
/// the start of the trace) and outcome tags.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span id (> 0; [`ROOT_SPAN`] is reserved for the request).
    pub id: u32,
    /// Parent span id ([`ROOT_SPAN`] for top-level stages).
    pub parent: u32,
    /// Stage name, e.g. `route` or `shard/3`.
    pub name: String,
    /// Start offset from the beginning of the trace.
    pub start: Duration,
    /// End offset from the beginning of the trace.
    pub end: Duration,
    /// Outcome tags, e.g. `("outcome", "hit")`.
    pub tags: Vec<(String, String)>,
}

impl SpanRecord {
    /// Wall time spent in this span.
    pub fn elapsed(&self) -> Duration {
        self.end.saturating_sub(self.start)
    }

    /// The histogram bucket this span folds into: the name up to the
    /// first `/`, so `shard/3` and `shard/7` aggregate as `shard`.
    pub fn stage(&self) -> &str {
        self.name.split('/').next().unwrap_or(&self.name)
    }
}

struct TraceInner {
    id: String,
    started: Instant,
    next_id: AtomicU32,
    spans: Mutex<Vec<SpanRecord>>,
}

/// A request-scoped trace handle.
///
/// Clones share the same underlying trace; [`TraceCtx::disabled`] is the
/// no-op handle every unsampled request carries.
#[derive(Clone, Default)]
pub struct TraceCtx {
    inner: Option<Arc<TraceInner>>,
}

impl std::fmt::Debug for TraceCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => write!(f, "TraceCtx({})", inner.id),
            None => f.write_str("TraceCtx(disabled)"),
        }
    }
}

impl TraceCtx {
    /// The no-op handle: every operation is a branch on a `None`.
    pub fn disabled() -> TraceCtx {
        TraceCtx { inner: None }
    }

    /// Start a sampled trace for the request with the given id.
    pub fn sampled(request_id: impl Into<String>) -> TraceCtx {
        TraceCtx {
            inner: Some(Arc::new(TraceInner {
                id: request_id.into(),
                started: Instant::now(),
                next_id: AtomicU32::new(1),
                spans: Mutex::new(Vec::new()),
            })),
        }
    }

    /// True when this request is sampled. Callers building span names
    /// with `format!` should gate on this to keep the disabled path
    /// allocation-free.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The request id, when sampled.
    pub fn request_id(&self) -> Option<&str> {
        self.inner.as_deref().map(|i| i.id.as_str())
    }

    /// Open a top-level stage span.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        self.span_under(ROOT_SPAN, name)
    }

    /// Open a span nested under `parent` (a [`SpanGuard::id`]).
    pub fn span_under(&self, parent: u32, name: &str) -> SpanGuard<'_> {
        match &self.inner {
            None => SpanGuard {
                ctx: self,
                live: None,
            },
            Some(inner) => {
                let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
                SpanGuard {
                    ctx: self,
                    live: Some(LiveSpan {
                        id,
                        parent,
                        name: name.to_string(),
                        start: inner.started.elapsed(),
                        tags: Vec::new(),
                    }),
                }
            }
        }
    }

    /// Close the trace: returns the finished span tree when sampled.
    /// `outcome` labels how the request ended (`ok`, `error/...`).
    pub fn finish(self, outcome: &str) -> Option<FinishedTrace> {
        let inner = self.inner?;
        // Other clones (none on the serving path once the request is
        // done) would only lose late spans; the common case is sole
        // ownership.
        let total = inner.started.elapsed();
        let mut spans = std::mem::take(&mut *inner.spans.lock());
        spans.sort_by_key(|s| (s.start, s.id));
        Some(FinishedTrace {
            id: inner.id.clone(),
            total,
            outcome: outcome.to_string(),
            spans,
        })
    }
}

struct LiveSpan {
    id: u32,
    parent: u32,
    name: String,
    start: Duration,
    tags: Vec<(String, String)>,
}

/// An open span; records itself into the trace when dropped.
pub struct SpanGuard<'t> {
    ctx: &'t TraceCtx,
    live: Option<LiveSpan>,
}

impl SpanGuard<'_> {
    /// The span id, for nesting children under it ([`ROOT_SPAN`] when
    /// tracing is disabled — children then attach to the root, which is
    /// equally invisible).
    pub fn id(&self) -> u32 {
        self.live.as_ref().map_or(ROOT_SPAN, |l| l.id)
    }

    /// Attach an outcome tag. A no-op when tracing is disabled, so
    /// callers may tag unconditionally with `&str` values; gate
    /// `format!`-built values on [`TraceCtx::is_enabled`].
    pub fn tag(&mut self, key: &str, value: impl Into<String>) {
        if let Some(live) = &mut self.live {
            live.tags.push((key.to_string(), value.into()));
        }
    }

    /// Close the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let (Some(live), Some(inner)) = (self.live.take(), self.ctx.inner.as_deref()) else {
            return;
        };
        let end = inner.started.elapsed();
        inner.spans.lock().push(SpanRecord {
            id: live.id,
            parent: live.parent,
            name: live.name,
            start: live.start,
            end,
            tags: live.tags,
        });
    }
}

/// A completed request trace: the full span tree plus the end-to-end
/// wall time, renderable as JSON for `GET /debug/trace/<id>`.
#[derive(Debug, Clone)]
pub struct FinishedTrace {
    /// The request id (`X-Request-Id`).
    pub id: String,
    /// End-to-end wall time of the traced request.
    pub total: Duration,
    /// How the request ended (`ok`, `error/query`, …).
    pub outcome: String,
    /// All recorded spans, ordered by start offset.
    pub spans: Vec<SpanRecord>,
}

impl FinishedTrace {
    /// The top-level stage spans (direct children of the request).
    pub fn stages(&self) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter().filter(|s| s.parent == ROOT_SPAN)
    }

    /// Summed wall time of the top-level stage spans. The stages are
    /// contiguous and non-overlapping by construction, so this tracks
    /// the end-to-end total closely (the acceptance bound is 10%).
    pub fn stage_total(&self) -> Duration {
        self.stages().map(SpanRecord::elapsed).sum()
    }

    /// Render the span tree as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.spans.len() * 128);
        out.push_str("{\"id\":");
        push_json_str(&mut out, &self.id);
        out.push_str(",\"outcome\":");
        push_json_str(&mut out, &self.outcome);
        out.push_str(&format!(
            ",\"total_us\":{},\"stage_total_us\":{},\"spans\":",
            self.total.as_micros(),
            self.stage_total().as_micros()
        ));
        self.render_children(ROOT_SPAN, &mut out);
        out.push('}');
        out
    }

    fn render_children(&self, parent: u32, out: &mut String) {
        out.push('[');
        let mut first = true;
        for span in self.spans.iter().filter(|s| s.parent == parent) {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":");
            push_json_str(out, &span.name);
            out.push_str(&format!(
                ",\"start_us\":{},\"elapsed_us\":{}",
                span.start.as_micros(),
                span.elapsed().as_micros()
            ));
            if !span.tags.is_empty() {
                out.push_str(",\"tags\":{");
                for (i, (k, v)) in span.tags.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_json_str(out, k);
                    out.push(':');
                    push_json_str(out, v);
                }
                out.push('}');
            }
            out.push_str(",\"children\":");
            self.render_children(span.id, out);
            out.push('}');
        }
        out.push(']');
    }
}

/// Append a JSON string literal (quoted, escaped) to `out`.
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A fixed-capacity ring of the last N sampled traces.
///
/// The write cursor is a single atomic and every slot has its own
/// reader-writer lock: a retain takes exactly one uncontended slot lock,
/// so concurrent workers retaining traces never serialize on a shared
/// structure, and lookups scan slots without blocking writers of other
/// slots. With sampling off the ring is never touched.
pub struct TraceRing {
    slots: Vec<RwLock<Option<Arc<FinishedTrace>>>>,
    cursor: AtomicUsize,
}

impl TraceRing {
    /// A ring retaining the last `capacity` traces (at least 1).
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing {
            slots: (0..capacity.max(1)).map(|_| RwLock::new(None)).collect(),
            cursor: AtomicUsize::new(0),
        }
    }

    /// Retention capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Retain a finished trace, evicting the oldest once full. Returns
    /// the shared handle.
    pub fn push(&self, trace: FinishedTrace) -> Arc<FinishedTrace> {
        let trace = Arc::new(trace);
        let slot = self.cursor.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        *self.slots[slot].write() = Some(Arc::clone(&trace));
        trace
    }

    /// Find a retained trace by request id (newest first on duplicate
    /// ids).
    pub fn get(&self, id: &str) -> Option<Arc<FinishedTrace>> {
        let len = self.slots.len();
        let next = self.cursor.load(Ordering::Relaxed);
        // Scan from the most recently written slot backwards.
        (0..len).find_map(|back| {
            let slot = (next + len - 1 - back) % len;
            self.slots[slot]
                .read()
                .as_ref()
                .filter(|t| t.id == id)
                .cloned()
        })
    }

    /// The most recently retained trace.
    pub fn latest(&self) -> Option<Arc<FinishedTrace>> {
        let len = self.slots.len();
        let next = self.cursor.load(Ordering::Relaxed);
        (0..len).find_map(|back| {
            let slot = (next + len - 1 - back) % len;
            self.slots[slot].read().clone()
        })
    }

    /// Number of traces currently retained.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.read().is_some()).count()
    }

    /// True when nothing has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-stage latency histograms, fed from finished traces and exported
/// on `/metrics` (count, mean, p50/p95/p99 per stage).
#[derive(Default)]
pub struct StageStats {
    stages: Mutex<Vec<(String, LatencySummary)>>,
}

impl StageStats {
    /// An empty set of histograms.
    pub fn new() -> StageStats {
        StageStats::default()
    }

    /// Fold every span of a finished trace into its stage bucket
    /// (`shard/3` → `shard`).
    pub fn observe(&self, trace: &FinishedTrace) {
        let mut stages = self.stages.lock();
        for span in &trace.spans {
            let stage = span.stage();
            let summary = match stages.iter_mut().find(|(name, _)| name == stage) {
                Some((_, summary)) => summary,
                None => {
                    stages.push((stage.to_string(), LatencySummary::default()));
                    &mut stages.last_mut().expect("just pushed").1
                }
            };
            summary.record(span.elapsed());
        }
    }

    /// Snapshot of the per-stage summaries: the canonical pipeline
    /// stages first (zeroed when unobserved), then any extra observed
    /// stages in name order.
    pub fn snapshot(&self) -> Vec<(String, LatencySummary)> {
        let stages = self.stages.lock();
        let mut out: Vec<(String, LatencySummary)> = CANONICAL_STAGES
            .iter()
            .map(|&name| {
                let summary = stages
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, s)| s.clone())
                    .unwrap_or_default();
                (name.to_string(), summary)
            })
            .collect();
        let mut extra: Vec<(String, LatencySummary)> = stages
            .iter()
            .filter(|(n, _)| !CANONICAL_STAGES.contains(&n.as_str()))
            .cloned()
            .collect();
        extra.sort_by(|(a, _), (b, _)| a.cmp(b));
        out.extend(extra);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_ctx_is_inert() {
        let ctx = TraceCtx::disabled();
        assert!(!ctx.is_enabled());
        assert!(ctx.request_id().is_none());
        let mut span = ctx.span("route");
        span.tag("outcome", "direct");
        assert_eq!(span.id(), ROOT_SPAN);
        drop(span);
        assert!(ctx.finish("ok").is_none());
    }

    #[test]
    fn spans_record_names_offsets_and_tags() {
        let ctx = TraceCtx::sampled("req-1");
        assert!(ctx.is_enabled());
        assert_eq!(ctx.request_id(), Some("req-1"));
        {
            let mut route = ctx.span("route");
            route.tag("path", "decomposer");
            std::thread::sleep(Duration::from_millis(2));
        }
        {
            let eval = ctx.span("eval");
            let fanout = ctx.span_under(eval.id(), "fanout");
            let _shard = ctx.span_under(fanout.id(), "shard/0");
            std::thread::sleep(Duration::from_millis(1));
        }
        let trace = ctx.finish("ok").unwrap();
        assert_eq!(trace.id, "req-1");
        assert_eq!(trace.outcome, "ok");
        assert_eq!(trace.spans.len(), 4);
        let route = trace.spans.iter().find(|s| s.name == "route").unwrap();
        assert_eq!(route.parent, ROOT_SPAN);
        assert!(route.elapsed() >= Duration::from_millis(2));
        assert_eq!(route.tags, vec![("path".to_string(), "decomposer".into())]);
        let shard = trace.spans.iter().find(|s| s.name == "shard/0").unwrap();
        assert_eq!(shard.stage(), "shard");
        let fanout = trace.spans.iter().find(|s| s.name == "fanout").unwrap();
        assert_eq!(shard.parent, fanout.id);
        // Only the two top-level stages count toward the stage total.
        assert_eq!(trace.stages().count(), 2);
        assert!(trace.stage_total() <= trace.total);
    }

    #[test]
    fn trace_renders_as_nested_json() {
        let ctx = TraceCtx::sampled("req-\"x\"");
        {
            let eval = ctx.span("eval");
            let mut shard = ctx.span_under(eval.id(), "shard/0");
            shard.tag("busy", "yes");
        }
        let json = ctx.finish("ok").unwrap().to_json();
        assert!(json.starts_with("{\"id\":\"req-\\\"x\\\"\""), "{json}");
        assert!(json.contains("\"name\":\"eval\""));
        assert!(json.contains("\"children\":[{\"name\":\"shard/0\""));
        assert!(json.contains("\"tags\":{\"busy\":\"yes\"}"));
        assert!(json.contains("\"total_us\":"));
        // The rendered tree is valid JSON per the in-repo parser.
        assert!(crate::json::parse_json(&json).is_ok(), "{json}");
    }

    #[test]
    fn ring_retains_last_n_and_finds_by_id() {
        let ring = TraceRing::new(3);
        assert!(ring.is_empty());
        for i in 0..5 {
            let ctx = TraceCtx::sampled(format!("req-{i}"));
            ring.push(ctx.finish("ok").unwrap());
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.capacity(), 3);
        assert!(ring.get("req-0").is_none(), "oldest evicted");
        assert!(ring.get("req-1").is_none());
        for i in 2..5 {
            assert!(ring.get(&format!("req-{i}")).is_some(), "req-{i} retained");
        }
        assert_eq!(ring.latest().unwrap().id, "req-4");
        assert!(ring.get("nonsense").is_none());
    }

    #[test]
    fn stage_stats_fold_spans_by_bucket() {
        let stats = StageStats::new();
        let ctx = TraceCtx::sampled("r");
        {
            let _route = ctx.span("route");
        }
        {
            let eval = ctx.span("eval");
            let _s0 = ctx.span_under(eval.id(), "shard/0");
            let _s1 = ctx.span_under(eval.id(), "shard/1");
        }
        stats.observe(&ctx.finish("ok").unwrap());
        let snapshot = stats.snapshot();
        let get = |name: &str| {
            snapshot
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, s)| s.count)
        };
        assert_eq!(get("route"), Some(1));
        assert_eq!(get("eval"), Some(1));
        assert_eq!(get("shard"), Some(2), "shard/i spans fold into one bucket");
        assert_eq!(get("serialize"), Some(0), "canonical stages always listed");
        // Canonical stages come first, in pipeline order.
        assert_eq!(snapshot[0].0, "admission");
    }

    #[test]
    fn concurrent_span_recording_is_safe() {
        let ctx = TraceCtx::sampled("par");
        let fanout = ctx.span("fanout");
        let parent = fanout.id();
        std::thread::scope(|scope| {
            for i in 0..8 {
                let ctx = &ctx;
                scope.spawn(move || {
                    let _span = ctx.span_under(parent, &format!("shard/{i}"));
                });
            }
        });
        drop(fanout);
        let trace = ctx.finish("ok").unwrap();
        assert_eq!(trace.spans.len(), 9);
        let ids: std::collections::HashSet<u32> = trace.spans.iter().map(|s| s.id).collect();
        assert_eq!(ids.len(), 9, "span ids are unique");
    }
}
