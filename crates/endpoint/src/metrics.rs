//! Query metering: per-component latency statistics.
//!
//! The demonstration compares configurations live ("with the discussed
//! solutions turned on and off"); [`MeteredEndpoint`] wraps any
//! [`QueryEngine`] and records, per serving component, how many queries
//! it answered and at what latency — the data behind the Fig. 4 bars.

use crate::engine::{QueryEngine, QueryOutcome, ServedBy};
use elinda_sparql::exec::QueryError;
use parking_lot::Mutex;
use std::time::Duration;

/// Latency summary for one serving component.
#[derive(Debug, Clone, Default)]
pub struct LatencySummary {
    /// Number of queries answered.
    pub count: u64,
    /// Total time.
    pub total: Duration,
    /// Fastest query.
    pub min: Option<Duration>,
    /// Slowest query.
    pub max: Option<Duration>,
}

impl LatencySummary {
    fn record(&mut self, d: Duration) {
        self.count += 1;
        self.total += d;
        self.min = Some(self.min.map_or(d, |m| m.min(d)));
        self.max = Some(self.max.map_or(d, |m| m.max(d)));
    }

    /// Mean latency; zero when nothing was recorded.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count as u32
        }
    }
}

/// Collected metrics: one summary per serving component, plus raw
/// samples for percentile queries.
#[derive(Debug, Default)]
struct MetricsInner {
    direct: LatencySummary,
    hvs: LatencySummary,
    decomposer: LatencySummary,
    remote: LatencySummary,
    samples: Vec<(ServedBy, Duration)>,
}

/// A [`QueryEngine`] wrapper that meters every query.
pub struct MeteredEndpoint<E> {
    inner: E,
    metrics: Mutex<MetricsInner>,
}

impl<E: QueryEngine> MeteredEndpoint<E> {
    /// Wrap an engine.
    pub fn new(inner: E) -> Self {
        MeteredEndpoint { inner, metrics: Mutex::new(MetricsInner::default()) }
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// The summary for one component.
    pub fn summary(&self, component: ServedBy) -> LatencySummary {
        let m = self.metrics.lock();
        match component {
            ServedBy::Direct => m.direct.clone(),
            ServedBy::Hvs => m.hvs.clone(),
            ServedBy::Decomposer => m.decomposer.clone(),
            ServedBy::Remote => m.remote.clone(),
        }
    }

    /// Latency at percentile `p` (0–100) over all recorded queries of a
    /// component; `None` when nothing was recorded.
    pub fn percentile(&self, component: ServedBy, p: f64) -> Option<Duration> {
        let m = self.metrics.lock();
        let mut samples: Vec<Duration> = m
            .samples
            .iter()
            .filter(|(c, _)| *c == component)
            .map(|(_, d)| *d)
            .collect();
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        let rank = ((p / 100.0) * (samples.len() - 1) as f64).round() as usize;
        Some(samples[rank.min(samples.len() - 1)])
    }

    /// Total queries recorded.
    pub fn total_queries(&self) -> u64 {
        let m = self.metrics.lock();
        m.direct.count + m.hvs.count + m.decomposer.count + m.remote.count
    }

    /// Reset all metrics.
    pub fn reset(&self) {
        *self.metrics.lock() = MetricsInner::default();
    }
}

impl<E: QueryEngine> QueryEngine for MeteredEndpoint<E> {
    fn execute(&self, query: &str) -> Result<QueryOutcome, QueryError> {
        let out = self.inner.execute(query)?;
        let mut m = self.metrics.lock();
        let slot = match out.served_by {
            ServedBy::Direct => &mut m.direct,
            ServedBy::Hvs => &mut m.hvs,
            ServedBy::Decomposer => &mut m.decomposer,
            ServedBy::Remote => &mut m.remote,
        };
        slot.record(out.elapsed);
        m.samples.push((out.served_by, out.elapsed));
        Ok(out)
    }

    fn data_epoch(&self) -> u64 {
        self.inner.data_epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::DirectEndpoint;
    use elinda_store::TripleStore;

    fn store() -> TripleStore {
        TripleStore::from_turtle(
            "@prefix ex: <http://e/> . ex:a a ex:C . ex:b a ex:C .",
        )
        .unwrap()
    }

    #[test]
    fn records_per_component() {
        let s = store();
        let ep = MeteredEndpoint::new(DirectEndpoint::new(&s));
        for _ in 0..3 {
            ep.execute("SELECT ?s WHERE { ?s a <http://e/C> }").unwrap();
        }
        let direct = ep.summary(ServedBy::Direct);
        assert_eq!(direct.count, 3);
        assert!(direct.mean() > Duration::ZERO);
        assert!(direct.min.unwrap() <= direct.max.unwrap());
        assert_eq!(ep.summary(ServedBy::Hvs).count, 0);
        assert_eq!(ep.total_queries(), 3);
    }

    #[test]
    fn percentiles() {
        let s = store();
        let ep = MeteredEndpoint::new(DirectEndpoint::new(&s));
        for _ in 0..10 {
            ep.execute("SELECT ?s WHERE { ?s a <http://e/C> }").unwrap();
        }
        let p50 = ep.percentile(ServedBy::Direct, 50.0).unwrap();
        let p100 = ep.percentile(ServedBy::Direct, 100.0).unwrap();
        assert!(p50 <= p100);
        assert!(ep.percentile(ServedBy::Hvs, 50.0).is_none());
    }

    #[test]
    fn failed_queries_are_not_recorded() {
        let s = store();
        let ep = MeteredEndpoint::new(DirectEndpoint::new(&s));
        let _ = ep.execute("SELECT nonsense");
        assert_eq!(ep.total_queries(), 0);
    }

    #[test]
    fn reset_clears() {
        let s = store();
        let ep = MeteredEndpoint::new(DirectEndpoint::new(&s));
        ep.execute("SELECT ?s WHERE { ?s a <http://e/C> }").unwrap();
        ep.reset();
        assert_eq!(ep.total_queries(), 0);
    }

    #[test]
    fn epoch_passthrough() {
        let s = store();
        let ep = MeteredEndpoint::new(DirectEndpoint::new(&s));
        assert_eq!(ep.data_epoch(), 0);
        assert_eq!(ep.inner().data_epoch(), 0);
    }
}
