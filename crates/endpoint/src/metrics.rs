//! Query metering: per-component latency statistics.
//!
//! The demonstration compares configurations live ("with the discussed
//! solutions turned on and off"); [`MeteredEndpoint`] wraps any
//! [`QueryEngine`] and records, per serving component, how many queries
//! it answered and at what latency — the data behind the Fig. 4 bars.

use crate::engine::{QueryContext, QueryEngine, QueryOutcome, ServeError, ServedBy};
use parking_lot::Mutex;
use std::time::Duration;

/// Cap on retained raw samples per component: percentiles are computed
/// over a sliding window of the most recent samples so a long-running
/// server's metrics stay bounded in memory.
const MAX_SAMPLES: usize = 65_536;

/// Latency summary for one serving component.
#[derive(Debug, Clone, Default)]
pub struct LatencySummary {
    /// Number of queries answered.
    pub count: u64,
    /// Total time.
    pub total: Duration,
    /// Fastest query.
    pub min: Option<Duration>,
    /// Slowest query.
    pub max: Option<Duration>,
    /// Raw samples (ring buffer of the most recent [`MAX_SAMPLES`]).
    samples: Vec<Duration>,
    /// Next ring slot once `samples` is full.
    cursor: usize,
}

impl LatencySummary {
    pub(crate) fn record(&mut self, d: Duration) {
        self.count += 1;
        self.total += d;
        self.min = Some(self.min.map_or(d, |m| m.min(d)));
        self.max = Some(self.max.map_or(d, |m| m.max(d)));
        if self.samples.len() < MAX_SAMPLES {
            self.samples.push(d);
        } else {
            self.samples[self.cursor] = d;
            self.cursor = (self.cursor + 1) % MAX_SAMPLES;
        }
    }

    /// Mean latency; zero when nothing was recorded.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            // Divide in nanosecond space: `Duration / u32` would silently
            // truncate a u64 count.
            Duration::from_nanos((self.total.as_nanos() / u128::from(self.count)) as u64)
        }
    }

    /// Latency at percentile `p` (0–100, clamped) over the retained
    /// sample window; `None` when nothing was recorded or `p` is NaN.
    pub fn percentile(&self, p: f64) -> Option<Duration> {
        // A NaN `p` would pass through `clamp` unchanged and cast to
        // rank 0, silently reporting the minimum as any percentile.
        if self.samples.is_empty() || p.is_nan() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((p.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        Some(sorted[rank.min(sorted.len() - 1)])
    }

    /// Median latency.
    pub fn p50(&self) -> Option<Duration> {
        self.percentile(50.0)
    }

    /// 95th-percentile latency.
    pub fn p95(&self) -> Option<Duration> {
        self.percentile(95.0)
    }

    /// 99th-percentile latency.
    pub fn p99(&self) -> Option<Duration> {
        self.percentile(99.0)
    }

    /// The retained raw samples (unsorted, most recent window).
    pub fn samples(&self) -> &[Duration] {
        &self.samples
    }
}

/// Collected metrics: one summary (with its raw sample window) per
/// serving component.
#[derive(Debug, Default)]
struct MetricsInner {
    direct: LatencySummary,
    hvs: LatencySummary,
    decomposer: LatencySummary,
    remote: LatencySummary,
    cache_hit: LatencySummary,
    incremental: LatencySummary,
    degraded_stale: LatencySummary,
    degraded_local: LatencySummary,
    fabric: LatencySummary,
}

impl MetricsInner {
    fn slot(&mut self, component: ServedBy) -> &mut LatencySummary {
        match component {
            ServedBy::Direct => &mut self.direct,
            ServedBy::Hvs => &mut self.hvs,
            ServedBy::Decomposer => &mut self.decomposer,
            ServedBy::Remote => &mut self.remote,
            ServedBy::CacheHit => &mut self.cache_hit,
            ServedBy::Incremental => &mut self.incremental,
            ServedBy::DegradedStale => &mut self.degraded_stale,
            ServedBy::DegradedLocal => &mut self.degraded_local,
            ServedBy::Fabric => &mut self.fabric,
        }
    }
}

/// A [`QueryEngine`] wrapper that meters every query.
pub struct MeteredEndpoint<E> {
    inner: E,
    metrics: Mutex<MetricsInner>,
}

impl<E: QueryEngine> MeteredEndpoint<E> {
    /// Wrap an engine.
    pub fn new(inner: E) -> Self {
        MeteredEndpoint {
            inner,
            metrics: Mutex::new(MetricsInner::default()),
        }
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// The summary for one component.
    pub fn summary(&self, component: ServedBy) -> LatencySummary {
        self.metrics.lock().slot(component).clone()
    }

    /// Latency at percentile `p` (0–100) over the component's retained
    /// sample window; `None` when nothing was recorded.
    pub fn percentile(&self, component: ServedBy, p: f64) -> Option<Duration> {
        self.metrics.lock().slot(component).percentile(p)
    }

    /// Total queries recorded.
    pub fn total_queries(&self) -> u64 {
        let mut m = self.metrics.lock();
        [
            ServedBy::Direct,
            ServedBy::Hvs,
            ServedBy::Decomposer,
            ServedBy::Remote,
            ServedBy::CacheHit,
            ServedBy::Incremental,
            ServedBy::DegradedStale,
            ServedBy::DegradedLocal,
        ]
        .into_iter()
        .map(|c| m.slot(c).count)
        .sum()
    }

    /// Reset all metrics.
    pub fn reset(&self) {
        *self.metrics.lock() = MetricsInner::default();
    }
}

impl<E: QueryEngine> QueryEngine for MeteredEndpoint<E> {
    fn execute(&self, query: &str) -> Result<QueryOutcome, ServeError> {
        let out = self.inner.execute(query)?;
        self.metrics.lock().slot(out.served_by).record(out.elapsed);
        Ok(out)
    }

    fn execute_with(&self, query: &str, ctx: &QueryContext) -> Result<QueryOutcome, ServeError> {
        let out = self.inner.execute_with(query, ctx)?;
        self.metrics.lock().slot(out.served_by).record(out.elapsed);
        Ok(out)
    }

    fn data_epoch(&self) -> u64 {
        self.inner.data_epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::DirectEndpoint;
    use elinda_store::TripleStore;

    fn store() -> TripleStore {
        TripleStore::from_turtle("@prefix ex: <http://e/> . ex:a a ex:C . ex:b a ex:C .").unwrap()
    }

    #[test]
    fn records_per_component() {
        let s = store();
        let ep = MeteredEndpoint::new(DirectEndpoint::new(&s));
        for _ in 0..3 {
            ep.execute("SELECT ?s WHERE { ?s a <http://e/C> }").unwrap();
        }
        let direct = ep.summary(ServedBy::Direct);
        assert_eq!(direct.count, 3);
        assert!(direct.mean() > Duration::ZERO);
        assert!(direct.min.unwrap() <= direct.max.unwrap());
        assert_eq!(ep.summary(ServedBy::Hvs).count, 0);
        assert_eq!(ep.total_queries(), 3);
    }

    #[test]
    fn percentiles() {
        let s = store();
        let ep = MeteredEndpoint::new(DirectEndpoint::new(&s));
        for _ in 0..10 {
            ep.execute("SELECT ?s WHERE { ?s a <http://e/C> }").unwrap();
        }
        let p50 = ep.percentile(ServedBy::Direct, 50.0).unwrap();
        let p100 = ep.percentile(ServedBy::Direct, 100.0).unwrap();
        assert!(p50 <= p100);
        assert!(ep.percentile(ServedBy::Hvs, 50.0).is_none());
    }

    #[test]
    fn mean_divides_safely_beyond_u32_counts() {
        // The old `total / count as u32` truncated the count; a count of
        // exactly 2^32 truncated to zero and panicked (division by zero),
        // and 2^32 + k divided by k. Synthesize the summary directly.
        let mut s = LatencySummary::default();
        s.record(Duration::from_nanos(100));
        s.count = (1u64 << 32) + 2;
        s.total = Duration::from_nanos(((1u64 << 32) + 2) * 100);
        assert_eq!(s.mean(), Duration::from_nanos(100));
    }

    #[test]
    fn summary_percentiles_are_ordered() {
        let mut s = LatencySummary::default();
        for ms in 1..=100 {
            s.record(Duration::from_millis(ms));
        }
        let p50 = s.p50().unwrap();
        let p95 = s.p95().unwrap();
        let p99 = s.p99().unwrap();
        assert!(p50 <= p95 && p95 <= p99);
        // Nearest-rank on 100 samples: round(0.5 * 99) = 50 → the 51st
        // value.
        assert_eq!(p50, Duration::from_millis(51));
        assert_eq!(p99, Duration::from_millis(99));
        assert!(LatencySummary::default().p50().is_none());
    }

    #[test]
    fn percentiles_on_empty_ring_are_none() {
        let s = LatencySummary::default();
        assert!(s.p50().is_none());
        assert!(s.p95().is_none());
        assert!(s.p99().is_none());
        for p in [-10.0, 0.0, 50.0, 100.0, 1e9, f64::INFINITY] {
            assert!(s.percentile(p).is_none());
        }
    }

    #[test]
    fn percentiles_on_single_sample_return_that_sample() {
        let mut s = LatencySummary::default();
        s.record(Duration::from_millis(7));
        let sample = Duration::from_millis(7);
        assert_eq!(s.p50(), Some(sample));
        assert_eq!(s.p95(), Some(sample));
        assert_eq!(s.p99(), Some(sample));
        // Out-of-range percentiles clamp instead of indexing out of
        // bounds or wrapping.
        for p in [-10.0, 0.0, 100.0, 1e9, f64::NEG_INFINITY, f64::INFINITY] {
            assert_eq!(s.percentile(p), Some(sample), "p={p}");
        }
    }

    #[test]
    fn nan_percentile_is_rejected_not_garbage() {
        let mut s = LatencySummary::default();
        s.record(Duration::from_millis(1));
        s.record(Duration::from_millis(100));
        assert!(s.percentile(f64::NAN).is_none());
    }

    #[test]
    fn sample_window_is_bounded() {
        let mut s = LatencySummary::default();
        for i in 0..(super::MAX_SAMPLES + 10) {
            s.record(Duration::from_nanos(i as u64));
        }
        assert_eq!(s.samples().len(), super::MAX_SAMPLES);
        assert_eq!(s.count, (super::MAX_SAMPLES + 10) as u64);
        // Oldest samples were overwritten by the ring.
        assert!(s.samples().iter().all(|d| d.as_nanos() >= 10));
    }

    #[test]
    fn failed_queries_are_not_recorded() {
        let s = store();
        let ep = MeteredEndpoint::new(DirectEndpoint::new(&s));
        let _ = ep.execute("SELECT nonsense");
        assert_eq!(ep.total_queries(), 0);
    }

    #[test]
    fn reset_clears() {
        let s = store();
        let ep = MeteredEndpoint::new(DirectEndpoint::new(&s));
        ep.execute("SELECT ?s WHERE { ?s a <http://e/C> }").unwrap();
        ep.reset();
        assert_eq!(ep.total_queries(), 0);
    }

    #[test]
    fn epoch_passthrough() {
        let s = store();
        let ep = MeteredEndpoint::new(DirectEndpoint::new(&s));
        assert_eq!(ep.data_epoch(), 0);
        assert_eq!(ep.inner().data_epoch(), 0);
    }
}
