//! Remote compatibility mode.
//!
//! "We also allow ELINDA to work with a remote Virtuoso endpoint that can
//! be configured in the setting form by merely specifying the endpoint
//! URL. Naturally, in this mode responsiveness is lower than the above
//! local mode. Yet, the aforementioned incremental evaluation is
//! applicable (and applied) even in the remote mode." (Section 4)
//!
//! [`RemoteEndpoint`] simulates that remote server: every request pays a
//! configurable round-trip latency, the response travels through the real
//! SPARQL-JSON wire format (encode on the "server", decode on the
//! "client"), and **no preprocessing is available** — no decomposer, no
//! HVS, exactly as the paper's design states for endpoints it cannot
//! preprocess.
//!
//! Because a remote backend is the one dependency eLinda cannot control,
//! this is also where faults live: [`RemoteEndpoint::with_faults`]
//! attaches a seeded [`FaultPlan`](crate::fault::FaultPlan) injecting
//! latency spikes, stalls, connection errors, and malformed bodies —
//! deterministically, so the chaos suite and `loadgen --fault-profile`
//! replay byte-identically. All simulated waiting respects the caller's
//! [`Deadline`](crate::resilience::Deadline): a stalled backend turns
//! into an explicit timeout, never an unbounded hang.
//!
//! The *simulated* wire here is the single-process stand-in; the shard
//! fabric ([`crate::fabric`]) promotes the same encode/decode discipline
//! to pooled keep-alive HTTP connections over real TCP, scattering
//! decomposed chart queries to real shard processes.

use crate::engine::{QueryContext, QueryEngine, QueryOutcome, ServeError, ServedBy};
use crate::fault::{FaultInjector, FaultKind, FaultPlan};
use crate::json;
use crate::resilience::Deadline;
use elinda_sparql::{Executor, Solutions, Value};
use elinda_store::TripleStore;
use std::borrow::Borrow;
use std::time::{Duration, Instant};

/// Latency model of the simulated remote endpoint.
#[derive(Debug, Clone)]
pub struct RemoteConfig {
    /// Round-trip latency charged per request.
    pub round_trip: Duration,
    /// Additional cost per result row (serialization + transfer).
    pub per_row: Duration,
}

impl Default for RemoteConfig {
    fn default() -> Self {
        RemoteConfig {
            round_trip: Duration::from_millis(20),
            per_row: Duration::from_micros(2),
        }
    }
}

impl RemoteConfig {
    /// A zero-latency remote (for tests that only exercise the wire
    /// format).
    pub fn instant() -> Self {
        RemoteConfig {
            round_trip: Duration::ZERO,
            per_row: Duration::ZERO,
        }
    }
}

/// A value as the frontend sees it after the wire: no interned ids.
#[derive(Debug, Clone, PartialEq)]
pub enum WireValue {
    /// A URI.
    Uri(String),
    /// A literal lexical form (language/datatype collapsed for display).
    Literal(String),
}

/// A decoded result table as the frontend holds it.
#[derive(Debug, Clone, PartialEq)]
pub struct WireSolutions {
    /// Column names.
    pub vars: Vec<String>,
    /// Rows of optional wire values.
    pub rows: Vec<Vec<Option<WireValue>>>,
}

/// The simulated remote endpoint.
///
/// Generic over store ownership like the router: borrow for the
/// in-process library mode, `Arc` to hand it to server worker threads.
pub struct RemoteEndpoint<S: Borrow<TripleStore>> {
    store: S,
    config: RemoteConfig,
    faults: Option<FaultInjector>,
}

impl<S: Borrow<TripleStore>> RemoteEndpoint<S> {
    /// A remote endpoint over a (remote) store.
    pub fn new(store: S, config: RemoteConfig) -> Self {
        RemoteEndpoint {
            store,
            config,
            faults: None,
        }
    }

    /// Attach a seeded fault plan: the simulated backend now misbehaves
    /// deterministically per the plan's schedule.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(FaultInjector::new(plan));
        self
    }

    /// The fault injector, when one is attached.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.faults.as_ref()
    }

    /// Sleep for `cost`, clamped to the deadline. Returns an error if
    /// the deadline expires during (or before) the wait.
    fn charge(&self, cost: Duration, deadline: Deadline) -> Result<(), ServeError> {
        let capped = deadline.clamp(cost);
        if !capped.is_zero() {
            std::thread::sleep(capped);
        }
        if capped < cost {
            // The budget ran out before the simulated transfer finished.
            return Err(ServeError::DeadlineExceeded);
        }
        deadline.check()
    }

    /// The "HTTP" request under a deadline: execute the query remotely
    /// and return the raw SPARQL-JSON response body, charging the
    /// latency model and injecting any scheduled fault.
    pub fn try_request(&self, query: &str, deadline: Deadline) -> Result<String, ServeError> {
        deadline.check()?;
        let fault = self.faults.as_ref().and_then(|f| f.next_fault());
        match fault {
            Some(FaultKind::ConnectionError) => {
                return Err(ServeError::Transient(
                    "connection refused (injected)".into(),
                ));
            }
            Some(FaultKind::Timeout) => {
                let stall = self
                    .faults
                    .as_ref()
                    .map(|f| f.plan().stall)
                    .unwrap_or_default();
                // The backend stalls; the client observes either its own
                // deadline expiring or a read timeout after the stall.
                return match self.charge(stall, deadline) {
                    Err(e) => Err(e),
                    Ok(()) => Err(ServeError::Transient("read timed out (injected)".into())),
                };
            }
            _ => {}
        }
        let store = self.store.borrow();
        let solutions = Executor::new(store).run(query)?;
        let body = json::encode_solutions(&solutions, store);
        let mut cost = self.config.round_trip + self.config.per_row * (solutions.rows.len() as u32);
        if fault == Some(FaultKind::LatencySpike) {
            cost += self
                .faults
                .as_ref()
                .map(|f| f.plan().spike_latency)
                .unwrap_or_default();
        }
        self.charge(cost, deadline)?;
        if fault == Some(FaultKind::MalformedJson) {
            // Truncate mid-body: syntactically broken JSON, as if the
            // connection died during transfer.
            return Ok(body[..body.len() / 2].to_string());
        }
        Ok(body)
    }

    /// The "HTTP" request with no deadline (compatibility path).
    pub fn request(&self, query: &str) -> Result<String, ServeError> {
        self.try_request(query, Deadline::unbounded())
    }

    /// Execute a query and decode the response the way the browser
    /// frontend does: into [`WireSolutions`] with no interned ids.
    pub fn execute_wire(&self, query: &str) -> Result<(WireSolutions, Duration), ServeError> {
        let start = Instant::now();
        let body = self.request(query)?;
        let decoded = decode_wire(&body)
            .map_err(|e| ServeError::Transient(format!("malformed response body: {e}")))?;
        Ok((decoded, start.elapsed()))
    }
}

impl<S: Borrow<TripleStore> + Send + Sync> QueryEngine for RemoteEndpoint<S> {
    fn execute(&self, query: &str) -> Result<QueryOutcome, ServeError> {
        self.execute_with(query, &QueryContext::default())
    }

    fn execute_with(&self, query: &str, ctx: &QueryContext) -> Result<QueryOutcome, ServeError> {
        let start = Instant::now();
        let body = {
            // One span for the whole simulated HTTP exchange (latency
            // charge + remote evaluation + transfer).
            let _span = ctx.trace.span("remote");
            self.try_request(query, ctx.deadline)?
        };
        let store = self.store.borrow();
        let solutions: Solutions = json::decode_solutions(&body, store)
            .map_err(|e| ServeError::Transient(format!("malformed response body: {e}")))?;
        Ok(QueryOutcome {
            solutions,
            elapsed: start.elapsed(),
            served_by: ServedBy::Remote,
            shards_used: 1,
            data_epoch: store.epoch(),
        })
    }

    fn data_epoch(&self) -> u64 {
        self.store.borrow().epoch()
    }
}

/// Decode a SPARQL-JSON body into frontend wire values.
pub fn decode_wire(body: &str) -> Result<WireSolutions, json::JsonError> {
    let root = json::parse_json(body)?;
    let vars: Vec<String> = root
        .get("head")
        .and_then(|h| h.get("vars"))
        .and_then(json::Json::as_array)
        .map(|a| {
            a.iter()
                .filter_map(|v| v.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default();
    let bindings = root
        .get("results")
        .and_then(|r| r.get("bindings"))
        .and_then(json::Json::as_array)
        .unwrap_or(&[]);
    let mut rows = Vec::with_capacity(bindings.len());
    for b in bindings {
        let mut row: Vec<Option<WireValue>> = vec![None; vars.len()];
        for (i, v) in vars.iter().enumerate() {
            if let Some(cell) = b.get(v) {
                let ty = cell
                    .get("type")
                    .and_then(json::Json::as_str)
                    .unwrap_or("literal");
                let value = cell
                    .get("value")
                    .and_then(json::Json::as_str)
                    .unwrap_or("")
                    .to_string();
                row[i] = Some(match ty {
                    "uri" | "bnode" => WireValue::Uri(value),
                    _ => WireValue::Literal(value),
                });
            }
        }
        rows.push(row);
    }
    Ok(WireSolutions { vars, rows })
}

/// Convenience for tests and examples: numeric view of a wire value.
pub fn wire_number(v: &WireValue) -> Option<f64> {
    match v {
        WireValue::Literal(s) => s.parse().ok(),
        WireValue::Uri(_) => None,
    }
}

/// Convenience: interpret a local computed value as a wire value (used
/// when comparing remote against local results).
pub fn value_to_wire(v: &Value, store: &TripleStore) -> WireValue {
    match v {
        Value::Term(id) => match store.resolve(*id) {
            elinda_rdf::Term::Iri(i) => WireValue::Uri(i.to_string()),
            elinda_rdf::Term::Literal(l) => WireValue::Literal(l.lexical().to_string()),
        },
        other => WireValue::Literal(other.as_str_value(store)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TripleStore {
        TripleStore::from_turtle(
            r#"
            @prefix ex: <http://e/> .
            ex:a a ex:C ; ex:n 42 .
            ex:b a ex:C .
            "#,
        )
        .unwrap()
    }

    #[test]
    fn wire_round_trip_matches_local() {
        let s = store();
        let remote = RemoteEndpoint::new(&s, RemoteConfig::instant());
        let (wire, _) = remote
            .execute_wire("SELECT ?x WHERE { ?x a <http://e/C> }")
            .unwrap();
        assert_eq!(wire.vars, vec!["x"]);
        assert_eq!(wire.rows.len(), 2);
        assert!(matches!(wire.rows[0][0], Some(WireValue::Uri(_))));

        // Compare against local execution through value_to_wire.
        let local = Executor::new(&s)
            .run("SELECT ?x WHERE { ?x a <http://e/C> }")
            .unwrap();
        let local_wire: Vec<WireValue> = local
            .rows
            .iter()
            .map(|r| value_to_wire(r[0].as_ref().unwrap(), &s))
            .collect();
        let remote_wire: Vec<WireValue> = wire.rows.iter().map(|r| r[0].clone().unwrap()).collect();
        assert_eq!(local_wire, remote_wire);
    }

    #[test]
    fn latency_is_charged() {
        let s = store();
        let cfg = RemoteConfig {
            round_trip: Duration::from_millis(15),
            per_row: Duration::ZERO,
        };
        let remote = RemoteEndpoint::new(&s, cfg);
        let (_, elapsed) = remote
            .execute_wire("SELECT ?x WHERE { ?x a <http://e/C> }")
            .unwrap();
        assert!(elapsed >= Duration::from_millis(15), "{elapsed:?}");
    }

    #[test]
    fn query_engine_impl_decodes_to_values() {
        let s = store();
        let remote = RemoteEndpoint::new(&s, RemoteConfig::instant());
        let out = remote
            .execute("SELECT (COUNT(*) AS ?n) WHERE { ?x a <http://e/C> }")
            .unwrap();
        assert_eq!(out.served_by, ServedBy::Remote);
        assert_eq!(out.solutions.rows[0][0], Some(Value::Int(2)));
    }

    #[test]
    fn wire_numbers() {
        assert_eq!(wire_number(&WireValue::Literal("2.5".into())), Some(2.5));
        assert_eq!(wire_number(&WireValue::Uri("http://x".into())), None);
    }

    #[test]
    fn bad_queries_error() {
        let s = store();
        let remote = RemoteEndpoint::new(&s, RemoteConfig::instant());
        assert!(remote.execute_wire("SELECT").is_err());
    }

    #[test]
    fn deadline_caps_the_simulated_round_trip() {
        let s = store();
        let cfg = RemoteConfig {
            round_trip: Duration::from_secs(10),
            per_row: Duration::ZERO,
        };
        let remote = RemoteEndpoint::new(&s, cfg);
        let started = Instant::now();
        let err = remote
            .try_request(
                "SELECT ?x WHERE { ?x a <http://e/C> }",
                Deadline::within(Duration::from_millis(30)),
            )
            .unwrap_err();
        assert!(matches!(err, ServeError::DeadlineExceeded));
        assert!(started.elapsed() < Duration::from_millis(500), "no hang");
    }

    #[test]
    fn injected_connection_errors_are_transient() {
        let s = store();
        let mut plan = FaultPlan::none(5);
        plan.connection_rate = 1.0;
        let remote = RemoteEndpoint::new(&s, RemoteConfig::instant()).with_faults(plan);
        let err = remote
            .execute("SELECT ?x WHERE { ?x a <http://e/C> }")
            .unwrap_err();
        assert!(err.is_transient(), "{err:?}");
        assert_eq!(remote.fault_injector().unwrap().injected(), 1);
    }

    #[test]
    fn injected_malformed_body_fails_decode_as_transient() {
        let s = store();
        let mut plan = FaultPlan::none(5);
        plan.malformed_rate = 1.0;
        let remote = RemoteEndpoint::new(&s, RemoteConfig::instant()).with_faults(plan);
        let err = remote
            .execute("SELECT ?x WHERE { ?x a <http://e/C> }")
            .unwrap_err();
        assert!(matches!(&err, ServeError::Transient(m) if m.contains("malformed")));
    }

    #[test]
    fn injected_timeout_respects_deadline() {
        let s = store();
        let mut plan = FaultPlan::none(5);
        plan.timeout_rate = 1.0;
        plan.stall = Duration::from_secs(10);
        let remote = RemoteEndpoint::new(&s, RemoteConfig::instant()).with_faults(plan);
        let started = Instant::now();
        let err = remote
            .try_request(
                "SELECT ?x WHERE { ?x a <http://e/C> }",
                Deadline::within(Duration::from_millis(25)),
            )
            .unwrap_err();
        assert!(matches!(err, ServeError::DeadlineExceeded));
        assert!(started.elapsed() < Duration::from_millis(500), "no hang");
    }

    #[test]
    fn arc_owned_remote_is_shareable() {
        use std::sync::Arc;
        let s = Arc::new(store());
        let remote = Arc::new(RemoteEndpoint::new(Arc::clone(&s), RemoteConfig::instant()));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let remote = Arc::clone(&remote);
                std::thread::spawn(move || {
                    remote
                        .execute("SELECT ?x WHERE { ?x a <http://e/C> }")
                        .unwrap()
                        .solutions
                        .len()
                })
            })
            .collect();
        for t in threads {
            assert_eq!(t.join().unwrap(), 2);
        }
    }
}
