//! Remote compatibility mode.
//!
//! "We also allow ELINDA to work with a remote Virtuoso endpoint that can
//! be configured in the setting form by merely specifying the endpoint
//! URL. Naturally, in this mode responsiveness is lower than the above
//! local mode. Yet, the aforementioned incremental evaluation is
//! applicable (and applied) even in the remote mode." (Section 4)
//!
//! [`RemoteEndpoint`] simulates that remote server: every request pays a
//! configurable round-trip latency, the response travels through the real
//! SPARQL-JSON wire format (encode on the "server", decode on the
//! "client"), and **no preprocessing is available** — no decomposer, no
//! HVS, exactly as the paper's design states for endpoints it cannot
//! preprocess.

use crate::engine::{QueryEngine, QueryOutcome, ServedBy};
use crate::json;
use elinda_sparql::exec::QueryError;
use elinda_sparql::{Executor, Solutions, Value};
use elinda_store::TripleStore;
use std::time::{Duration, Instant};

/// Latency model of the simulated remote endpoint.
#[derive(Debug, Clone)]
pub struct RemoteConfig {
    /// Round-trip latency charged per request.
    pub round_trip: Duration,
    /// Additional cost per result row (serialization + transfer).
    pub per_row: Duration,
}

impl Default for RemoteConfig {
    fn default() -> Self {
        RemoteConfig {
            round_trip: Duration::from_millis(20),
            per_row: Duration::from_micros(2),
        }
    }
}

impl RemoteConfig {
    /// A zero-latency remote (for tests that only exercise the wire
    /// format).
    pub fn instant() -> Self {
        RemoteConfig {
            round_trip: Duration::ZERO,
            per_row: Duration::ZERO,
        }
    }
}

/// A value as the frontend sees it after the wire: no interned ids.
#[derive(Debug, Clone, PartialEq)]
pub enum WireValue {
    /// A URI.
    Uri(String),
    /// A literal lexical form (language/datatype collapsed for display).
    Literal(String),
}

/// A decoded result table as the frontend holds it.
#[derive(Debug, Clone, PartialEq)]
pub struct WireSolutions {
    /// Column names.
    pub vars: Vec<String>,
    /// Rows of optional wire values.
    pub rows: Vec<Vec<Option<WireValue>>>,
}

/// The simulated remote endpoint.
pub struct RemoteEndpoint<'a> {
    store: &'a TripleStore,
    config: RemoteConfig,
}

impl<'a> RemoteEndpoint<'a> {
    /// A remote endpoint over a (remote) store.
    pub fn new(store: &'a TripleStore, config: RemoteConfig) -> Self {
        RemoteEndpoint { store, config }
    }

    /// The "HTTP" request: execute the query remotely and return the raw
    /// SPARQL-JSON response body, charging the latency model.
    pub fn request(&self, query: &str) -> Result<String, QueryError> {
        let solutions = Executor::new(self.store).run(query)?;
        let body = json::encode_solutions(&solutions, self.store);
        let cost = self.config.round_trip + self.config.per_row * (solutions.rows.len() as u32);
        if !cost.is_zero() {
            std::thread::sleep(cost);
        }
        Ok(body)
    }

    /// Execute a query and decode the response the way the browser
    /// frontend does: into [`WireSolutions`] with no interned ids.
    pub fn execute_wire(&self, query: &str) -> Result<(WireSolutions, Duration), QueryError> {
        let start = Instant::now();
        let body = self.request(query)?;
        let decoded = decode_wire(&body).map_err(|e| {
            QueryError::Exec(elinda_sparql::ExecError {
                message: e.to_string(),
            })
        })?;
        Ok((decoded, start.elapsed()))
    }
}

impl QueryEngine for RemoteEndpoint<'_> {
    fn execute(&self, query: &str) -> Result<QueryOutcome, QueryError> {
        let start = Instant::now();
        let body = self.request(query)?;
        let solutions: Solutions = json::decode_solutions(&body, self.store).map_err(|e| {
            QueryError::Exec(elinda_sparql::ExecError {
                message: e.to_string(),
            })
        })?;
        Ok(QueryOutcome {
            solutions,
            elapsed: start.elapsed(),
            served_by: ServedBy::Remote,
            shards_used: 1,
        })
    }

    fn data_epoch(&self) -> u64 {
        self.store.epoch()
    }
}

/// Decode a SPARQL-JSON body into frontend wire values.
pub fn decode_wire(body: &str) -> Result<WireSolutions, json::JsonError> {
    let root = json::parse_json(body)?;
    let vars: Vec<String> = root
        .get("head")
        .and_then(|h| h.get("vars"))
        .and_then(json::Json::as_array)
        .map(|a| {
            a.iter()
                .filter_map(|v| v.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default();
    let bindings = root
        .get("results")
        .and_then(|r| r.get("bindings"))
        .and_then(json::Json::as_array)
        .unwrap_or(&[]);
    let mut rows = Vec::with_capacity(bindings.len());
    for b in bindings {
        let mut row: Vec<Option<WireValue>> = vec![None; vars.len()];
        for (i, v) in vars.iter().enumerate() {
            if let Some(cell) = b.get(v) {
                let ty = cell
                    .get("type")
                    .and_then(json::Json::as_str)
                    .unwrap_or("literal");
                let value = cell
                    .get("value")
                    .and_then(json::Json::as_str)
                    .unwrap_or("")
                    .to_string();
                row[i] = Some(match ty {
                    "uri" | "bnode" => WireValue::Uri(value),
                    _ => WireValue::Literal(value),
                });
            }
        }
        rows.push(row);
    }
    Ok(WireSolutions { vars, rows })
}

/// Convenience for tests and examples: numeric view of a wire value.
pub fn wire_number(v: &WireValue) -> Option<f64> {
    match v {
        WireValue::Literal(s) => s.parse().ok(),
        WireValue::Uri(_) => None,
    }
}

/// Convenience: interpret a local computed value as a wire value (used
/// when comparing remote against local results).
pub fn value_to_wire(v: &Value, store: &TripleStore) -> WireValue {
    match v {
        Value::Term(id) => match store.resolve(*id) {
            elinda_rdf::Term::Iri(i) => WireValue::Uri(i.to_string()),
            elinda_rdf::Term::Literal(l) => WireValue::Literal(l.lexical().to_string()),
        },
        other => WireValue::Literal(other.as_str_value(store)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TripleStore {
        TripleStore::from_turtle(
            r#"
            @prefix ex: <http://e/> .
            ex:a a ex:C ; ex:n 42 .
            ex:b a ex:C .
            "#,
        )
        .unwrap()
    }

    #[test]
    fn wire_round_trip_matches_local() {
        let s = store();
        let remote = RemoteEndpoint::new(&s, RemoteConfig::instant());
        let (wire, _) = remote
            .execute_wire("SELECT ?x WHERE { ?x a <http://e/C> }")
            .unwrap();
        assert_eq!(wire.vars, vec!["x"]);
        assert_eq!(wire.rows.len(), 2);
        assert!(matches!(wire.rows[0][0], Some(WireValue::Uri(_))));

        // Compare against local execution through value_to_wire.
        let local = Executor::new(&s)
            .run("SELECT ?x WHERE { ?x a <http://e/C> }")
            .unwrap();
        let local_wire: Vec<WireValue> = local
            .rows
            .iter()
            .map(|r| value_to_wire(r[0].as_ref().unwrap(), &s))
            .collect();
        let remote_wire: Vec<WireValue> = wire.rows.iter().map(|r| r[0].clone().unwrap()).collect();
        assert_eq!(local_wire, remote_wire);
    }

    #[test]
    fn latency_is_charged() {
        let s = store();
        let cfg = RemoteConfig {
            round_trip: Duration::from_millis(15),
            per_row: Duration::ZERO,
        };
        let remote = RemoteEndpoint::new(&s, cfg);
        let (_, elapsed) = remote
            .execute_wire("SELECT ?x WHERE { ?x a <http://e/C> }")
            .unwrap();
        assert!(elapsed >= Duration::from_millis(15), "{elapsed:?}");
    }

    #[test]
    fn query_engine_impl_decodes_to_values() {
        let s = store();
        let remote = RemoteEndpoint::new(&s, RemoteConfig::instant());
        let out = remote
            .execute("SELECT (COUNT(*) AS ?n) WHERE { ?x a <http://e/C> }")
            .unwrap();
        assert_eq!(out.served_by, ServedBy::Remote);
        assert_eq!(out.solutions.rows[0][0], Some(Value::Int(2)));
    }

    #[test]
    fn wire_numbers() {
        assert_eq!(wire_number(&WireValue::Literal("2.5".into())), Some(2.5));
        assert_eq!(wire_number(&WireValue::Uri("http://x".into())), None);
    }

    #[test]
    fn bad_queries_error() {
        let s = store();
        let remote = RemoteEndpoint::new(&s, RemoteConfig::instant());
        assert!(remote.execute_wire("SELECT").is_err());
    }
}
