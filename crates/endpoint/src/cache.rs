//! Epoch-aware result cache for exploration-path reuse.
//!
//! The paper's third pillar — incremental evaluation — only pays off when a
//! request can *find* the work its parent already did. This module provides
//! the lookup substrate:
//!
//! * [`normalize_query_text`] canonicalizes a SPARQL query's text (whitespace,
//!   percent-encoding inside IRI refs, adjacent `FILTER` order) so that
//!   semantically identical requests arriving via different transports
//!   (`GET` vs `POST /sparql`, hand-written vs generated) converge on one
//!   cache key. The router executes the *normalized* text, so the key is
//!   injective by construction: equal keys ⇒ equal executed query ⇒ equal
//!   bytes.
//! * [`ResultCache`] is a sharded LRU holding two kinds of entries, both
//!   invalidated by the store's atomic epoch:
//!   - finished bar-chart **results** (`Arc<Solutions>`), keyed by normalized
//!     query text, with a stale side for the degradation ladder, and
//!   - parent **entity frontiers** (`Arc<Vec<TermId>>` — the sorted instance
//!     set of a class), keyed by class IRI, which seed incremental expansion
//!     of child bars.
//!
//! The epoch protocol mirrors [`crate::hvs::HeavyQueryStore`]: a lock-free
//! `AtomicU64` fast path, and on a bump the fresh result side migrates to an
//! epoch-tagged stale side while frontiers (useless once the instance sets
//! may have changed) are dropped.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use elinda_rdf::fx::FxHashMap;
use elinda_rdf::TermId;
use elinda_sparql::Solutions;
use parking_lot::Mutex;

use crate::hvs::StaleEntry;

/// Sizing knobs for [`ResultCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum number of fresh result entries across all shards.
    pub max_entries: usize,
    /// Approximate byte budget for fresh results + frontiers across all
    /// shards. Entry costs are estimates (see `solutions_cost`), not exact
    /// heap measurements.
    pub max_bytes: usize,
    /// Number of internal lock shards. Clamped to at least 1.
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            max_entries: 512,
            max_bytes: 16 * 1024 * 1024,
            shards: 8,
        }
    }
}

/// Monotone counters describing cache behaviour. Snapshot via
/// [`ResultCache::stats`]; all counts are cumulative since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Fresh result lookups that returned an entry.
    pub hits: u64,
    /// Fresh result lookups that found nothing.
    pub misses: u64,
    /// Results admitted to the fresh side.
    pub insertions: u64,
    /// Fresh entries evicted for capacity (entries or bytes).
    pub evictions: u64,
    /// Epoch bumps observed (fresh side migrated to stale, frontiers dropped).
    pub invalidations: u64,
    /// Stale-side lookups that returned an entry (degradation ladder reuse).
    pub stale_hits: u64,
    /// Frontier lookups that returned a current-epoch entry.
    pub frontier_hits: u64,
    /// Frontier lookups that found nothing usable.
    pub frontier_misses: u64,
    /// Frontiers admitted.
    pub frontier_insertions: u64,
}

struct ResultEntry {
    solutions: Arc<Solutions>,
    cost: usize,
    last_used: u64,
}

struct FrontierEntry {
    members: Arc<Vec<TermId>>,
    epoch: u64,
    cost: usize,
    last_used: u64,
}

#[derive(Default)]
struct ShardInner {
    results: FxHashMap<String, ResultEntry>,
    stale: FxHashMap<String, (Arc<Solutions>, u64)>,
    stale_order: VecDeque<String>,
    frontiers: FxHashMap<String, FrontierEntry>,
    bytes: usize,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    stale_hits: u64,
    frontier_hits: u64,
    frontier_misses: u64,
    frontier_insertions: u64,
}

/// Sharded, epoch-aware LRU cache of finished chart results and parent
/// entity frontiers. All methods are `&self` and thread-safe.
pub struct ResultCache {
    config: CacheConfig,
    epoch: AtomicU64,
    tick: AtomicU64,
    invalidations: AtomicU64,
    shards: Vec<Mutex<ShardInner>>,
}

impl ResultCache {
    /// Creates an empty cache at epoch 0.
    pub fn new(config: CacheConfig) -> Self {
        let n = config.shards.max(1);
        ResultCache {
            config,
            epoch: AtomicU64::new(0),
            tick: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            shards: (0..n).map(|_| Mutex::new(ShardInner::default())).collect(),
        }
    }

    /// The sizing configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The epoch this cache currently considers fresh.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    fn shard_for(&self, key: &str) -> &Mutex<ShardInner> {
        // FNV-1a over the key bytes; only shard selection, not security.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(h as usize) % self.shards.len()]
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    fn entries_per_shard(&self) -> usize {
        self.config.max_entries.div_ceil(self.shards.len()).max(1)
    }

    fn bytes_per_shard(&self) -> usize {
        (self.config.max_bytes / self.shards.len()).max(1024)
    }

    /// Brings the cache up to `epoch` if the store has moved on. Fresh
    /// results migrate to the epoch-tagged stale side (never overwriting a
    /// newer stale entry); frontiers are dropped, since the instance sets
    /// they describe may have changed. Returns `true` if a migration ran.
    pub fn sync_epoch(&self, epoch: u64) -> bool {
        if self.epoch.load(Ordering::Acquire) >= epoch {
            return false;
        }
        // Lock shards in order so concurrent syncs cannot deadlock; re-check
        // under the locks in case another thread migrated first.
        let mut guards: Vec<_> = self.shards.iter().map(|s| s.lock()).collect();
        let old = self.epoch.load(Ordering::Acquire);
        if old >= epoch {
            return false;
        }
        for inner in guards.iter_mut() {
            let drained: Vec<_> = inner.results.drain().collect();
            for (key, entry) in drained {
                upsert_stale(inner, key, entry.solutions, old, self.config.max_entries);
            }
            inner.frontiers.clear();
            inner.bytes = 0;
        }
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        self.epoch.store(epoch, Ordering::Release);
        true
    }

    /// Looks up a fresh result by normalized query text, bumping its LRU
    /// position. The returned value is a cheap `Arc` clone.
    pub fn get(&self, key: &str) -> Option<Arc<Solutions>> {
        let tick = self.next_tick();
        let mut inner = self.shard_for(key).lock();
        if let Some(entry) = inner.results.get_mut(key) {
            entry.last_used = tick;
            let out = Arc::clone(&entry.solutions);
            inner.hits += 1;
            Some(out)
        } else {
            inner.misses += 1;
            None
        }
    }

    /// Like [`ResultCache::get`] but without touching counters or LRU state.
    pub fn peek(&self, key: &str) -> Option<Arc<Solutions>> {
        let inner = self.shard_for(key).lock();
        inner.results.get(key).map(|e| Arc::clone(&e.solutions))
    }

    /// Records a finished result computed against `epoch`. If the cache has
    /// already moved past that epoch the result is routed to the stale side
    /// instead of being served as fresh; results from a *future* epoch (the
    /// cache simply hasn't synced yet) are dropped — the next request will
    /// sync and recompute.
    pub fn record(&self, key: &str, solutions: &Solutions, epoch: u64) {
        let current = self.epoch.load(Ordering::Acquire);
        if epoch > current {
            return;
        }
        let cost = solutions_cost(solutions) + key.len();
        let tick = self.next_tick();
        let per_shard_entries = self.entries_per_shard();
        let per_shard_bytes = self.bytes_per_shard();
        let mut inner = self.shard_for(key).lock();
        if epoch < current {
            upsert_stale(
                &mut inner,
                key.to_string(),
                Arc::new(solutions.clone()),
                epoch,
                self.config.max_entries,
            );
            return;
        }
        if inner.results.contains_key(key) {
            return;
        }
        if cost > per_shard_bytes {
            return; // single entry larger than the shard budget: never admit
        }
        while inner.results.len() >= per_shard_entries || inner.bytes + cost > per_shard_bytes {
            if !evict_lru(&mut inner) {
                break;
            }
        }
        inner.bytes += cost;
        inner.insertions += 1;
        inner.results.insert(
            key.to_string(),
            ResultEntry {
                solutions: Arc::new(solutions.clone()),
                cost,
                last_used: tick,
            },
        );
    }

    /// Looks up an epoch-tagged stale result for the degradation ladder.
    pub fn get_stale(&self, key: &str) -> Option<StaleEntry> {
        let mut inner = self.shard_for(key).lock();
        let (solutions, epoch) = inner.stale.get(key).map(|(s, e)| (Arc::clone(s), *e))?;
        inner.stale_hits += 1;
        Some(StaleEntry {
            solutions: (*solutions).clone(),
            epoch,
        })
    }

    /// Records the sorted instance frontier of `class_iri` observed at
    /// `epoch`. Dropped silently unless `epoch` matches the cache's current
    /// epoch (a stale frontier must never seed evaluation).
    pub fn record_frontier(&self, class_iri: &str, members: Arc<Vec<TermId>>, epoch: u64) {
        if self.epoch.load(Ordering::Acquire) != epoch {
            return;
        }
        let cost = members.len() * std::mem::size_of::<TermId>() + class_iri.len();
        let tick = self.next_tick();
        let per_shard_bytes = self.bytes_per_shard();
        if cost > per_shard_bytes {
            return;
        }
        let mut inner = self.shard_for(class_iri).lock();
        if let Some(existing) = inner.frontiers.get(class_iri) {
            if existing.epoch == epoch {
                return;
            }
        }
        while inner.bytes + cost > per_shard_bytes {
            if !evict_lru(&mut inner) {
                break;
            }
        }
        if let Some(old) = inner.frontiers.insert(
            class_iri.to_string(),
            FrontierEntry {
                members,
                epoch,
                cost,
                last_used: tick,
            },
        ) {
            inner.bytes -= old.cost;
        }
        inner.bytes += cost;
        inner.frontier_insertions += 1;
    }

    /// Looks up a current-epoch frontier for `class_iri`, bumping its LRU
    /// position and counting hit/miss.
    pub fn frontier(&self, class_iri: &str) -> Option<Arc<Vec<TermId>>> {
        let current = self.epoch.load(Ordering::Acquire);
        let tick = self.next_tick();
        let mut inner = self.shard_for(class_iri).lock();
        match inner.frontiers.get_mut(class_iri) {
            Some(entry) if entry.epoch == current => {
                entry.last_used = tick;
                let out = Arc::clone(&entry.members);
                inner.frontier_hits += 1;
                Some(out)
            }
            _ => {
                inner.frontier_misses += 1;
                None
            }
        }
    }

    /// Like [`ResultCache::frontier`] but without counters or LRU effects.
    pub fn peek_frontier(&self, class_iri: &str) -> Option<Arc<Vec<TermId>>> {
        let current = self.epoch.load(Ordering::Acquire);
        let inner = self.shard_for(class_iri).lock();
        match inner.frontiers.get(class_iri) {
            Some(entry) if entry.epoch == current => Some(Arc::clone(&entry.members)),
            _ => None,
        }
    }

    /// Number of fresh result entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().results.len()).sum()
    }

    /// True when no fresh results are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Estimated bytes held by fresh results and frontiers.
    pub fn bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().bytes).sum()
    }

    /// Number of stale-side entries.
    pub fn stale_len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().stale.len()).sum()
    }

    /// Number of cached frontiers (any epoch tag).
    pub fn frontier_len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().frontiers.len()).sum()
    }

    /// Sums per-shard counters into one snapshot.
    pub fn stats(&self) -> CacheStats {
        let mut out = CacheStats {
            invalidations: self.invalidations.load(Ordering::Relaxed),
            ..CacheStats::default()
        };
        for shard in &self.shards {
            let inner = shard.lock();
            out.hits += inner.hits;
            out.misses += inner.misses;
            out.insertions += inner.insertions;
            out.evictions += inner.evictions;
            out.stale_hits += inner.stale_hits;
            out.frontier_hits += inner.frontier_hits;
            out.frontier_misses += inner.frontier_misses;
            out.frontier_insertions += inner.frontier_insertions;
        }
        out
    }
}

/// Evicts the least-recently-used entry (result or frontier) from `inner`.
/// Returns `false` when there is nothing left to evict.
fn evict_lru(inner: &mut ShardInner) -> bool {
    let oldest_result = inner
        .results
        .iter()
        .min_by_key(|(_, e)| e.last_used)
        .map(|(k, e)| (k.clone(), e.last_used));
    let oldest_frontier = inner
        .frontiers
        .iter()
        .min_by_key(|(_, e)| e.last_used)
        .map(|(k, e)| (k.clone(), e.last_used));
    match (oldest_result, oldest_frontier) {
        (Some((rk, rt)), Some((_, ft))) if rt <= ft => {
            let e = inner.results.remove(&rk).expect("key just observed");
            inner.bytes -= e.cost;
            inner.evictions += 1;
            true
        }
        (Some((rk, _)), None) => {
            let e = inner.results.remove(&rk).expect("key just observed");
            inner.bytes -= e.cost;
            inner.evictions += 1;
            true
        }
        (_, Some((fk, _))) => {
            let e = inner.frontiers.remove(&fk).expect("key just observed");
            inner.bytes -= e.cost;
            inner.evictions += 1;
            true
        }
        (None, None) => false,
    }
}

/// Inserts into the stale side, never letting an older epoch overwrite a
/// newer one, with FIFO eviction at `capacity`.
fn upsert_stale(
    inner: &mut ShardInner,
    key: String,
    solutions: Arc<Solutions>,
    epoch: u64,
    capacity: usize,
) {
    match inner.stale.get(&key) {
        Some((_, have)) if *have > epoch => {}
        Some(_) => {
            inner.stale.insert(key, (solutions, epoch));
        }
        None => {
            while inner.stale.len() >= capacity.max(1) {
                match inner.stale_order.pop_front() {
                    Some(victim) => {
                        inner.stale.remove(&victim);
                    }
                    None => break,
                }
            }
            inner.stale_order.push_back(key.clone());
            inner.stale.insert(key, (solutions, epoch));
        }
    }
}

/// Rough heap cost of a result set: per-row/per-cell overhead plus var names.
fn solutions_cost(s: &Solutions) -> usize {
    let cols = s.vars.len().max(1);
    s.vars.iter().map(|v| v.len() + 24).sum::<usize>() + s.rows.len() * cols * 24 + 48
}

/// Canonicalizes SPARQL query text so semantically identical requests share
/// one cache key — and, since the router executes the normalized text, one
/// execution. Three rewrites, each semantics-preserving:
///
/// 1. whitespace runs outside quoted strings and IRI refs collapse to a
///    single space (leading/trailing trimmed);
/// 2. percent-escapes inside `<...>` IRI refs are normalized: unreserved
///    ASCII (`A-Z a-z 0-9 - . _ ~`) and valid UTF-8 multibyte sequences are
///    decoded, remaining escapes get uppercase hex;
/// 3. runs of *adjacent* `FILTER(...)` clauses (separated only by
///    whitespace) are sorted textually — conjunctive filters commute.
///
/// Malformed input (unterminated string/IRI, unbalanced filter parens) is
/// returned with only the whitespace pass applied; the parser will reject it
/// downstream with its usual error.
pub fn normalize_query_text(query: &str) -> String {
    let collapsed = collapse_whitespace(query);
    match collapsed {
        Some(text) => sort_adjacent_filters(&text),
        None => query.trim().to_string(),
    }
}

/// Index of the `>` closing an IRI ref whose `<` is at byte `at`, or `None`
/// if this `<` is not an IRI-ref opener (an IRI ref contains no whitespace,
/// quotes, or nested `<` before its closer — a comparison operator's context
/// always does, or hits end-of-input).
fn iri_end(bytes: &[u8], at: usize) -> Option<usize> {
    debug_assert_eq!(bytes[at], b'<');
    let mut i = at + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'>' => return Some(i),
            b'<' | b'"' | b'\'' => return None,
            ws if ws.is_ascii_whitespace() => return None,
            _ => i += 1,
        }
    }
    None
}

/// Pass 1+2: whitespace collapse outside strings/IRIs and percent-escape
/// normalization inside IRI refs. Returns `None` on an unterminated quoted
/// string (caller falls back to the raw text).
fn collapse_whitespace(query: &str) -> Option<String> {
    let bytes = query.as_bytes();
    let mut out = String::with_capacity(query.len());
    let mut pending_space = false;
    let flush = |out: &mut String, pending: &mut bool| {
        if *pending {
            if !out.is_empty() {
                out.push(' ');
            }
            *pending = false;
        }
    };
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_whitespace() {
            pending_space = true;
            i += 1;
            continue;
        }
        match b {
            b'<' => {
                flush(&mut out, &mut pending_space);
                match iri_end(bytes, i) {
                    Some(close) => {
                        out.push('<');
                        out.push_str(&normalize_pct(&query[i + 1..close]));
                        out.push('>');
                        i = close + 1;
                    }
                    None => {
                        // A bare `<` (comparison operator): plain char.
                        out.push('<');
                        i += 1;
                    }
                }
            }
            b'"' | b'\'' => {
                flush(&mut out, &mut pending_space);
                out.push(b as char);
                i += 1;
                let mut escaped = false;
                let mut closed = false;
                while i < bytes.len() {
                    let ch_len = utf8_len(bytes[i]);
                    out.push_str(&query[i..i + ch_len]);
                    let sb = bytes[i];
                    i += ch_len;
                    if escaped {
                        escaped = false;
                    } else if sb == b'\\' {
                        escaped = true;
                    } else if sb == b {
                        closed = true;
                        break;
                    }
                }
                if !closed {
                    return None;
                }
            }
            _ => {
                flush(&mut out, &mut pending_space);
                let ch_len = utf8_len(b);
                out.push_str(&query[i..i + ch_len]);
                i += ch_len;
            }
        }
    }
    Some(out)
}

/// Normalizes percent-escapes in one IRI ref body: decodes unreserved ASCII
/// and valid multibyte UTF-8 runs, uppercases the hex of everything else.
fn normalize_pct(iri: &str) -> String {
    let bytes = iri.as_bytes();
    let mut out = String::with_capacity(iri.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() {
            if let (Some(hi), Some(lo)) = (hex_val(bytes[i + 1]), hex_val(bytes[i + 2])) {
                // Collect the maximal run of %XX triplets, then re-emit it
                // with unreserved/UTF-8 bytes decoded.
                let mut decoded: Vec<u8> = Vec::new();
                let mut j = i;
                decoded.push(hi << 4 | lo);
                j += 3;
                while j + 2 < bytes.len() && bytes[j] == b'%' {
                    match (hex_val(bytes[j + 1]), hex_val(bytes[j + 2])) {
                        (Some(h), Some(l)) => {
                            decoded.push(h << 4 | l);
                            j += 3;
                        }
                        _ => break,
                    }
                }
                emit_decoded_run(&decoded, &mut out);
                i = j;
                continue;
            }
        }
        // Plain byte: IRIs are char-boundary safe here because '%' is ASCII.
        let ch_len = utf8_len(bytes[i]);
        out.push_str(&iri[i..i + ch_len]);
        i += ch_len;
    }
    out
}

fn emit_decoded_run(decoded: &[u8], out: &mut String) {
    let mut k = 0;
    while k < decoded.len() {
        let b = decoded[k];
        if b.is_ascii_alphanumeric() || matches!(b, b'-' | b'.' | b'_' | b'~') {
            out.push(b as char);
            k += 1;
        } else if b >= 0x80 {
            let len = utf8_len(b);
            if len > 1 && k + len <= decoded.len() {
                if let Ok(s) = std::str::from_utf8(&decoded[k..k + len]) {
                    out.push_str(s);
                    k += len;
                    continue;
                }
            }
            push_pct(out, b);
            k += 1;
        } else {
            push_pct(out, b);
            k += 1;
        }
    }
}

fn push_pct(out: &mut String, b: u8) {
    const HEX: &[u8; 16] = b"0123456789ABCDEF";
    out.push('%');
    out.push(HEX[(b >> 4) as usize] as char);
    out.push(HEX[(b & 0x0f) as usize] as char);
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Byte length of the UTF-8 sequence starting with `b` (1 for ASCII or
/// invalid lead bytes, so the caller always advances).
fn utf8_len(b: u8) -> usize {
    match b {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 1,
    }
}

/// Pass 3: sorts runs of adjacent `FILTER(...)` clauses. Operates on
/// whitespace-collapsed text; only clauses separated purely by whitespace
/// form a run (an intervening `.` or triple pattern ends it), which keeps
/// the rewrite trivially semantics-preserving: conjunctive filters in one
/// group commute.
fn sort_adjacent_filters(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = String::with_capacity(text.len());
    let mut i = 0;
    while i < bytes.len() {
        if let Some((clauses, end)) = parse_filter_run(text, i) {
            if clauses.len() > 1 {
                let mut sorted = clauses.clone();
                sorted.sort();
                out.push_str(&sorted.join(" "));
            } else {
                out.push_str(&clauses[0]);
            }
            i = end;
            continue;
        }
        // Skip quoted strings and IRI refs wholesale so FILTER inside a
        // literal is never misparsed as a clause.
        match bytes[i] {
            b'"' | b'\'' => {
                let quote = bytes[i];
                out.push(bytes[i] as char);
                i += 1;
                let mut escaped = false;
                while i < bytes.len() {
                    let ch_len = utf8_len(bytes[i]);
                    out.push_str(&text[i..i + ch_len]);
                    let b = bytes[i];
                    i += ch_len;
                    if escaped {
                        escaped = false;
                    } else if b == b'\\' {
                        escaped = true;
                    } else if b == quote {
                        break;
                    }
                }
            }
            b'<' => match iri_end(bytes, i) {
                Some(close) => {
                    out.push_str(&text[i..=close]);
                    i = close + 1;
                }
                None => {
                    out.push('<');
                    i += 1;
                }
            },
            _ => {
                let ch_len = utf8_len(bytes[i]);
                out.push_str(&text[i..i + ch_len]);
                i += ch_len;
            }
        }
    }
    out
}

/// Tries to parse a run of `FILTER(...)` clauses starting at byte `at`.
/// Returns the clause texts and the byte offset just past the run.
fn parse_filter_run(text: &str, at: usize) -> Option<(Vec<String>, usize)> {
    let mut clauses = Vec::new();
    let mut i = at;
    loop {
        let (clause, end) = parse_one_filter(text, i)?;
        clauses.push(clause);
        // Peek past whitespace for another FILTER; anything else ends the run.
        let mut j = end;
        let bytes = text.as_bytes();
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        match parse_one_filter(text, j) {
            Some(_) => i = j,
            None => return Some((clauses, end)),
        }
    }
}

/// Parses a single `FILTER(...)` clause at byte `at` (case-insensitive
/// keyword, optional space before the paren, balanced parens with
/// quote-awareness). Returns the clause text and the offset just past it.
fn parse_one_filter(text: &str, at: usize) -> Option<(String, usize)> {
    let bytes = text.as_bytes();
    let kw = b"FILTER";
    if at + kw.len() > bytes.len() {
        return None;
    }
    if !bytes[at..at + kw.len()].eq_ignore_ascii_case(kw) {
        return None;
    }
    // Keyword must not continue an identifier (e.g. "?filterValue").
    if at > 0 {
        let prev = bytes[at - 1];
        if prev.is_ascii_alphanumeric() || prev == b'_' || prev == b'?' || prev == b'$' {
            return None;
        }
    }
    let mut i = at + kw.len();
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    if i >= bytes.len() || bytes[i] != b'(' {
        return None;
    }
    let start = i;
    let mut depth = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    let clause = format!("FILTER{}", &text[start..i]);
                    return Some((clause, i));
                }
            }
            q @ (b'"' | b'\'') => {
                i += 1;
                let mut escaped = false;
                while i < bytes.len() {
                    let b = bytes[i];
                    i += 1;
                    if escaped {
                        escaped = false;
                    } else if b == b'\\' {
                        escaped = true;
                    } else if b == q {
                        break;
                    }
                }
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    None // unbalanced parens: not a clause we can safely reorder
}

#[cfg(test)]
mod tests {
    use super::*;
    use elinda_sparql::Value;

    fn sols(rows: usize) -> Solutions {
        Solutions {
            vars: vec!["p".into(), "count".into()],
            rows: (0..rows)
                .map(|i| {
                    vec![
                        Some(Value::Str(format!("http://e/p{i}"))),
                        Some(Value::Int(i as i64)),
                    ]
                })
                .collect(),
        }
    }

    fn tid(raw: u32) -> TermId {
        TermId::from_raw(raw).expect("nonzero")
    }

    #[test]
    fn whitespace_collapses_outside_strings() {
        let q = "SELECT  ?s\n WHERE {\t?s ?p  \"a  b\" }";
        assert_eq!(
            normalize_query_text(q),
            "SELECT ?s WHERE { ?s ?p \"a  b\" }"
        );
    }

    #[test]
    fn percent_unreserved_decodes_and_hex_uppercases() {
        let q = "SELECT ?s WHERE { ?s a <http://e/%41gent%2fx> }";
        assert_eq!(
            normalize_query_text(q),
            "SELECT ?s WHERE { ?s a <http://e/Agent%2Fx> }"
        );
    }

    #[test]
    fn percent_utf8_multibyte_decodes() {
        // %C3%A9 = é
        let q = "SELECT ?s WHERE { ?s a <http://e/caf%C3%A9> }";
        assert_eq!(
            normalize_query_text(q),
            "SELECT ?s WHERE { ?s a <http://e/café> }"
        );
    }

    #[test]
    fn invalid_utf8_escape_stays_encoded_uppercase() {
        let q = "SELECT ?s WHERE { ?s a <http://e/x%ff> }";
        assert_eq!(
            normalize_query_text(q),
            "SELECT ?s WHERE { ?s a <http://e/x%FF> }"
        );
    }

    #[test]
    fn adjacent_filters_sort() {
        let a = "SELECT ?s WHERE { ?s ?p ?o FILTER(?o > 2) FILTER(?o < 9) }";
        let b = "SELECT ?s WHERE { ?s ?p ?o FILTER(?o < 9) FILTER(?o > 2) }";
        assert_eq!(normalize_query_text(a), normalize_query_text(b));
    }

    #[test]
    fn filters_split_by_pattern_do_not_sort() {
        let q = "SELECT ?s WHERE { ?s ?p ?o FILTER(?o > 2) ?s ?q ?r FILTER(?r < 9) }";
        assert_eq!(normalize_query_text(q), q);
    }

    #[test]
    fn filter_inside_string_untouched() {
        let q = r#"SELECT ?s WHERE { ?s ?p "FILTER(?x) FILTER(?a)" }"#;
        assert_eq!(normalize_query_text(q), q);
    }

    #[test]
    fn malformed_input_round_trips() {
        let q = "SELECT ?s WHERE { ?s ?p \"unterminated";
        assert_eq!(normalize_query_text(q), q);
    }

    #[test]
    fn get_and_record_round_trip() {
        let cache = ResultCache::new(CacheConfig::default());
        let s = sols(3);
        assert!(cache.get("k").is_none());
        cache.record("k", &s, 0);
        assert_eq!(*cache.get("k").unwrap(), s);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.insertions, 1);
    }

    #[test]
    fn sync_epoch_moves_fresh_to_stale_and_drops_frontiers() {
        let cache = ResultCache::new(CacheConfig::default());
        cache.record("k", &sols(2), 0);
        cache.record_frontier("http://e/C", Arc::new(vec![tid(1), tid(2)]), 0);
        assert_eq!(cache.frontier_len(), 1);
        assert!(cache.sync_epoch(1));
        assert!(!cache.sync_epoch(1));
        assert!(cache.get("k").is_none());
        assert_eq!(cache.frontier_len(), 0);
        let stale = cache.get_stale("k").expect("migrated to stale side");
        assert_eq!(stale.epoch, 0);
        assert_eq!(stale.solutions, sols(2));
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn record_at_old_epoch_goes_stale_not_fresh() {
        let cache = ResultCache::new(CacheConfig::default());
        cache.sync_epoch(5);
        cache.record("k", &sols(1), 3);
        assert!(cache.get("k").is_none());
        assert_eq!(cache.get_stale("k").unwrap().epoch, 3);
    }

    #[test]
    fn record_at_future_epoch_is_dropped() {
        let cache = ResultCache::new(CacheConfig::default());
        cache.record("k", &sols(1), 7);
        assert!(cache.get("k").is_none());
        assert!(cache.get_stale("k").is_none());
    }

    #[test]
    fn stale_never_downgrades_epoch() {
        let cache = ResultCache::new(CacheConfig::default());
        cache.sync_epoch(5);
        cache.record("k", &sols(4), 4);
        cache.record("k", &sols(1), 2);
        assert_eq!(cache.get_stale("k").unwrap().epoch, 4);
        assert_eq!(cache.get_stale("k").unwrap().solutions, sols(4));
    }

    #[test]
    fn frontier_requires_matching_epoch() {
        let cache = ResultCache::new(CacheConfig::default());
        let members = Arc::new(vec![tid(3), tid(9)]);
        cache.record_frontier("http://e/C", Arc::clone(&members), 0);
        assert_eq!(cache.frontier("http://e/C").unwrap(), members);
        cache.sync_epoch(1);
        assert!(cache.frontier("http://e/C").is_none());
        // Recording with a mismatched epoch is a no-op.
        cache.record_frontier("http://e/C", members, 0);
        assert!(cache.peek_frontier("http://e/C").is_none());
        let stats = cache.stats();
        assert_eq!(stats.frontier_hits, 1);
        assert_eq!(stats.frontier_misses, 1);
    }

    #[test]
    fn entry_cap_evicts_lru() {
        let cache = ResultCache::new(CacheConfig {
            max_entries: 2,
            max_bytes: 1 << 20,
            shards: 1,
        });
        cache.record("a", &sols(1), 0);
        cache.record("b", &sols(1), 0);
        assert!(cache.get("a").is_some()); // refresh "a"; "b" is now LRU
        cache.record("c", &sols(1), 0);
        assert!(cache.get("a").is_some());
        assert!(cache.get("b").is_none());
        assert!(cache.get("c").is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn byte_cap_bounds_usage() {
        let cache = ResultCache::new(CacheConfig {
            max_entries: 1024,
            max_bytes: 8 * 1024,
            shards: 1,
        });
        for i in 0..64 {
            cache.record(&format!("q{i}"), &sols(10), 0);
        }
        assert!(cache.bytes() <= 8 * 1024);
        assert!(cache.stats().evictions > 0);
        assert!(!cache.is_empty());
    }

    #[test]
    fn oversized_entry_never_admitted() {
        let cache = ResultCache::new(CacheConfig {
            max_entries: 16,
            max_bytes: 2048,
            shards: 1,
        });
        cache.record("big", &sols(10_000), 0);
        assert!(cache.get("big").is_none());
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn concurrent_sync_and_record() {
        let cache = Arc::new(ResultCache::new(CacheConfig::default()));
        let mut handles = Vec::new();
        for t in 0..4 {
            let c = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let epoch = c.epoch();
                    c.record(&format!("q{t}-{i}"), &sols(2), epoch);
                    c.get(&format!("q{t}-{}", i / 2));
                    if i % 50 == 0 {
                        c.sync_epoch(epoch + 1);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.stats().invalidations >= 1);
    }
}
