#![warn(missing_docs)]

//! RDF substrate for the eLinda reproduction.
//!
//! This crate provides the data model from Section 2 of the paper: an RDF
//! graph is a finite set of triples over URIs `U` and literals `L`. On top
//! of the bare model it adds the machinery every other crate relies on:
//!
//! * [`Term`] / [`Literal`] — IRIs and literals (plain, language-tagged,
//!   and datatyped);
//! * [`Interner`] / [`TermId`] — a bijective mapping between terms and
//!   dense 32-bit ids, so that the store, the SPARQL engine, and the
//!   exploration model all work on `u32`-sized values;
//! * [`Triple`] — an interned RDF triple;
//! * [`Graph`] — an interner plus a deduplicated triple set, the unit of
//!   data exchanged between the generators, parsers, and the store;
//! * N-Triples and Turtle-subset parsing/serialization ([`ntriples`],
//!   [`turtle`]);
//! * the standard vocabularies used by eLinda ([`vocab`]) and CURIE
//!   shortening for display ([`curie`]).
//!
//! Blank nodes are accepted by the parsers and represented as IRIs in the
//! reserved `_:` scheme; the eLinda formal model only distinguishes URIs
//! from literals, and this encoding preserves join behaviour.

pub mod curie;
pub mod error;
pub mod fx;
pub mod graph;
pub mod interner;
pub mod ntriples;
pub mod term;
pub mod triple;
pub mod turtle;
pub mod vocab;

pub use curie::PrefixMap;
pub use error::RdfError;
pub use graph::Graph;
pub use interner::{Interner, TermId};
pub use term::{Literal, LiteralKind, Term};
pub use triple::Triple;
