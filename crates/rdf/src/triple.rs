//! Interned RDF triples.

use crate::interner::TermId;

/// An RDF triple over interned terms.
///
/// Ordering is subject-major (SPO), matching the store's primary index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// Subject (always a URI in valid RDF).
    pub s: TermId,
    /// Predicate (always a URI).
    pub p: TermId,
    /// Object (URI or literal).
    pub o: TermId,
}

impl Triple {
    /// Construct a triple.
    #[inline]
    pub fn new(s: TermId, p: TermId, o: TermId) -> Self {
        Triple { s, p, o }
    }

    /// Key for the SPO sort order.
    #[inline]
    pub fn spo(&self) -> (TermId, TermId, TermId) {
        (self.s, self.p, self.o)
    }

    /// Key for the POS sort order.
    #[inline]
    pub fn pos(&self) -> (TermId, TermId, TermId) {
        (self.p, self.o, self.s)
    }

    /// Key for the OSP sort order.
    #[inline]
    pub fn osp(&self) -> (TermId, TermId, TermId) {
        (self.o, self.s, self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> TermId {
        TermId::from_raw(n).unwrap()
    }

    #[test]
    fn sort_keys_permute_components() {
        let t = Triple::new(id(1), id(2), id(3));
        assert_eq!(t.spo(), (id(1), id(2), id(3)));
        assert_eq!(t.pos(), (id(2), id(3), id(1)));
        assert_eq!(t.osp(), (id(3), id(1), id(2)));
    }

    #[test]
    fn ordering_is_spo() {
        let a = Triple::new(id(1), id(9), id(9));
        let b = Triple::new(id(2), id(1), id(1));
        assert!(a < b);
        let c = Triple::new(id(1), id(2), id(1));
        let d = Triple::new(id(1), id(2), id(2));
        assert!(c < d);
    }

    #[test]
    fn triple_is_copy_and_small() {
        assert_eq!(std::mem::size_of::<Triple>(), 12);
    }
}
