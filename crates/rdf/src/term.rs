//! RDF terms: IRIs and literals.
//!
//! The eLinda model (paper Section 2) assumes collections **U** of URIs and
//! **L** of literals; a triple is an element of `U × U × (U ∪ L)`. [`Term`]
//! is exactly `U ∪ L`. Blank nodes, which real datasets contain, are
//! represented as IRIs in the reserved `_:` scheme so the formal model needs
//! no third case.

use std::borrow::Cow;
use std::fmt;

/// The kind of an RDF literal.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LiteralKind {
    /// A plain literal with no language tag or datatype (treated as
    /// `xsd:string` per RDF 1.1).
    Plain,
    /// A language-tagged literal, e.g. `"Philosoph"@de`.
    Lang(Box<str>),
    /// A datatyped literal; the payload is the datatype IRI.
    Typed(Box<str>),
}

/// An RDF literal: a lexical form plus an optional language tag or datatype.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    lexical: Box<str>,
    kind: LiteralKind,
}

impl Literal {
    /// A plain (string) literal.
    pub fn plain(lexical: impl Into<Box<str>>) -> Self {
        Literal {
            lexical: lexical.into(),
            kind: LiteralKind::Plain,
        }
    }

    /// A language-tagged literal.
    pub fn lang(lexical: impl Into<Box<str>>, tag: impl Into<Box<str>>) -> Self {
        Literal {
            lexical: lexical.into(),
            kind: LiteralKind::Lang(tag.into()),
        }
    }

    /// A datatyped literal.
    pub fn typed(lexical: impl Into<Box<str>>, datatype: impl Into<Box<str>>) -> Self {
        Literal {
            lexical: lexical.into(),
            kind: LiteralKind::Typed(datatype.into()),
        }
    }

    /// An `xsd:integer` literal.
    pub fn integer(value: i64) -> Self {
        Literal::typed(value.to_string(), crate::vocab::xsd::INTEGER)
    }

    /// An `xsd:double` literal.
    pub fn double(value: f64) -> Self {
        Literal::typed(value.to_string(), crate::vocab::xsd::DOUBLE)
    }

    /// An `xsd:boolean` literal.
    pub fn boolean(value: bool) -> Self {
        Literal::typed(
            if value { "true" } else { "false" },
            crate::vocab::xsd::BOOLEAN,
        )
    }

    /// The lexical form.
    pub fn lexical(&self) -> &str {
        &self.lexical
    }

    /// The literal kind (plain / language-tagged / datatyped).
    pub fn kind(&self) -> &LiteralKind {
        &self.kind
    }

    /// The language tag, if any.
    pub fn language(&self) -> Option<&str> {
        match &self.kind {
            LiteralKind::Lang(tag) => Some(tag),
            _ => None,
        }
    }

    /// The datatype IRI; plain literals report `xsd:string`.
    pub fn datatype(&self) -> &str {
        match &self.kind {
            LiteralKind::Plain | LiteralKind::Lang(_) => crate::vocab::xsd::STRING,
            LiteralKind::Typed(dt) => dt,
        }
    }

    /// Interpret the literal as an integer if its datatype is numeric and the
    /// lexical form parses.
    pub fn as_integer(&self) -> Option<i64> {
        match &self.kind {
            LiteralKind::Typed(dt)
                if dt.as_ref() == crate::vocab::xsd::INTEGER
                    || dt.as_ref() == crate::vocab::xsd::INT
                    || dt.as_ref() == crate::vocab::xsd::LONG =>
            {
                self.lexical.parse().ok()
            }
            _ => None,
        }
    }

    /// Interpret the literal as a double if its datatype is numeric.
    pub fn as_double(&self) -> Option<f64> {
        match &self.kind {
            LiteralKind::Typed(dt)
                if dt.as_ref() == crate::vocab::xsd::DOUBLE
                    || dt.as_ref() == crate::vocab::xsd::DECIMAL
                    || dt.as_ref() == crate::vocab::xsd::FLOAT =>
            {
                self.lexical.parse().ok()
            }
            _ => self.as_integer().map(|i| i as f64),
        }
    }
}

/// An RDF term: an IRI or a literal (`U ∪ L` in the paper's notation).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An IRI (the paper's URIs). Blank nodes are encoded as `_:label`.
    Iri(Box<str>),
    /// A literal.
    Literal(Literal),
}

impl Term {
    /// An IRI term.
    pub fn iri(iri: impl Into<Box<str>>) -> Self {
        Term::Iri(iri.into())
    }

    /// A blank-node term, encoded in the reserved `_:` scheme.
    pub fn blank(label: impl AsRef<str>) -> Self {
        Term::Iri(format!("_:{}", label.as_ref()).into_boxed_str())
    }

    /// True if this term is an IRI (including encoded blank nodes).
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// True if this term is an encoded blank node.
    pub fn is_blank(&self) -> bool {
        matches!(self, Term::Iri(i) if i.starts_with("_:"))
    }

    /// True if this term is a literal.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }

    /// The IRI string, if this term is an IRI.
    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Term::Iri(i) => Some(i),
            Term::Literal(_) => None,
        }
    }

    /// The literal, if this term is one.
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Iri(_) => None,
            Term::Literal(l) => Some(l),
        }
    }

    /// A short human-readable form: the IRI local name or the lexical form.
    pub fn short_name(&self) -> Cow<'_, str> {
        match self {
            Term::Iri(i) => Cow::Borrowed(local_name(i)),
            Term::Literal(l) => Cow::Borrowed(l.lexical()),
        }
    }
}

/// The local name of an IRI: everything after the last `#` or `/`.
pub fn local_name(iri: &str) -> &str {
    match iri.rfind(['#', '/']) {
        Some(pos) if pos + 1 < iri.len() => &iri[pos + 1..],
        _ => iri,
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
}

impl fmt::Display for Literal {
    /// N-Triples surface syntax.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut buf = String::with_capacity(self.lexical.len() + 2);
        buf.push('"');
        escape_into(&mut buf, &self.lexical);
        buf.push('"');
        match &self.kind {
            LiteralKind::Plain => {}
            LiteralKind::Lang(tag) => {
                buf.push('@');
                buf.push_str(tag);
            }
            LiteralKind::Typed(dt) => {
                buf.push_str("^^<");
                buf.push_str(dt);
                buf.push('>');
            }
        }
        f.write_str(&buf)
    }
}

impl fmt::Display for Term {
    /// N-Triples surface syntax (`<iri>`, `_:b0`, or a quoted literal).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(i) if i.starts_with("_:") => f.write_str(i),
            Term::Iri(i) => write!(f, "<{i}>"),
            Term::Literal(l) => l.fmt(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab;

    #[test]
    fn literal_constructors_and_accessors() {
        let p = Literal::plain("hello");
        assert_eq!(p.lexical(), "hello");
        assert_eq!(p.datatype(), vocab::xsd::STRING);
        assert_eq!(p.language(), None);

        let l = Literal::lang("Philosoph", "de");
        assert_eq!(l.language(), Some("de"));
        assert_eq!(l.datatype(), vocab::xsd::STRING);

        let t = Literal::typed("42", vocab::xsd::INTEGER);
        assert_eq!(t.datatype(), vocab::xsd::INTEGER);
        assert_eq!(t.as_integer(), Some(42));
    }

    #[test]
    fn numeric_interpretation() {
        assert_eq!(Literal::integer(-7).as_integer(), Some(-7));
        assert_eq!(Literal::integer(-7).as_double(), Some(-7.0));
        assert_eq!(Literal::double(2.5).as_double(), Some(2.5));
        assert_eq!(Literal::double(2.5).as_integer(), None);
        assert_eq!(Literal::plain("42").as_integer(), None);
        assert_eq!(
            Literal::typed("nan?", vocab::xsd::INTEGER).as_integer(),
            None
        );
    }

    #[test]
    fn boolean_literal() {
        assert_eq!(Literal::boolean(true).lexical(), "true");
        assert_eq!(Literal::boolean(false).lexical(), "false");
        assert_eq!(Literal::boolean(true).datatype(), vocab::xsd::BOOLEAN);
    }

    #[test]
    fn term_predicates() {
        let iri = Term::iri("http://example.org/a");
        assert!(iri.is_iri());
        assert!(!iri.is_literal());
        assert!(!iri.is_blank());
        assert_eq!(iri.as_iri(), Some("http://example.org/a"));

        let blank = Term::blank("b0");
        assert!(blank.is_iri());
        assert!(blank.is_blank());

        let lit = Term::Literal(Literal::plain("x"));
        assert!(lit.is_literal());
        assert_eq!(lit.as_literal().unwrap().lexical(), "x");
        assert_eq!(lit.as_iri(), None);
    }

    #[test]
    fn display_ntriples_syntax() {
        assert_eq!(Term::iri("http://e.org/A").to_string(), "<http://e.org/A>");
        assert_eq!(Term::blank("b1").to_string(), "_:b1");
        assert_eq!(Term::Literal(Literal::plain("hi")).to_string(), "\"hi\"");
        assert_eq!(
            Term::Literal(Literal::lang("hi", "en")).to_string(),
            "\"hi\"@en"
        );
        assert_eq!(
            Term::Literal(Literal::typed("1", vocab::xsd::INTEGER)).to_string(),
            format!("\"1\"^^<{}>", vocab::xsd::INTEGER)
        );
    }

    #[test]
    fn display_escapes_specials() {
        let l = Literal::plain("a\"b\\c\nd\te\rf");
        assert_eq!(l.to_string(), "\"a\\\"b\\\\c\\nd\\te\\rf\"");
    }

    #[test]
    fn local_name_extraction() {
        assert_eq!(local_name("http://e.org/onto#Person"), "Person");
        assert_eq!(local_name("http://e.org/onto/Person"), "Person");
        assert_eq!(local_name("Person"), "Person");
        assert_eq!(local_name("http://e.org/onto/"), "http://e.org/onto/");
    }

    #[test]
    fn short_name() {
        assert_eq!(Term::iri("http://e.org/A").short_name(), "A");
        assert_eq!(Term::Literal(Literal::plain("lex")).short_name(), "lex");
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut v = vec![
            Term::Literal(Literal::plain("b")),
            Term::iri("http://e.org/a"),
            Term::Literal(Literal::lang("a", "en")),
        ];
        v.sort();
        let v2 = {
            let mut c = v.clone();
            c.sort();
            c
        };
        assert_eq!(v, v2);
    }
}
