//! N-Triples parsing and serialization.
//!
//! N-Triples is the line-oriented exchange format used by the test fixtures
//! and by dataset dumps. The parser is strict about structure but tolerant
//! of surrounding whitespace and `#` comments.

use crate::error::RdfError;
use crate::graph::Graph;
use crate::term::{Literal, Term};

/// Parse a full N-Triples document into a [`Graph`].
pub fn parse_document(input: &str) -> Result<Graph, RdfError> {
    let mut graph = Graph::new();
    parse_into(input, &mut graph)?;
    Ok(graph)
}

/// Parse an N-Triples document into an existing graph.
pub fn parse_into(input: &str, graph: &mut Graph) -> Result<(), RdfError> {
    for (lineno, line) in input.lines().enumerate() {
        let lineno = lineno + 1;
        if let Some((s, p, o)) = parse_line(line, lineno)? {
            graph.insert(s, p, o);
        }
    }
    Ok(())
}

/// Parse a single N-Triples line. Returns `None` for blank lines and
/// comments.
pub fn parse_line(line: &str, lineno: usize) -> Result<Option<(Term, Term, Term)>, RdfError> {
    let mut cur = Cursor {
        bytes: line.as_bytes(),
        pos: 0,
        line: lineno,
    };
    cur.skip_ws();
    if cur.at_end() || cur.peek() == Some(b'#') {
        return Ok(None);
    }
    let s = cur.parse_term()?;
    cur.skip_ws();
    let p = cur.parse_term()?;
    if !p.is_iri() || p.is_blank() {
        return Err(RdfError::new(lineno, "predicate must be an IRI"));
    }
    cur.skip_ws();
    let o = cur.parse_term()?;
    cur.skip_ws();
    if cur.peek() != Some(b'.') {
        return Err(RdfError::new(lineno, "expected '.' terminating the triple"));
    }
    cur.pos += 1;
    cur.skip_ws();
    if !cur.at_end() && cur.peek() != Some(b'#') {
        return Err(RdfError::new(lineno, "trailing content after '.'"));
    }
    if s.is_literal() {
        return Err(RdfError::new(lineno, "subject must not be a literal"));
    }
    Ok(Some((s, p, o)))
}

/// Serialize a graph as N-Triples, one triple per line, in insertion order.
pub fn write_document(graph: &Graph) -> String {
    let mut out = String::new();
    for t in graph.triples() {
        let s = graph.interner().resolve(t.s);
        let p = graph.interner().resolve(t.p);
        let o = graph.interner().resolve(t.o);
        out.push_str(&format!("{s} {p} {o} .\n"));
    }
    out
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.pos += 1;
        }
    }

    fn err(&self, msg: impl Into<String>) -> RdfError {
        RdfError::new(self.line, msg)
    }

    fn rest(&self) -> &'a str {
        // Safe: pos always lands on a char boundary because we only advance
        // past ASCII bytes or via char-aware scanning.
        std::str::from_utf8(&self.bytes[self.pos..]).unwrap_or("")
    }

    fn parse_term(&mut self) -> Result<Term, RdfError> {
        match self.peek() {
            Some(b'<') => self.parse_iri().map(Term::Iri),
            Some(b'_') => self.parse_blank(),
            Some(b'"') => self.parse_literal(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of line")),
        }
    }

    fn parse_iri(&mut self) -> Result<Box<str>, RdfError> {
        debug_assert_eq!(self.peek(), Some(b'<'));
        self.pos += 1;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == b'>' {
                let iri = &self.bytes[start..self.pos];
                self.pos += 1;
                let iri = std::str::from_utf8(iri).map_err(|_| self.err("invalid UTF-8 in IRI"))?;
                if iri.is_empty() {
                    return Err(self.err("empty IRI"));
                }
                return Ok(iri.into());
            }
            if c == b' ' || c == b'\t' {
                return Err(self.err("whitespace inside IRI"));
            }
            self.pos += 1;
        }
        Err(self.err("unterminated IRI"))
    }

    fn parse_blank(&mut self) -> Result<Term, RdfError> {
        // "_:" label
        if self.rest().len() < 2 || &self.bytes[self.pos..self.pos + 2] != b"_:" {
            return Err(self.err("expected blank node label '_:'"));
        }
        self.pos += 2;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b'.' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("empty blank node label"));
        }
        let label = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        Ok(Term::blank(label))
    }

    fn parse_literal(&mut self) -> Result<Term, RdfError> {
        debug_assert_eq!(self.peek(), Some(b'"'));
        self.pos += 1;
        let mut lexical = String::new();
        loop {
            let rest = self.rest();
            let mut chars = rest.char_indices();
            match chars.next() {
                None => return Err(self.err("unterminated literal")),
                Some((_, '"')) => {
                    self.pos += 1;
                    break;
                }
                Some((_, '\\')) => {
                    self.pos += 1;
                    let esc = self
                        .rest()
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("dangling escape"))?;
                    match esc {
                        '"' => lexical.push('"'),
                        '\\' => lexical.push('\\'),
                        'n' => lexical.push('\n'),
                        'r' => lexical.push('\r'),
                        't' => lexical.push('\t'),
                        'u' | 'U' => {
                            let width = if esc == 'u' { 4 } else { 8 };
                            let hex_start = self.pos + 1;
                            let hex = self
                                .rest()
                                .get(1..1 + width)
                                .ok_or_else(|| self.err("truncated unicode escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid unicode escape"))?;
                            let c = char::from_u32(cp)
                                .ok_or_else(|| self.err("invalid unicode codepoint"))?;
                            lexical.push(c);
                            self.pos = hex_start + width;
                            continue;
                        }
                        other => {
                            return Err(self.err(format!("unknown escape '\\{other}'")));
                        }
                    }
                    self.pos += esc.len_utf8();
                }
                Some((_, c)) => {
                    lexical.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
        // Optional language tag or datatype.
        match self.peek() {
            Some(b'@') => {
                self.pos += 1;
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == b'-' {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                if self.pos == start {
                    return Err(self.err("empty language tag"));
                }
                let tag = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
                Ok(Term::Literal(Literal::lang(lexical, tag)))
            }
            Some(b'^') => {
                if self.rest().starts_with("^^") {
                    self.pos += 2;
                    let dt = self.parse_iri()?;
                    Ok(Term::Literal(Literal::typed(lexical, dt)))
                } else {
                    Err(self.err("expected '^^' before datatype"))
                }
            }
            _ => Ok(Term::Literal(Literal::plain(lexical))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab;

    fn one(line: &str) -> (Term, Term, Term) {
        parse_line(line, 1).unwrap().unwrap()
    }

    #[test]
    fn parses_iri_triple() {
        let (s, p, o) = one("<http://e/a> <http://e/p> <http://e/b> .");
        assert_eq!(s, Term::iri("http://e/a"));
        assert_eq!(p, Term::iri("http://e/p"));
        assert_eq!(o, Term::iri("http://e/b"));
    }

    #[test]
    fn parses_plain_lang_and_typed_literals() {
        let (_, _, o) = one(r#"<http://e/a> <http://e/p> "hello" ."#);
        assert_eq!(o, Term::Literal(Literal::plain("hello")));

        let (_, _, o) = one(r#"<http://e/a> <http://e/p> "hallo"@de-AT ."#);
        assert_eq!(o, Term::Literal(Literal::lang("hallo", "de-AT")));

        let (_, _, o) = one(&format!(
            r#"<http://e/a> <http://e/p> "42"^^<{}> ."#,
            vocab::xsd::INTEGER
        ));
        assert_eq!(o.as_literal().unwrap().as_integer(), Some(42));
    }

    #[test]
    fn parses_escapes() {
        let (_, _, o) = one(r#"<http://e/a> <http://e/p> "a\"b\\c\nd\te" ."#);
        assert_eq!(o.as_literal().unwrap().lexical(), "a\"b\\c\nd\te");
    }

    #[test]
    fn parses_unicode_escapes() {
        let (_, _, o) = one(r#"<http://e/a> <http://e/p> "café \U0001F600" ."#);
        assert_eq!(o.as_literal().unwrap().lexical(), "café 😀");
    }

    #[test]
    fn parses_blank_nodes() {
        let (s, _, o) = one("_:b0 <http://e/p> _:b1 .");
        assert!(s.is_blank());
        assert!(o.is_blank());
        assert_eq!(s, Term::blank("b0"));
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let g =
            parse_document("# a comment\n\n<http://e/a> <http://e/p> <http://e/b> . # trailing\n")
                .unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn rejects_literal_subject_and_predicate() {
        assert!(parse_line(r#""x" <http://e/p> <http://e/b> ."#, 1).is_err());
        assert!(parse_line(r#"<http://e/a> "p" <http://e/b> ."#, 1).is_err());
        assert!(parse_line("<http://e/a> _:b <http://e/b> .", 1).is_err());
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "<http://e/a> <http://e/p> <http://e/b>",  // missing dot
            "<http://e/a> <http://e/p> .",             // missing object
            "<http://e/a <http://e/p> <http://e/b> .", // unterminated IRI
            r#"<http://e/a> <http://e/p> "x ."#,       // unterminated literal
            r#"<http://e/a> <http://e/p> "x"@ ."#,     // empty lang tag
            "<http://e/a> <http://e/p> <http://e/b> . junk",
            "<> <http://e/p> <http://e/b> .", // empty IRI
        ] {
            assert!(parse_line(bad, 1).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn error_carries_line_number() {
        let doc = "<http://e/a> <http://e/p> <http://e/b> .\nbad line\n";
        let err = parse_document(doc).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn write_then_parse_round_trips() {
        let mut g = Graph::new();
        g.insert(
            Term::iri("http://e/a"),
            Term::iri(vocab::rdfs::LABEL),
            Term::Literal(Literal::lang("A thing \"quoted\"\n", "en")),
        );
        g.insert(
            Term::blank("x"),
            Term::iri(vocab::rdf::TYPE),
            Term::iri(vocab::owl::THING),
        );
        g.insert(
            Term::iri("http://e/a"),
            Term::iri("http://e/count"),
            Term::Literal(Literal::integer(12)),
        );
        let text = write_document(&g);
        let g2 = parse_document(&text).unwrap();
        assert_eq!(g2.len(), g.len());
        let text2 = write_document(&g2);
        assert_eq!(text, text2);
    }
}
