//! A small, fast, non-cryptographic hasher in the style of `rustc-hash`.
//!
//! The interner and the store hash terms and ids on every triple insert and
//! every pattern probe; SipHash (the standard-library default) is measurably
//! slower for these short keys. The sanctioned dependency list does not
//! include `rustc-hash`, so we carry the ~40 lines ourselves.
//!
//! HashDoS resistance is irrelevant here: all inputs are produced by our own
//! generators and parsers, never by a network adversary.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the FxHash family (derived from the golden
/// ratio, as used by Firefox and rustc).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast word-at-a-time hasher. Not HashDoS resistant.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Mix in the remainder length so that "ab" and "ab\0" differ.
            buf[7] = rem.len() as u8;
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
    }

    #[test]
    fn distinguishes_close_inputs() {
        assert_ne!(hash_of(&"hello"), hash_of(&"hellp"));
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        // Trailing bytes matter (remainder handling).
        assert_ne!(hash_of(&"ab"), hash_of(&"ab\0"));
        assert_ne!(hash_of(&b"ab".as_slice()), hash_of(&b"ab\0".as_slice()));
    }

    #[test]
    fn usable_in_hashmap() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(format!("key-{i}"), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m["key-512"], 512);
    }

    #[test]
    fn spreads_sequential_integers() {
        // Sanity check that the low bits of sequential keys differ; HashMap
        // uses the high bits via multiplication, but uniform garbage in the
        // low bits is a good smoke test for the mixer.
        let mut seen = FxHashSet::default();
        for i in 0..4096u64 {
            seen.insert(hash_of(&i) & 0xfff);
        }
        assert!(seen.len() > 2048, "poor low-bit dispersion: {}", seen.len());
    }
}
