//! Standard vocabularies the eLinda model depends on.
//!
//! The paper (Section 3.1) singles out `rdf:type`, `rdfs:subClassOf`,
//! `rdfs:label`, `owl:Class`/`rdfs:Class`, and `owl:Thing` as the properties
//! and classes that drive the ontology-based exploration.

/// The RDF namespace.
pub mod rdf {
    /// Namespace prefix IRI.
    pub const NS: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
    /// `rdf:type` — connects an instance to its class.
    pub const TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
    /// `rdf:Property` — the class of properties (eLinda does *not* rely on
    /// it; properties are inferred from data triples, Section 3.3).
    pub const PROPERTY: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#Property";
}

/// The RDFS namespace.
pub mod rdfs {
    /// Namespace prefix IRI.
    pub const NS: &str = "http://www.w3.org/2000/01/rdf-schema#";
    /// `rdfs:subClassOf` — the vertical exploration axis.
    pub const SUB_CLASS_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
    /// `rdfs:label` — short textual labels attached to visualized elements.
    pub const LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";
    /// `rdfs:Class` — alternative class declaration.
    pub const CLASS: &str = "http://www.w3.org/2000/01/rdf-schema#Class";
    /// `rdfs:domain`.
    pub const DOMAIN: &str = "http://www.w3.org/2000/01/rdf-schema#domain";
    /// `rdfs:range`.
    pub const RANGE: &str = "http://www.w3.org/2000/01/rdf-schema#range";
}

/// The OWL namespace.
pub mod owl {
    /// Namespace prefix IRI.
    pub const NS: &str = "http://www.w3.org/2002/07/owl#";
    /// `owl:Thing` — the sensible root class for the initial chart.
    pub const THING: &str = "http://www.w3.org/2002/07/owl#Thing";
    /// `owl:Class` — standard class declaration.
    pub const CLASS: &str = "http://www.w3.org/2002/07/owl#Class";
}

/// XML Schema datatypes.
pub mod xsd {
    /// Namespace prefix IRI.
    pub const NS: &str = "http://www.w3.org/2001/XMLSchema#";
    /// `xsd:string`.
    pub const STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
    /// `xsd:integer`.
    pub const INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
    /// `xsd:int`.
    pub const INT: &str = "http://www.w3.org/2001/XMLSchema#int";
    /// `xsd:long`.
    pub const LONG: &str = "http://www.w3.org/2001/XMLSchema#long";
    /// `xsd:decimal`.
    pub const DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";
    /// `xsd:double`.
    pub const DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";
    /// `xsd:float`.
    pub const FLOAT: &str = "http://www.w3.org/2001/XMLSchema#float";
    /// `xsd:boolean`.
    pub const BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";
    /// `xsd:dateTime`.
    pub const DATE_TIME: &str = "http://www.w3.org/2001/XMLSchema#dateTime";
}

/// The DBpedia ontology namespace, used by the synthetic DBpedia-like data.
pub mod dbo {
    /// Namespace prefix IRI.
    pub const NS: &str = "http://dbpedia.org/ontology/";
}

/// The DBpedia resource namespace, used by the synthetic DBpedia-like data.
pub mod dbr {
    /// Namespace prefix IRI.
    pub const NS: &str = "http://dbpedia.org/resource/";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespaces_are_prefixes_of_their_members() {
        assert!(rdf::TYPE.starts_with(rdf::NS));
        assert!(rdfs::SUB_CLASS_OF.starts_with(rdfs::NS));
        assert!(rdfs::LABEL.starts_with(rdfs::NS));
        assert!(owl::THING.starts_with(owl::NS));
        assert!(xsd::INTEGER.starts_with(xsd::NS));
    }

    #[test]
    fn distinct_core_terms() {
        let all = [
            rdf::TYPE,
            rdf::PROPERTY,
            rdfs::SUB_CLASS_OF,
            rdfs::LABEL,
            rdfs::CLASS,
            owl::THING,
            owl::CLASS,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
