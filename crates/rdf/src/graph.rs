//! [`Graph`]: an interner plus a deduplicated set of triples.
//!
//! This is the paper's *RDF graph G* — "a finite collection of RDF triples"
//! — in interned form, and the unit of data flowing from parsers and
//! generators into the store.

use crate::fx::FxHashSet;
use crate::interner::{Interner, TermId};
use crate::term::Term;
use crate::triple::Triple;

/// An in-memory RDF graph: terms interned, triples deduplicated.
#[derive(Debug, Default, Clone)]
pub struct Graph {
    interner: Interner,
    triples: Vec<Triple>,
    seen: FxHashSet<Triple>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty graph with capacity hints.
    pub fn with_capacity(terms: usize, triples: usize) -> Self {
        Graph {
            interner: Interner::with_capacity(terms),
            triples: Vec::with_capacity(triples),
            seen: FxHashSet::with_capacity_and_hasher(triples, Default::default()),
        }
    }

    /// Intern a term.
    pub fn intern(&mut self, term: Term) -> TermId {
        self.interner.intern(term)
    }

    /// Intern an IRI.
    pub fn intern_iri(&mut self, iri: impl Into<Box<str>>) -> TermId {
        self.interner.intern_iri(iri)
    }

    /// Insert a triple of already-interned ids. Returns `true` if the triple
    /// was new.
    pub fn insert_ids(&mut self, s: TermId, p: TermId, o: TermId) -> bool {
        let t = Triple::new(s, p, o);
        if self.seen.insert(t) {
            self.triples.push(t);
            true
        } else {
            false
        }
    }

    /// Intern three terms and insert the triple. Returns `true` if new.
    pub fn insert(&mut self, s: Term, p: Term, o: Term) -> bool {
        let s = self.interner.intern(s);
        let p = self.interner.intern(p);
        let o = self.interner.intern(o);
        self.insert_ids(s, p, o)
    }

    /// Convenience: insert a triple of IRIs.
    pub fn insert_iris(&mut self, s: &str, p: &str, o: &str) -> bool {
        self.insert(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    /// True if the graph contains the triple.
    pub fn contains(&self, t: Triple) -> bool {
        self.seen.contains(&t)
    }

    /// Number of (distinct) triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True if the graph has no triples.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// The triples in insertion order.
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// The interner.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Mutable access to the interner (for callers that pre-intern terms).
    pub fn interner_mut(&mut self) -> &mut Interner {
        &mut self.interner
    }

    /// Decompose into `(interner, triples)`, dropping the dedup set.
    pub fn into_parts(self) -> (Interner, Vec<Triple>) {
        (self.interner, self.triples)
    }

    /// Merge another graph into this one, re-interning its terms.
    pub fn extend_from(&mut self, other: &Graph) {
        for t in other.triples() {
            let s = self.interner.intern(other.interner.resolve(t.s).clone());
            let p = self.interner.intern(other.interner.resolve(t.p).clone());
            let o = self.interner.intern(other.interner.resolve(t.o).clone());
            self.insert_ids(s, p, o);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Literal;
    use crate::vocab;

    #[test]
    fn insert_dedups() {
        let mut g = Graph::new();
        assert!(g.insert_iris("http://e/a", vocab::rdf::TYPE, "http://e/C"));
        assert!(!g.insert_iris("http://e/a", vocab::rdf::TYPE, "http://e/C"));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn contains_checks_membership() {
        let mut g = Graph::new();
        g.insert_iris("http://e/a", "http://e/p", "http://e/b");
        let t = g.triples()[0];
        assert!(g.contains(t));
        let s = t.s;
        assert!(!g.contains(Triple::new(s, s, s)));
    }

    #[test]
    fn mixed_terms() {
        let mut g = Graph::new();
        g.insert(
            Term::iri("http://e/a"),
            Term::iri(vocab::rdfs::LABEL),
            Term::Literal(Literal::lang("a", "en")),
        );
        assert_eq!(g.len(), 1);
        let t = g.triples()[0];
        assert!(g.interner().resolve(t.o).is_literal());
    }

    #[test]
    fn extend_from_remaps_ids() {
        let mut a = Graph::new();
        a.insert_iris("http://e/x", "http://e/p", "http://e/y");

        let mut b = Graph::new();
        // Intern some padding first so ids diverge between graphs.
        b.intern_iri("http://e/pad1");
        b.intern_iri("http://e/pad2");
        b.insert_iris("http://e/x", "http://e/p", "http://e/z");
        b.extend_from(&a);

        assert_eq!(b.len(), 2);
        let mut objects: Vec<String> = b
            .triples()
            .iter()
            .map(|t| b.interner().resolve(t.o).to_string())
            .collect();
        objects.sort();
        assert_eq!(objects, vec!["<http://e/y>", "<http://e/z>"]);
    }

    #[test]
    fn into_parts_preserves_counts() {
        let mut g = Graph::new();
        for i in 0..10 {
            g.insert_iris(&format!("http://e/s{i}"), "http://e/p", "http://e/o");
        }
        let (interner, triples) = g.into_parts();
        assert_eq!(triples.len(), 10);
        assert_eq!(interner.len(), 12); // 10 subjects + p + o
    }
}
