//! CURIE (compact URI) shortening for display.
//!
//! The eLinda UI shows `dbo:Philosopher` rather than the full IRI; this
//! module maintains the prefix map used by the viz crate and by generated
//! SPARQL.

use crate::vocab;

/// An ordered prefix → namespace map with longest-match shortening.
#[derive(Debug, Clone, Default)]
pub struct PrefixMap {
    /// `(prefix, namespace)` pairs, checked in order of declaration.
    entries: Vec<(String, String)>,
}

impl PrefixMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// The conventional prefixes used throughout the reproduction:
    /// `rdf`, `rdfs`, `owl`, `xsd`, `dbo`, `dbr`.
    pub fn common() -> Self {
        let mut m = PrefixMap::new();
        m.declare("rdf", vocab::rdf::NS);
        m.declare("rdfs", vocab::rdfs::NS);
        m.declare("owl", vocab::owl::NS);
        m.declare("xsd", vocab::xsd::NS);
        m.declare("dbo", vocab::dbo::NS);
        m.declare("dbr", vocab::dbr::NS);
        m
    }

    /// Declare (or redeclare) a prefix.
    pub fn declare(&mut self, prefix: impl Into<String>, namespace: impl Into<String>) {
        let prefix = prefix.into();
        let namespace = namespace.into();
        if let Some(e) = self.entries.iter_mut().find(|(p, _)| *p == prefix) {
            e.1 = namespace;
        } else {
            self.entries.push((prefix, namespace));
        }
    }

    /// Expand a CURIE like `dbo:Person` to a full IRI, if the prefix is
    /// declared.
    pub fn expand(&self, curie: &str) -> Option<String> {
        let colon = curie.find(':')?;
        let (prefix, local) = curie.split_at(colon);
        let local = &local[1..];
        self.entries
            .iter()
            .find(|(p, _)| p == prefix)
            .map(|(_, ns)| format!("{ns}{local}"))
    }

    /// Shorten an IRI to a CURIE using the longest matching namespace;
    /// returns the IRI in `<...>` form when nothing matches.
    pub fn shorten(&self, iri: &str) -> String {
        let best = self
            .entries
            .iter()
            .filter(|(_, ns)| iri.starts_with(ns.as_str()) && iri.len() > ns.len())
            .max_by_key(|(_, ns)| ns.len());
        match best {
            Some((prefix, ns)) => format!("{prefix}:{}", &iri[ns.len()..]),
            None => format!("<{iri}>"),
        }
    }

    /// All declared `(prefix, namespace)` pairs.
    pub fn entries(&self) -> &[(String, String)] {
        &self.entries
    }

    /// Render SPARQL `PREFIX` headers for every declared prefix.
    pub fn sparql_headers(&self) -> String {
        let mut out = String::new();
        for (p, ns) in &self.entries {
            out.push_str(&format!("PREFIX {p}: <{ns}>\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shorten_uses_longest_match() {
        let mut m = PrefixMap::new();
        m.declare("e", "http://e.org/");
        m.declare("eo", "http://e.org/onto/");
        assert_eq!(m.shorten("http://e.org/onto/Person"), "eo:Person");
        assert_eq!(m.shorten("http://e.org/alice"), "e:alice");
    }

    #[test]
    fn shorten_falls_back_to_angle_brackets() {
        let m = PrefixMap::common();
        assert_eq!(m.shorten("http://unknown.org/x"), "<http://unknown.org/x>");
    }

    #[test]
    fn shorten_never_produces_empty_local_name() {
        let m = PrefixMap::common();
        // The namespace itself should not shorten to "dbo:".
        assert_eq!(m.shorten(vocab::dbo::NS), format!("<{}>", vocab::dbo::NS));
    }

    #[test]
    fn expand_round_trips_shorten() {
        let m = PrefixMap::common();
        let iri = format!("{}Philosopher", vocab::dbo::NS);
        let curie = m.shorten(&iri);
        assert_eq!(curie, "dbo:Philosopher");
        assert_eq!(m.expand(&curie).as_deref(), Some(iri.as_str()));
    }

    #[test]
    fn redeclare_overwrites() {
        let mut m = PrefixMap::new();
        m.declare("x", "http://one/");
        m.declare("x", "http://two/");
        assert_eq!(m.expand("x:a").as_deref(), Some("http://two/a"));
        assert_eq!(m.entries().len(), 1);
    }

    #[test]
    fn sparql_headers_list_all() {
        let m = PrefixMap::common();
        let h = m.sparql_headers();
        assert!(h.contains("PREFIX rdf:"));
        assert!(h.contains("PREFIX dbo:"));
        assert_eq!(h.lines().count(), m.entries().len());
    }
}
