//! Error type shared by the RDF parsers.

use std::fmt;

/// An error raised while parsing RDF syntax (N-Triples or Turtle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RdfError {
    /// 1-based line where the error was detected.
    pub line: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl RdfError {
    /// Create an error at the given 1-based line.
    pub fn new(line: usize, message: impl Into<String>) -> Self {
        RdfError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for RdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RDF parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for RdfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_line_and_message() {
        let e = RdfError::new(7, "unexpected end of IRI");
        let s = e.to_string();
        assert!(s.contains("line 7"));
        assert!(s.contains("unexpected end of IRI"));
    }

    #[test]
    fn is_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&RdfError::new(1, "x"));
    }
}
