//! Bijective interning of [`Term`]s into dense 32-bit [`TermId`]s.
//!
//! Every crate above this one manipulates terms by id: the store's indexes
//! are sorted arrays of `(u32, u32, u32)`, the SPARQL engine's bindings are
//! `u32`s, and a bar's node set is a sorted `Vec<TermId>`. The interner is
//! the single point where strings exist.

use std::sync::Arc;

use crate::fx::FxHashMap;
use crate::term::Term;

/// A dense identifier for an interned [`Term`]. Ids start at 1 so that
/// `Option<TermId>` is pointer-sized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(std::num::NonZeroU32);

impl TermId {
    /// Construct from a raw index (1-based). Returns `None` for 0.
    pub fn from_raw(raw: u32) -> Option<Self> {
        std::num::NonZeroU32::new(raw).map(TermId)
    }

    /// The raw 1-based index.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0.get()
    }

    /// The 0-based index into the interner's term table.
    #[inline]
    pub fn index(self) -> usize {
        (self.0.get() - 1) as usize
    }
}

impl std::fmt::Display for TermId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.raw())
    }
}

/// A bijective map between [`Term`]s and [`TermId`]s.
///
/// Terms are stored once behind an `Arc`; the reverse map shares that
/// allocation, so interning a term costs one allocation total.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    terms: Vec<Arc<Term>>,
    ids: FxHashMap<Arc<Term>, TermId>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty interner with room for `capacity` terms.
    pub fn with_capacity(capacity: usize) -> Self {
        Interner {
            terms: Vec::with_capacity(capacity),
            ids: FxHashMap::with_capacity_and_hasher(capacity, Default::default()),
        }
    }

    /// Intern a term, returning its id. Idempotent.
    pub fn intern(&mut self, term: Term) -> TermId {
        if let Some(&id) = self.ids.get(&term) {
            return id;
        }
        let arc = Arc::new(term);
        let raw = u32::try_from(self.terms.len() + 1).expect("interner overflow: > 2^32 terms");
        let id = TermId::from_raw(raw).expect("raw is nonzero");
        self.terms.push(Arc::clone(&arc));
        self.ids.insert(arc, id);
        id
    }

    /// Intern an IRI given as a string.
    pub fn intern_iri(&mut self, iri: impl Into<Box<str>>) -> TermId {
        self.intern(Term::Iri(iri.into()))
    }

    /// Look up the id of a term without interning it.
    pub fn get(&self, term: &Term) -> Option<TermId> {
        self.ids.get(term).copied()
    }

    /// Look up the id of an IRI without interning it.
    pub fn get_iri(&self, iri: &str) -> Option<TermId> {
        // Avoids allocating when the IRI is already interned is not possible
        // with std's borrow-based lookup across enum variants, so we build
        // the probe term once.
        self.get(&Term::Iri(iri.into()))
    }

    /// Resolve an id back to its term. Panics if the id is from another
    /// interner (out of range).
    pub fn resolve(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    /// Resolve an id if it is in range.
    pub fn try_resolve(&self, id: TermId) -> Option<&Term> {
        self.terms.get(id.index()).map(Arc::as_ref)
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterate over all `(id, term)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId::from_raw(i as u32 + 1).expect("nonzero"), t.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Literal;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern_iri("http://e.org/a");
        let b = i.intern_iri("http://e.org/a");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_terms_get_distinct_ids() {
        let mut i = Interner::new();
        let a = i.intern_iri("http://e.org/a");
        let b = i.intern_iri("http://e.org/b");
        let c = i.intern(Term::Literal(Literal::plain("http://e.org/a")));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.len(), 3);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let terms = [
            Term::iri("http://e.org/x"),
            Term::Literal(Literal::lang("x", "en")),
            Term::Literal(Literal::integer(7)),
            Term::blank("b0"),
        ];
        let ids: Vec<_> = terms.iter().cloned().map(|t| i.intern(t)).collect();
        for (t, id) in terms.iter().zip(&ids) {
            assert_eq!(i.resolve(*id), t);
            assert_eq!(i.get(t), Some(*id));
        }
    }

    #[test]
    fn get_without_interning() {
        let mut i = Interner::new();
        assert_eq!(i.get_iri("http://e.org/a"), None);
        let id = i.intern_iri("http://e.org/a");
        assert_eq!(i.get_iri("http://e.org/a"), Some(id));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn try_resolve_out_of_range() {
        let mut i = Interner::new();
        i.intern_iri("http://e.org/a");
        assert!(i.try_resolve(TermId::from_raw(1).unwrap()).is_some());
        assert!(i.try_resolve(TermId::from_raw(2).unwrap()).is_none());
    }

    #[test]
    fn ids_are_dense_and_ordered_by_first_interning() {
        let mut i = Interner::new();
        let ids: Vec<_> = (0..100)
            .map(|n| i.intern_iri(format!("http://e.org/{n}")))
            .collect();
        for (n, id) in ids.iter().enumerate() {
            assert_eq!(id.index(), n);
        }
        let collected: Vec<_> = i.iter().map(|(id, _)| id).collect();
        assert_eq!(collected, ids);
    }

    #[test]
    fn option_termid_is_small() {
        assert_eq!(
            std::mem::size_of::<Option<TermId>>(),
            std::mem::size_of::<TermId>()
        );
    }
}
