//! A Turtle subset parser, for readable test fixtures and examples.
//!
//! Supported: `@prefix` / `PREFIX` declarations, `@base`, prefixed names,
//! the `a` keyword, `;` predicate lists, `,` object lists, IRIs, blank node
//! labels, string literals (with language tags and datatypes), and bare
//! integer / decimal / boolean tokens. Not supported (not needed by any
//! fixture): blank-node property lists `[...]`, collections `(...)`, and
//! multi-line `"""` strings.

use crate::error::RdfError;
use crate::graph::Graph;
use crate::term::{Literal, Term};
use crate::vocab;
use std::collections::HashMap;

/// Parse a Turtle document into a [`Graph`].
pub fn parse_document(input: &str) -> Result<Graph, RdfError> {
    let mut graph = Graph::new();
    parse_into(input, &mut graph)?;
    Ok(graph)
}

/// Parse a Turtle document into an existing graph.
pub fn parse_into(input: &str, graph: &mut Graph) -> Result<(), RdfError> {
    let mut p = Parser {
        tokens: tokenize(input)?,
        pos: 0,
        prefixes: HashMap::new(),
        base: String::new(),
    };
    p.parse_document(graph)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Iri(String),     // <...>
    Pname(String),   // prefix:local or prefix:
    Blank(String),   // _:label
    A,               // the keyword 'a'
    String(String),  // "..."
    LangTag(String), // @tag (immediately after a string)
    DtSep,           // ^^
    Integer(String),
    Decimal(String),
    Boolean(bool),
    Dot,
    Semi,
    Comma,
    PrefixDecl, // @prefix or PREFIX
    BaseDecl,   // @base or BASE
}

struct Located {
    tok: Tok,
    line: usize,
}

fn tokenize(input: &str) -> Result<Vec<Located>, RdfError> {
    let mut toks = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'<' => {
                let end = input[i + 1..]
                    .find('>')
                    .ok_or_else(|| RdfError::new(line, "unterminated IRI"))?;
                toks.push(Located {
                    tok: Tok::Iri(input[i + 1..i + 1 + end].to_string()),
                    line,
                });
                i += end + 2;
            }
            b'"' => {
                let (lexical, consumed) = scan_string(&input[i..], line)?;
                toks.push(Located {
                    tok: Tok::String(lexical),
                    line,
                });
                i += consumed;
                // Language tag directly attached?
                if i < bytes.len() && bytes[i] == b'@' {
                    let start = i + 1;
                    let mut j = start;
                    while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'-')
                    {
                        j += 1;
                    }
                    if j == start {
                        return Err(RdfError::new(line, "empty language tag"));
                    }
                    toks.push(Located {
                        tok: Tok::LangTag(input[start..j].to_string()),
                        line,
                    });
                    i = j;
                }
            }
            b'^' => {
                if input[i..].starts_with("^^") {
                    toks.push(Located {
                        tok: Tok::DtSep,
                        line,
                    });
                    i += 2;
                } else {
                    return Err(RdfError::new(line, "stray '^'"));
                }
            }
            b'.' => {
                toks.push(Located {
                    tok: Tok::Dot,
                    line,
                });
                i += 1;
            }
            b';' => {
                toks.push(Located {
                    tok: Tok::Semi,
                    line,
                });
                i += 1;
            }
            b',' => {
                toks.push(Located {
                    tok: Tok::Comma,
                    line,
                });
                i += 1;
            }
            b'@' => {
                let rest = &input[i + 1..];
                if rest.starts_with("prefix") {
                    toks.push(Located {
                        tok: Tok::PrefixDecl,
                        line,
                    });
                    i += 7;
                } else if rest.starts_with("base") {
                    toks.push(Located {
                        tok: Tok::BaseDecl,
                        line,
                    });
                    i += 5;
                } else {
                    return Err(RdfError::new(line, "unknown directive"));
                }
            }
            b'_' if input[i..].starts_with("_:") => {
                let start = i + 2;
                let mut j = start;
                while j < bytes.len()
                    && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_' || bytes[j] == b'-')
                {
                    j += 1;
                }
                if j == start {
                    return Err(RdfError::new(line, "empty blank node label"));
                }
                toks.push(Located {
                    tok: Tok::Blank(input[start..j].to_string()),
                    line,
                });
                i = j;
            }
            c if c == b'-' || c == b'+' || c.is_ascii_digit() => {
                let start = i;
                let mut j = i + 1;
                let mut is_decimal = false;
                while j < bytes.len()
                    && (bytes[j].is_ascii_digit()
                        || (bytes[j] == b'.'
                            && !is_decimal
                            && j + 1 < bytes.len()
                            && bytes[j + 1].is_ascii_digit()))
                {
                    if bytes[j] == b'.' {
                        is_decimal = true;
                    }
                    j += 1;
                }
                let text = input[start..j].to_string();
                let tok = if is_decimal {
                    Tok::Decimal(text)
                } else {
                    Tok::Integer(text)
                };
                toks.push(Located { tok, line });
                i = j;
            }
            _ => {
                // Bare word: keyword, boolean, or prefixed name.
                let start = i;
                let mut j = i;
                while j < bytes.len()
                    && !matches!(bytes[j], b' ' | b'\t' | b'\r' | b'\n' | b';' | b',' | b'#')
                    && !(bytes[j] == b'.'
                        && (j + 1 >= bytes.len()
                            || matches!(bytes[j + 1], b' ' | b'\t' | b'\r' | b'\n')))
                {
                    j += 1;
                }
                let word = &input[start..j];
                let tok = match word {
                    "a" => Tok::A,
                    "true" => Tok::Boolean(true),
                    "false" => Tok::Boolean(false),
                    "PREFIX" | "prefix" => Tok::PrefixDecl,
                    "BASE" | "base" => Tok::BaseDecl,
                    w if w.contains(':') => Tok::Pname(w.to_string()),
                    w => {
                        return Err(RdfError::new(line, format!("unexpected token '{w}'")));
                    }
                };
                toks.push(Located { tok, line });
                i = j;
            }
        }
    }
    Ok(toks)
}

/// Scan a quoted string starting at `s[0] == '"'`. Returns (lexical, bytes consumed).
fn scan_string(s: &str, line: usize) -> Result<(String, usize), RdfError> {
    debug_assert!(s.starts_with('"'));
    let mut lexical = String::new();
    let mut iter = s.char_indices().skip(1).peekable();
    while let Some((idx, c)) = iter.next() {
        match c {
            '"' => return Ok((lexical, idx + 1)),
            '\\' => {
                let (_, esc) = iter
                    .next()
                    .ok_or_else(|| RdfError::new(line, "dangling escape"))?;
                match esc {
                    '"' => lexical.push('"'),
                    '\\' => lexical.push('\\'),
                    'n' => lexical.push('\n'),
                    'r' => lexical.push('\r'),
                    't' => lexical.push('\t'),
                    'u' | 'U' => {
                        let width = if esc == 'u' { 4 } else { 8 };
                        let mut hex = String::with_capacity(width);
                        for _ in 0..width {
                            let (_, h) = iter
                                .next()
                                .ok_or_else(|| RdfError::new(line, "truncated unicode escape"))?;
                            hex.push(h);
                        }
                        let cp = u32::from_str_radix(&hex, 16)
                            .map_err(|_| RdfError::new(line, "invalid unicode escape"))?;
                        lexical.push(
                            char::from_u32(cp)
                                .ok_or_else(|| RdfError::new(line, "invalid codepoint"))?,
                        );
                    }
                    other => {
                        return Err(RdfError::new(line, format!("unknown escape '\\{other}'")))
                    }
                }
            }
            '\n' => return Err(RdfError::new(line, "newline inside string literal")),
            c => lexical.push(c),
        }
    }
    Err(RdfError::new(line, "unterminated string literal"))
}

struct Parser {
    tokens: Vec<Located>,
    pos: usize,
    prefixes: HashMap<String, String>,
    base: String,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|l| &l.tok)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|l| l.line)
            .unwrap_or(0)
    }

    fn next(&mut self) -> Option<&Tok> {
        let t = self.tokens.get(self.pos).map(|l| &l.tok);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_dot(&mut self) -> Result<(), RdfError> {
        match self.next() {
            Some(Tok::Dot) => Ok(()),
            _ => Err(RdfError::new(self.line(), "expected '.'")),
        }
    }

    fn expand_pname(&self, pname: &str, line: usize) -> Result<String, RdfError> {
        let colon = pname.find(':').expect("pname contains ':'");
        let (prefix, local) = pname.split_at(colon);
        let local = &local[1..];
        let ns = self
            .prefixes
            .get(prefix)
            .ok_or_else(|| RdfError::new(line, format!("undeclared prefix '{prefix}:'")))?;
        Ok(format!("{ns}{local}"))
    }

    fn resolve_iri(&self, iri: &str) -> String {
        if iri.contains("://") || iri.starts_with("urn:") || self.base.is_empty() {
            iri.to_string()
        } else {
            format!("{}{}", self.base, iri)
        }
    }

    fn parse_document(&mut self, graph: &mut Graph) -> Result<(), RdfError> {
        while let Some(tok) = self.peek() {
            match tok {
                Tok::PrefixDecl => {
                    self.pos += 1;
                    let line = self.line();
                    let prefix = match self.next() {
                        Some(Tok::Pname(p)) => {
                            let p = p.clone();
                            let colon = p
                                .find(':')
                                .ok_or_else(|| RdfError::new(line, "bad prefix"))?;
                            if colon + 1 != p.len() {
                                return Err(RdfError::new(
                                    line,
                                    "prefix declaration must end in ':'",
                                ));
                            }
                            p[..colon].to_string()
                        }
                        _ => return Err(RdfError::new(line, "expected prefix name")),
                    };
                    let iri = match self.next() {
                        Some(Tok::Iri(i)) => i.clone(),
                        _ => return Err(RdfError::new(line, "expected IRI in prefix declaration")),
                    };
                    self.prefixes.insert(prefix, self.resolve_iri(&iri));
                    // SPARQL-style PREFIX has no dot; Turtle @prefix does.
                    if matches!(self.peek(), Some(Tok::Dot)) {
                        self.pos += 1;
                    }
                }
                Tok::BaseDecl => {
                    self.pos += 1;
                    let line = self.line();
                    match self.next() {
                        Some(Tok::Iri(i)) => self.base = i.clone(),
                        _ => return Err(RdfError::new(line, "expected IRI in base declaration")),
                    }
                    if matches!(self.peek(), Some(Tok::Dot)) {
                        self.pos += 1;
                    }
                }
                _ => self.parse_statement(graph)?,
            }
        }
        Ok(())
    }

    fn parse_statement(&mut self, graph: &mut Graph) -> Result<(), RdfError> {
        let subject = self.parse_subject()?;
        loop {
            let predicate = self.parse_predicate()?;
            loop {
                let object = self.parse_object()?;
                graph.insert(subject.clone(), predicate.clone(), object);
                match self.peek() {
                    Some(Tok::Comma) => {
                        self.pos += 1;
                        continue;
                    }
                    _ => break,
                }
            }
            match self.peek() {
                Some(Tok::Semi) => {
                    self.pos += 1;
                    // Allow trailing ';' before '.'
                    if matches!(self.peek(), Some(Tok::Dot)) {
                        break;
                    }
                    continue;
                }
                _ => break,
            }
        }
        self.expect_dot()
    }

    fn parse_subject(&mut self) -> Result<Term, RdfError> {
        let line = self.line();
        match self.next() {
            Some(Tok::Iri(i)) => {
                let i = i.clone();
                Ok(Term::iri(self.resolve_iri(&i)))
            }
            Some(Tok::Pname(p)) => {
                let p = p.clone();
                Ok(Term::iri(self.expand_pname(&p, line)?))
            }
            Some(Tok::Blank(b)) => {
                let b = b.clone();
                Ok(Term::blank(b))
            }
            _ => Err(RdfError::new(line, "expected subject")),
        }
    }

    fn parse_predicate(&mut self) -> Result<Term, RdfError> {
        let line = self.line();
        match self.next() {
            Some(Tok::A) => Ok(Term::iri(vocab::rdf::TYPE)),
            Some(Tok::Iri(i)) => {
                let i = i.clone();
                Ok(Term::iri(self.resolve_iri(&i)))
            }
            Some(Tok::Pname(p)) => {
                let p = p.clone();
                Ok(Term::iri(self.expand_pname(&p, line)?))
            }
            _ => Err(RdfError::new(line, "expected predicate")),
        }
    }

    fn parse_object(&mut self) -> Result<Term, RdfError> {
        let line = self.line();
        match self.next() {
            Some(Tok::Iri(i)) => {
                let i = i.clone();
                Ok(Term::iri(self.resolve_iri(&i)))
            }
            Some(Tok::Pname(p)) => {
                let p = p.clone();
                Ok(Term::iri(self.expand_pname(&p, line)?))
            }
            Some(Tok::Blank(b)) => {
                let b = b.clone();
                Ok(Term::blank(b))
            }
            Some(Tok::A) => Err(RdfError::new(line, "'a' is only valid as a predicate")),
            Some(Tok::Integer(n)) => Ok(Term::Literal(Literal::typed(
                n.clone(),
                vocab::xsd::INTEGER,
            ))),
            Some(Tok::Decimal(n)) => Ok(Term::Literal(Literal::typed(
                n.clone(),
                vocab::xsd::DECIMAL,
            ))),
            Some(Tok::Boolean(b)) => Ok(Term::Literal(Literal::boolean(*b))),
            Some(Tok::String(s)) => {
                let s = s.clone();
                match self.peek() {
                    Some(Tok::LangTag(tag)) => {
                        let tag = tag.clone();
                        self.pos += 1;
                        Ok(Term::Literal(Literal::lang(s, tag)))
                    }
                    Some(Tok::DtSep) => {
                        self.pos += 1;
                        let line = self.line();
                        let dt = match self.next() {
                            Some(Tok::Iri(i)) => i.clone(),
                            Some(Tok::Pname(p)) => {
                                let p = p.clone();
                                self.expand_pname(&p, line)?
                            }
                            _ => return Err(RdfError::new(line, "expected datatype IRI")),
                        };
                        Ok(Term::Literal(Literal::typed(s, dt)))
                    }
                    _ => Ok(Term::Literal(Literal::plain(s))),
                }
            }
            _ => Err(RdfError::new(line, "expected object")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIXTURE: &str = r#"
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix owl: <http://www.w3.org/2002/07/owl#> .
@prefix ex: <http://example.org/> .

ex:Person a owl:Class ;
    rdfs:subClassOf owl:Thing ;
    rdfs:label "Person"@en .

ex:alice a ex:Person ;
    ex:age 34 ;
    ex:height 1.68 ;
    ex:active true ;
    ex:knows ex:bob , ex:carol .

ex:bob a ex:Person .
"#;

    #[test]
    fn parses_fixture() {
        let g = parse_document(FIXTURE).unwrap();
        // Person: 3 triples; alice: 1 type + age + height + active + 2 knows = 6; bob: 1.
        assert_eq!(g.len(), 10);
    }

    #[test]
    fn a_keyword_expands_to_rdf_type() {
        let g = parse_document("@prefix ex: <http://e/> . ex:x a ex:C .").unwrap();
        let t = g.triples()[0];
        assert_eq!(g.interner().resolve(t.p).as_iri(), Some(vocab::rdf::TYPE));
    }

    #[test]
    fn object_lists_and_predicate_lists() {
        let g = parse_document("@prefix ex: <http://e/> . ex:x ex:p ex:a , ex:b ; ex:q ex:c .")
            .unwrap();
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn numeric_and_boolean_objects() {
        let g = parse_document("@prefix ex: <http://e/> . ex:x ex:n 42 ; ex:d 3.25 ; ex:b false .")
            .unwrap();
        let lits: Vec<_> = g
            .triples()
            .iter()
            .map(|t| g.interner().resolve(t.o).as_literal().unwrap().clone())
            .collect();
        assert_eq!(lits[0].as_integer(), Some(42));
        assert_eq!(lits[1].as_double(), Some(3.25));
        assert_eq!(lits[2].lexical(), "false");
    }

    #[test]
    fn lang_and_typed_strings() {
        let g = parse_document(
            "@prefix ex: <http://e/> . @prefix xsd: <http://www.w3.org/2001/XMLSchema#> . \
             ex:x ex:l \"hi\"@en ; ex:t \"2020-01-01T00:00:00\"^^xsd:dateTime .",
        )
        .unwrap();
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn sparql_style_prefix_without_dot() {
        let g = parse_document("PREFIX ex: <http://e/>\nex:x ex:p ex:y .").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn base_resolution() {
        let g = parse_document("@base <http://b/> . <x> <p> <y> .").unwrap();
        let t = g.triples()[0];
        assert_eq!(g.interner().resolve(t.s).as_iri(), Some("http://b/x"));
    }

    #[test]
    fn undeclared_prefix_is_an_error() {
        let err = parse_document("ex:x ex:p ex:y .").unwrap_err();
        assert!(err.message.contains("undeclared prefix"));
    }

    #[test]
    fn dotted_local_names_do_not_eat_the_terminator() {
        let g = parse_document("@prefix ex: <http://e/> . ex:x ex:p ex:y .").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn blank_nodes() {
        let g = parse_document("@prefix ex: <http://e/> . _:a ex:p _:b .").unwrap();
        let t = g.triples()[0];
        assert!(g.interner().resolve(t.s).is_blank());
        assert!(g.interner().resolve(t.o).is_blank());
    }

    #[test]
    fn comments_are_skipped() {
        let g =
            parse_document("# header\n@prefix ex: <http://e/> . # ns\nex:x ex:p ex:y . # done\n")
                .unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn unterminated_string_reports_line() {
        let err = parse_document("@prefix ex: <http://e/> .\nex:x ex:p \"oops .").unwrap_err();
        assert_eq!(err.line, 2);
    }
}
