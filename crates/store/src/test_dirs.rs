//! Unique scratch directories for persistence tests.
//!
//! The workspace builds offline with no `tempfile` crate, so tests that
//! need a store directory get one here: a fresh path under the system
//! temp dir, unique per process and call, created on demand. Callers
//! may remove it afterwards; leaking under `/tmp` on a panicking test
//! is acceptable and keeps the failure inspectable.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

/// Create and return a fresh empty directory whose name embeds `label`,
/// the process id, and a per-process counter.
pub fn fresh_dir(label: &str) -> PathBuf {
    let n = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("elinda-{label}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Remove a scratch directory, ignoring errors (it may already be gone).
pub fn cleanup(dir: &std::path::Path) {
    let _ = std::fs::remove_dir_all(dir);
}
