//! On-disk persistence: generation directories, manifests, and crash-safe
//! commits for the dictionary-encoded store.
//!
//! A **store directory** holds immutable numbered generations plus a
//! `CURRENT` pointer file:
//!
//! ```text
//! <store-dir>/
//!   CURRENT                  # "gen-0000000003\n", flipped via tmp+rename
//!   gen-0000000002/          # a previous generation (kept for recovery)
//!   gen-0000000003/
//!     MANIFEST               # counts, epoch, per-file sizes + checksums
//!     dict.bin               # the term dictionary (see `dict`)
//!     spo.seg                # sorted ID-triple runs (see `segment`)
//!     pos.seg
//!     osp.seg
//! ```
//!
//! Writes are crash-safe by construction: a generation directory is fully
//! written and fsynced **before** `CURRENT` is flipped with an atomic
//! rename, so a crash mid-write leaves an orphan directory that loading
//! ignores and the next save overwrites. Every file carries its own
//! checksum and the manifest cross-checks sizes and checksums again, so
//! torn or bit-flipped files fail load with a typed [`PersistError`] —
//! never a panic, never partially-served data.

use crate::store::TripleStore;
use crate::{dict, segment};
use elinda_rdf::Triple;
use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// The `CURRENT` pointer file name.
pub const CURRENT_FILE: &str = "CURRENT";
/// The per-generation manifest file name.
pub const MANIFEST_FILE: &str = "MANIFEST";
/// The dictionary file name inside a generation.
pub const DICT_FILE: &str = "dict.bin";
/// The three segment file names, in [`segment::SegmentOrder`] order.
pub const SEGMENT_FILES: [&str; 3] = ["spo.seg", "pos.seg", "osp.seg"];

/// Why a persisted store could not be written or read back.
///
/// Every corruption mode maps to a distinct variant so callers (and the
/// recovery tests) can tell a truncated file from a bit flip from a
/// structurally impossible index — and none of them ever panics.
#[derive(Debug)]
pub enum PersistError {
    /// The underlying filesystem operation failed.
    Io {
        /// File (or directory) the operation touched.
        file: String,
        /// The OS error.
        source: io::Error,
    },
    /// A file did not start with its expected magic bytes.
    BadMagic {
        /// Offending file.
        file: String,
    },
    /// A file's format version is newer than this build understands.
    UnsupportedVersion {
        /// Offending file.
        file: String,
        /// Version found in the header.
        version: u32,
    },
    /// A file ended before its declared contents did (torn write,
    /// truncation).
    Truncated {
        /// Offending file.
        file: String,
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// A file's trailing checksum (or its manifest-recorded checksum)
    /// does not match its contents.
    ChecksumMismatch {
        /// Offending file.
        file: String,
    },
    /// The file decoded but its contents are structurally invalid
    /// (unsorted runs, out-of-range term ids, permutation mismatch,
    /// malformed manifest, …).
    Corrupt {
        /// Offending file.
        file: String,
        /// What was wrong.
        detail: String,
    },
    /// The store directory has no committed generation to load.
    NoCurrentGeneration {
        /// The store directory.
        dir: PathBuf,
    },
    /// `CURRENT` names a generation whose directory is missing.
    MissingGeneration {
        /// The named generation directory.
        dir: PathBuf,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { file, source } => write!(f, "{file}: I/O error: {source}"),
            PersistError::BadMagic { file } => write!(f, "{file}: bad magic bytes"),
            PersistError::UnsupportedVersion { file, version } => {
                write!(f, "{file}: unsupported format version {version}")
            }
            PersistError::Truncated { file, needed, have } => {
                write!(f, "{file}: truncated (needed {needed} bytes, have {have})")
            }
            PersistError::ChecksumMismatch { file } => write!(f, "{file}: checksum mismatch"),
            PersistError::Corrupt { file, detail } => write!(f, "{file}: corrupt: {detail}"),
            PersistError::NoCurrentGeneration { dir } => {
                write!(f, "{}: no committed generation", dir.display())
            }
            PersistError::MissingGeneration { dir } => {
                write!(f, "{}: CURRENT names a missing generation", dir.display())
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl PersistError {
    pub(crate) fn io(file: impl Into<String>, source: io::Error) -> Self {
        PersistError::Io {
            file: file.into(),
            source,
        }
    }

    /// Stable lowercase kind tag for the error variant, used in
    /// structured log lines (`persist-error: … kind=io`).
    pub fn kind(&self) -> &'static str {
        match self {
            PersistError::Io { .. } => "io",
            PersistError::BadMagic { .. } => "bad-magic",
            PersistError::UnsupportedVersion { .. } => "unsupported-version",
            PersistError::Truncated { .. } => "truncated",
            PersistError::ChecksumMismatch { .. } => "checksum-mismatch",
            PersistError::Corrupt { .. } => "corrupt",
            PersistError::NoCurrentGeneration { .. } => "no-current-generation",
            PersistError::MissingGeneration { .. } => "missing-generation",
        }
    }

    pub(crate) fn corrupt(file: impl Into<String>, detail: impl Into<String>) -> Self {
        PersistError::Corrupt {
            file: file.into(),
            detail: detail.into(),
        }
    }
}

// ---------------------------------------------------------------------------
// Wire primitives shared by the dictionary and segment codecs
// ---------------------------------------------------------------------------

/// FNV-1a 64-bit over a byte slice — the file checksum. Not
/// cryptographic; it guards against truncation and accidental
/// corruption, which is the failure model of a local segment store.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked forward reader producing typed [`PersistError`]s
/// (with the owning file's name) instead of panics on short input.
pub(crate) struct ByteReader<'a> {
    file: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub(crate) fn new(file: &'a str, bytes: &'a [u8]) -> Self {
        ByteReader {
            file,
            bytes,
            pos: 0,
        }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Truncated {
                file: self.file.to_string(),
                needed: n,
                have: self.remaining(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub(crate) fn read_u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn read_u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn read_u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn read_str(&mut self) -> Result<&'a str, PersistError> {
        let len = self.read_u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map_err(|_| PersistError::corrupt(self.file, "invalid UTF-8 in string record"))
    }

    pub(crate) fn expect_magic(&mut self, magic: &[u8; 8]) -> Result<(), PersistError> {
        let found = self.take(8).map_err(|_| PersistError::BadMagic {
            file: self.file.to_string(),
        })?;
        if found != magic {
            return Err(PersistError::BadMagic {
                file: self.file.to_string(),
            });
        }
        Ok(())
    }

    pub(crate) fn corrupt(&self, detail: impl Into<String>) -> PersistError {
        PersistError::corrupt(self.file, detail)
    }
}

/// Split `bytes` into `(payload, trailing checksum)` and verify the
/// checksum, the common footer of every binary file in a generation.
pub(crate) fn verify_checksummed<'a>(
    file: &str,
    bytes: &'a [u8],
) -> Result<&'a [u8], PersistError> {
    if bytes.len() < 8 {
        return Err(PersistError::Truncated {
            file: file.to_string(),
            needed: 8,
            have: bytes.len(),
        });
    }
    let (payload, footer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(footer.try_into().unwrap());
    if fnv1a64(payload) != stored {
        return Err(PersistError::ChecksumMismatch {
            file: file.to_string(),
        });
    }
    Ok(payload)
}

// ---------------------------------------------------------------------------
// Generation naming
// ---------------------------------------------------------------------------

/// Directory name of generation `n` (`gen-0000000001`).
pub fn generation_dir_name(n: u64) -> String {
    format!("gen-{n:010}")
}

fn parse_generation_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("gen-")?;
    if digits.len() != 10 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// All committed-or-orphaned generation numbers present in `dir`,
/// sorted ascending. Missing directory reads as empty.
pub fn list_generations(dir: &Path) -> Result<Vec<u64>, PersistError> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(PersistError::io(dir.display().to_string(), e)),
    };
    let mut gens = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| PersistError::io(dir.display().to_string(), e))?;
        if let Some(n) = entry.file_name().to_str().and_then(parse_generation_name) {
            if entry.path().is_dir() {
                gens.push(n);
            }
        }
    }
    gens.sort_unstable();
    Ok(gens)
}

/// The committed generation number `CURRENT` points at, or `None` when
/// the directory has no `CURRENT` file yet.
pub fn current_generation(dir: &Path) -> Result<Option<u64>, PersistError> {
    let path = dir.join(CURRENT_FILE);
    let text = match fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(PersistError::io(path.display().to_string(), e)),
    };
    match parse_generation_name(text.trim()) {
        Some(n) => Ok(Some(n)),
        None => Err(PersistError::corrupt(
            path.display().to_string(),
            format!("unparsable CURRENT contents {:?}", text.trim()),
        )),
    }
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

/// The parsed per-generation manifest: counts, the persisted epoch, and
/// the size + checksum of every data file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Store epoch at save time, restored on load.
    pub epoch: u64,
    /// Dictionary term count.
    pub terms: u64,
    /// Triple count (identical across the three permutations).
    pub triples: u64,
    /// `(file name, byte length, fnv1a64)` for each data file.
    pub files: Vec<(String, u64, u64)>,
}

impl Manifest {
    fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("elinda-manifest v1\n");
        out.push_str(&format!("epoch {}\n", self.epoch));
        out.push_str(&format!("terms {}\n", self.terms));
        out.push_str(&format!("triples {}\n", self.triples));
        for (name, len, sum) in &self.files {
            out.push_str(&format!("file {name} {len} {sum:016x}\n"));
        }
        out.push_str("end\n");
        out
    }

    fn parse(file: &str, text: &str) -> Result<Manifest, PersistError> {
        let mut lines = text.lines();
        if lines.next() != Some("elinda-manifest v1") {
            return Err(PersistError::corrupt(file, "missing manifest header"));
        }
        let mut epoch = None;
        let mut terms = None;
        let mut triples = None;
        let mut files = Vec::new();
        let mut terminated = false;
        for line in lines {
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("epoch") => epoch = parts.next().and_then(|v| v.parse().ok()),
                Some("terms") => terms = parts.next().and_then(|v| v.parse().ok()),
                Some("triples") => triples = parts.next().and_then(|v| v.parse().ok()),
                Some("file") => {
                    let name = parts.next();
                    let len = parts.next().and_then(|v| v.parse().ok());
                    let sum = parts.next().and_then(|v| u64::from_str_radix(v, 16).ok());
                    match (name, len, sum) {
                        (Some(name), Some(len), Some(sum)) => {
                            files.push((name.to_string(), len, sum))
                        }
                        _ => {
                            return Err(PersistError::corrupt(
                                file,
                                format!("malformed file line {line:?}"),
                            ))
                        }
                    }
                }
                Some("end") => {
                    terminated = true;
                    break;
                }
                Some(other) => {
                    return Err(PersistError::corrupt(
                        file,
                        format!("unknown manifest key {other:?}"),
                    ))
                }
                None => continue,
            }
        }
        if !terminated {
            // A torn manifest (crash mid-write) has no `end` sentinel.
            return Err(PersistError::Truncated {
                file: file.to_string(),
                needed: 4,
                have: 0,
            });
        }
        match (epoch, terms, triples) {
            (Some(epoch), Some(terms), Some(triples)) => Ok(Manifest {
                epoch,
                terms,
                triples,
                files,
            }),
            _ => Err(PersistError::corrupt(
                file,
                "manifest missing epoch/terms/triples",
            )),
        }
    }
}

// ---------------------------------------------------------------------------
// Save
// ---------------------------------------------------------------------------

fn write_file_synced(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let name = path.display().to_string();
    let mut f = fs::File::create(path).map_err(|e| PersistError::io(&name, e))?;
    f.write_all(bytes).map_err(|e| PersistError::io(&name, e))?;
    f.sync_all().map_err(|e| PersistError::io(&name, e))?;
    Ok(())
}

/// Directory fsync so file creation and renames within it are durable.
/// A failure here used to be silently swallowed — which meant a commit
/// could be acknowledged without its `CURRENT` rename actually being on
/// stable storage. It now propagates like every other I/O error, so the
/// serving layer counts it in `elinda_persist_failures_total` and keeps
/// the previous generation committed.
fn sync_dir(path: &Path) -> Result<(), PersistError> {
    let f = fs::File::open(path).map_err(|e| PersistError::io(path.display().to_string(), e))?;
    f.sync_all()
        .map_err(|e| PersistError::io(path.display().to_string(), e))
}

/// Serialize `store` as the next generation of `dir` and commit it by
/// flipping `CURRENT`. Returns the new generation number.
///
/// Crash safety: the generation directory is complete and fsynced
/// before the `CURRENT` tmp+rename; a crash at any earlier point leaves
/// the previous generation committed and this one an ignored orphan.
pub fn save_generation(dir: &Path, store: &TripleStore) -> Result<u64, PersistError> {
    fs::create_dir_all(dir).map_err(|e| PersistError::io(dir.display().to_string(), e))?;
    let next = list_generations(dir)?
        .last()
        .copied()
        .unwrap_or(0)
        .max(current_generation(dir)?.unwrap_or(0))
        + 1;
    let gen_dir = dir.join(generation_dir_name(next));
    // A leftover directory from an interrupted save of this same number
    // is stale by definition: rebuild it from scratch.
    if gen_dir.exists() {
        fs::remove_dir_all(&gen_dir)
            .map_err(|e| PersistError::io(gen_dir.display().to_string(), e))?;
    }
    fs::create_dir_all(&gen_dir).map_err(|e| PersistError::io(gen_dir.display().to_string(), e))?;

    let dict_bytes = dict::encode_dictionary(store.interner());
    let seg_bytes = [
        segment::encode_segment(segment::SegmentOrder::Spo, store.spo_slice()),
        segment::encode_segment(segment::SegmentOrder::Pos, store.pos_slice()),
        segment::encode_segment(segment::SegmentOrder::Osp, store.osp_slice()),
    ];

    let mut files = vec![(
        DICT_FILE.to_string(),
        dict_bytes.len() as u64,
        fnv1a64(&dict_bytes),
    )];
    for (name, bytes) in SEGMENT_FILES.iter().zip(&seg_bytes) {
        files.push((name.to_string(), bytes.len() as u64, fnv1a64(bytes)));
    }
    let manifest = Manifest {
        epoch: store.epoch(),
        terms: store.interner().len() as u64,
        triples: store.len() as u64,
        files,
    };

    write_file_synced(&gen_dir.join(DICT_FILE), &dict_bytes)?;
    for (name, bytes) in SEGMENT_FILES.iter().zip(&seg_bytes) {
        write_file_synced(&gen_dir.join(name), bytes)?;
    }
    write_file_synced(&gen_dir.join(MANIFEST_FILE), manifest.render().as_bytes())?;
    sync_dir(&gen_dir)?;

    // The commit point: CURRENT flips atomically to the new generation.
    let tmp = dir.join(format!(".CURRENT.tmp.{next}"));
    write_file_synced(&tmp, format!("{}\n", generation_dir_name(next)).as_bytes())?;
    fs::rename(&tmp, dir.join(CURRENT_FILE))
        .map_err(|e| PersistError::io(dir.display().to_string(), e))?;
    sync_dir(dir)?;
    Ok(next)
}

/// True when generation `n`'s manifest was fully written (its `end`
/// sentinel is in place) — the cheap probe separating interrupted saves
/// from usable fallback generations.
fn generation_is_terminated(dir: &Path, n: u64) -> bool {
    fs::read_to_string(dir.join(generation_dir_name(n)).join(MANIFEST_FILE))
        .map(|text| text.ends_with("end\n"))
        .unwrap_or(false)
}

/// Delete committed generations older than the `keep` most recent ones
/// (the current generation is always kept), plus every orphan of an
/// interrupted save: generations above `CURRENT`, and generations below
/// it whose manifest never finished — neither is a usable fallback.
/// Returns the generation numbers pruned, ascending.
pub fn prune_generations(dir: &Path, keep: usize) -> Result<Vec<u64>, PersistError> {
    let keep = keep.max(1);
    let Some(current) = current_generation(dir)? else {
        return Ok(Vec::new());
    };
    let mut pruned = Vec::new();
    let remove = |n: u64, pruned: &mut Vec<u64>| -> Result<(), PersistError> {
        let path = dir.join(generation_dir_name(n));
        fs::remove_dir_all(&path).map_err(|e| PersistError::io(path.display().to_string(), e))?;
        pruned.push(n);
        Ok(())
    };
    let mut committed = Vec::new();
    for n in list_generations(dir)? {
        if n != current && (n > current || !generation_is_terminated(dir, n)) {
            remove(n, &mut pruned)?;
        } else {
            committed.push(n);
        }
    }
    let cutoff_idx = committed.len().saturating_sub(keep);
    for &n in &committed[..cutoff_idx] {
        if n == current {
            continue;
        }
        remove(n, &mut pruned)?;
    }
    pruned.sort_unstable();
    Ok(pruned)
}

// ---------------------------------------------------------------------------
// Load
// ---------------------------------------------------------------------------

fn read_verified(gen_dir: &Path, name: &str, manifest: &Manifest) -> Result<Vec<u8>, PersistError> {
    let path = gen_dir.join(name);
    let display = path.display().to_string();
    let bytes = fs::read(&path).map_err(|e| PersistError::io(&display, e))?;
    let Some((_, len, sum)) = manifest.files.iter().find(|(n, _, _)| n == name) else {
        return Err(PersistError::corrupt(
            gen_dir.join(MANIFEST_FILE).display().to_string(),
            format!("manifest lists no entry for {name}"),
        ));
    };
    if bytes.len() as u64 != *len {
        return Err(PersistError::Truncated {
            file: display,
            needed: *len as usize,
            have: bytes.len(),
        });
    }
    if fnv1a64(&bytes) != *sum {
        return Err(PersistError::ChecksumMismatch { file: display });
    }
    Ok(bytes)
}

/// Load one specific generation of `dir`, fully validated: manifest
/// sizes and checksums, per-file trailing checksums, dictionary
/// bijectivity, segment sortedness, term-id range, and cross-permutation
/// consistency (all three segments hold the same triple set).
pub fn load_generation(dir: &Path, generation: u64) -> Result<TripleStore, PersistError> {
    let gen_dir = dir.join(generation_dir_name(generation));
    if !gen_dir.is_dir() {
        return Err(PersistError::MissingGeneration { dir: gen_dir });
    }
    let manifest_path = gen_dir.join(MANIFEST_FILE);
    let manifest_name = manifest_path.display().to_string();
    let manifest_text =
        fs::read_to_string(&manifest_path).map_err(|e| PersistError::io(&manifest_name, e))?;
    let manifest = Manifest::parse(&manifest_name, &manifest_text)?;

    let dict_bytes = read_verified(&gen_dir, DICT_FILE, &manifest)?;
    let interner =
        dict::decode_dictionary(&gen_dir.join(DICT_FILE).display().to_string(), &dict_bytes)?;
    if interner.len() as u64 != manifest.terms {
        return Err(PersistError::corrupt(
            &manifest_name,
            format!(
                "dictionary holds {} terms, manifest says {}",
                interner.len(),
                manifest.terms
            ),
        ));
    }

    let orders = [
        segment::SegmentOrder::Spo,
        segment::SegmentOrder::Pos,
        segment::SegmentOrder::Osp,
    ];
    let mut runs: Vec<Vec<Triple>> = Vec::with_capacity(3);
    for (name, order) in SEGMENT_FILES.iter().zip(orders) {
        let bytes = read_verified(&gen_dir, name, &manifest)?;
        let file = gen_dir.join(name).display().to_string();
        let triples = segment::decode_segment(&file, &bytes, order)?;
        if triples.len() as u64 != manifest.triples {
            return Err(PersistError::corrupt(
                &file,
                format!(
                    "segment holds {} triples, manifest says {}",
                    triples.len(),
                    manifest.triples
                ),
            ));
        }
        let max_term = interner.len() as u32;
        if let Some(t) = triples
            .iter()
            .find(|t| t.s.raw() > max_term || t.p.raw() > max_term || t.o.raw() > max_term)
        {
            return Err(PersistError::corrupt(
                &file,
                format!("triple references term id beyond dictionary ({t:?})"),
            ));
        }
        runs.push(triples);
    }
    let osp = runs.pop().expect("three runs");
    let pos = runs.pop().expect("three runs");
    let spo = runs.pop().expect("three runs");

    // The three permutations must agree on the triple set, or pattern
    // queries would answer differently depending on the index chosen.
    for (name, run) in SEGMENT_FILES[1..].iter().zip([&pos, &osp]) {
        let mut resorted = run.clone();
        resorted.sort_unstable();
        if resorted != spo {
            return Err(PersistError::corrupt(
                gen_dir.join(name).display().to_string(),
                "permutation disagrees with spo.seg on the triple set",
            ));
        }
    }

    Ok(TripleStore::from_index_parts(
        interner,
        spo,
        pos,
        osp,
        manifest.epoch,
    ))
}

/// Load the committed (`CURRENT`) generation of `dir`, returning the
/// store and its generation number.
pub fn load_current(dir: &Path) -> Result<(TripleStore, u64), PersistError> {
    let generation = current_generation(dir)?.ok_or_else(|| PersistError::NoCurrentGeneration {
        dir: dir.to_path_buf(),
    })?;
    let store = load_generation(dir, generation)?;
    Ok((store, generation))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dirs::fresh_dir;

    fn sample() -> TripleStore {
        TripleStore::from_turtle(
            r#"
            @prefix ex: <http://e/> .
            @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
            ex:a a ex:C ; ex:p ex:b , ex:c ; rdfs:label "a" .
            ex:b a ex:C ; ex:p ex:c .
            ex:c a ex:D ; rdfs:label "zé \"q\""@fr .
            "#,
        )
        .unwrap()
    }

    #[test]
    fn save_load_round_trips_exactly() {
        let dir = fresh_dir("persist-roundtrip");
        let store = sample();
        let generation = save_generation(&dir, &store).unwrap();
        assert_eq!(generation, 1);
        let (loaded, loaded_gen) = load_current(&dir).unwrap();
        assert_eq!(loaded_gen, 1);
        assert_eq!(loaded.len(), store.len());
        assert_eq!(loaded.epoch(), store.epoch());
        assert_eq!(loaded.spo_slice(), store.spo_slice());
        assert_eq!(loaded.pos_slice(), store.pos_slice());
        assert_eq!(loaded.osp_slice(), store.osp_slice());
        assert_eq!(loaded.interner().len(), store.interner().len());
        for (id, term) in store.interner().iter() {
            assert_eq!(loaded.interner().resolve(id), term);
        }
        // The loaded store is a new lineage.
        assert_ne!(loaded.store_id(), store.store_id());
    }

    #[test]
    fn epoch_survives_the_round_trip() {
        let dir = fresh_dir("persist-epoch");
        let mut store = sample();
        let x = store.intern(elinda_rdf::Term::iri("http://e/x"));
        let p = store.lookup_iri("http://e/p").unwrap();
        store.insert(x, p, x);
        store.bump_epoch();
        assert_eq!(store.epoch(), 2);
        save_generation(&dir, &store).unwrap();
        let (loaded, _) = load_current(&dir).unwrap();
        assert_eq!(loaded.epoch(), 2);
    }

    #[test]
    fn generations_are_numbered_monotonically() {
        let dir = fresh_dir("persist-gens");
        let store = sample();
        assert_eq!(save_generation(&dir, &store).unwrap(), 1);
        assert_eq!(save_generation(&dir, &store).unwrap(), 2);
        assert_eq!(save_generation(&dir, &store).unwrap(), 3);
        assert_eq!(list_generations(&dir).unwrap(), vec![1, 2, 3]);
        assert_eq!(current_generation(&dir).unwrap(), Some(3));
    }

    #[test]
    fn prune_keeps_the_newest_and_current() {
        let dir = fresh_dir("persist-prune");
        let store = sample();
        for _ in 0..4 {
            save_generation(&dir, &store).unwrap();
        }
        let pruned = prune_generations(&dir, 2).unwrap();
        assert_eq!(pruned, vec![1, 2]);
        assert_eq!(list_generations(&dir).unwrap(), vec![3, 4]);
        // Pruning again is a no-op.
        assert!(prune_generations(&dir, 2).unwrap().is_empty());
        // The survivors still load.
        assert_eq!(load_current(&dir).unwrap().1, 4);
    }

    #[test]
    fn empty_dir_reports_no_generation() {
        let dir = fresh_dir("persist-empty");
        assert!(current_generation(&dir).unwrap().is_none());
        assert!(matches!(
            load_current(&dir),
            Err(PersistError::NoCurrentGeneration { .. })
        ));
    }

    #[test]
    fn empty_store_round_trips() {
        let dir = fresh_dir("persist-empty-store");
        let store = TripleStore::new();
        save_generation(&dir, &store).unwrap();
        let (loaded, _) = load_current(&dir).unwrap();
        assert!(loaded.is_empty());
        assert_eq!(loaded.interner().len(), 0);
    }

    #[test]
    fn manifest_round_trips_and_rejects_torn_text() {
        let m = Manifest {
            epoch: 7,
            terms: 10,
            triples: 5,
            files: vec![("dict.bin".into(), 123, 0xabcd)],
        };
        let text = m.render();
        assert_eq!(Manifest::parse("m", &text).unwrap(), m);
        // Cut before the `end` sentinel: a torn write.
        let torn = &text[..text.len() - 4];
        assert!(matches!(
            Manifest::parse("m", torn),
            Err(PersistError::Truncated { .. })
        ));
        assert!(matches!(
            Manifest::parse("m", "garbage"),
            Err(PersistError::Corrupt { .. })
        ));
    }
}
