//! Segment files: one sorted permutation of the ID-triple set.
//!
//! Each of the store's three permutation indexes (SPO / POS / OSP)
//! serializes to its own segment — a header, a run of fixed-width
//! 12-byte records (three little-endian `u32` term ids, always stored
//! in `(s, p, o)` component order regardless of the sort order), and a
//! trailing checksum:
//!
//! ```text
//! magic   "ELNDSEG1"      8 bytes
//! version u32 = 1
//! order   u8              0 = SPO, 1 = POS, 2 = OSP
//! pad     3 × u8 = 0
//! count   u64             triple count
//! records count × (u32 s, u32 p, u32 o)
//! checksum u64            FNV-1a 64 of everything above
//! ```
//!
//! Decoding validates everything the in-memory index relies on: ids are
//! nonzero, and the run is **strictly** increasing under the declared
//! order's key (sorted and duplicate-free), so binary searches over the
//! loaded slice behave exactly as over a freshly built one.

use crate::persist::{fnv1a64, put_u32, put_u64, verify_checksummed, ByteReader, PersistError};
use elinda_rdf::{TermId, Triple};

const MAGIC: &[u8; 8] = b"ELNDSEG1";
const VERSION: u32 = 1;

/// Which permutation a segment holds, and therefore which key its
/// records are sorted by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentOrder {
    /// Sorted by `(s, p, o)`.
    Spo = 0,
    /// Sorted by `(p, o, s)`.
    Pos = 1,
    /// Sorted by `(o, s, p)`.
    Osp = 2,
}

impl SegmentOrder {
    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(SegmentOrder::Spo),
            1 => Some(SegmentOrder::Pos),
            2 => Some(SegmentOrder::Osp),
            _ => None,
        }
    }

    fn key(self, t: &Triple) -> (TermId, TermId, TermId) {
        match self {
            SegmentOrder::Spo => t.spo(),
            SegmentOrder::Pos => t.pos(),
            SegmentOrder::Osp => t.osp(),
        }
    }
}

/// Serialize one sorted permutation as a segment file image (including
/// the trailing checksum). `triples` must already be sorted by
/// `order`'s key; debug builds assert it.
pub fn encode_segment(order: SegmentOrder, triples: &[Triple]) -> Vec<u8> {
    debug_assert!(triples
        .windows(2)
        .all(|w| order.key(&w[0]) < order.key(&w[1])));
    let mut out = Vec::with_capacity(24 + triples.len() * 12 + 8);
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, VERSION);
    out.push(order as u8);
    out.extend_from_slice(&[0, 0, 0]);
    put_u64(&mut out, triples.len() as u64);
    for t in triples {
        put_u32(&mut out, t.s.raw());
        put_u32(&mut out, t.p.raw());
        put_u32(&mut out, t.o.raw());
    }
    let sum = fnv1a64(&out);
    put_u64(&mut out, sum);
    out
}

/// Decode a segment file image, verifying magic, version, checksum,
/// declared order, nonzero term ids, and strict sortedness.
pub fn decode_segment(
    file: &str,
    bytes: &[u8],
    expected: SegmentOrder,
) -> Result<Vec<Triple>, PersistError> {
    let payload = verify_checksummed(file, bytes)?;
    let mut r = ByteReader::new(file, payload);
    r.expect_magic(MAGIC)?;
    let version = r.read_u32()?;
    if version != VERSION {
        return Err(PersistError::UnsupportedVersion {
            file: file.to_string(),
            version,
        });
    }
    let tag = r.read_u8()?;
    let order = SegmentOrder::from_tag(tag)
        .ok_or_else(|| r.corrupt(format!("unknown segment order tag {tag}")))?;
    if order != expected {
        return Err(r.corrupt(format!(
            "segment declares order {order:?}, expected {expected:?}"
        )));
    }
    for _ in 0..3 {
        if r.read_u8()? != 0 {
            return Err(r.corrupt("nonzero header padding"));
        }
    }
    let count = r.read_u64()?;
    let count = usize::try_from(count)
        .map_err(|_| r.corrupt(format!("triple count {count} exceeds addressable memory")))?;
    if r.remaining() != count * 12 {
        return Err(PersistError::Truncated {
            file: file.to_string(),
            needed: count * 12,
            have: r.remaining(),
        });
    }
    let mut triples = Vec::with_capacity(count);
    for n in 0..count {
        let s = r.read_u32()?;
        let p = r.read_u32()?;
        let o = r.read_u32()?;
        let (Some(s), Some(p), Some(o)) = (
            TermId::from_raw(s),
            TermId::from_raw(p),
            TermId::from_raw(o),
        ) else {
            return Err(r.corrupt(format!("zero term id in record {n}")));
        };
        let t = Triple::new(s, p, o);
        if let Some(prev) = triples.last() {
            if order.key(prev) >= order.key(&t) {
                return Err(r.corrupt(format!(
                    "records {} and {n} are out of {order:?} order",
                    n - 1
                )));
            }
        }
        triples.push(t);
    }
    Ok(triples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> TermId {
        TermId::from_raw(n).unwrap()
    }

    fn sample(order: SegmentOrder) -> Vec<Triple> {
        let mut v = vec![
            Triple::new(id(1), id(2), id(3)),
            Triple::new(id(1), id(2), id(4)),
            Triple::new(id(2), id(2), id(3)),
            Triple::new(id(5), id(1), id(1)),
        ];
        v.sort_unstable_by_key(|t| order.key(t));
        v
    }

    #[test]
    fn round_trip_all_orders() {
        for order in [SegmentOrder::Spo, SegmentOrder::Pos, SegmentOrder::Osp] {
            let triples = sample(order);
            let bytes = encode_segment(order, &triples);
            assert_eq!(decode_segment("seg", &bytes, order).unwrap(), triples);
        }
    }

    #[test]
    fn empty_segment_round_trips() {
        let bytes = encode_segment(SegmentOrder::Spo, &[]);
        assert!(decode_segment("seg", &bytes, SegmentOrder::Spo)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn rejects_wrong_order_tag() {
        let bytes = encode_segment(SegmentOrder::Spo, &sample(SegmentOrder::Spo));
        assert!(matches!(
            decode_segment("seg", &bytes, SegmentOrder::Pos),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn rejects_truncation_at_any_cut() {
        let bytes = encode_segment(SegmentOrder::Spo, &sample(SegmentOrder::Spo));
        for cut in [0, 7, 15, 24, bytes.len() - 1] {
            let err = decode_segment("seg", &bytes[..cut], SegmentOrder::Spo).unwrap_err();
            assert!(
                matches!(
                    err,
                    PersistError::Truncated { .. } | PersistError::ChecksumMismatch { .. }
                ),
                "cut at {cut} gave {err}"
            );
        }
    }

    #[test]
    fn rejects_bitflip_via_checksum() {
        let mut bytes = encode_segment(SegmentOrder::Spo, &sample(SegmentOrder::Spo));
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            decode_segment("seg", &bytes, SegmentOrder::Spo),
            Err(PersistError::ChecksumMismatch { .. })
        ));
    }

    fn refix_checksum(bytes: &mut [u8]) {
        let len = bytes.len();
        let sum = fnv1a64(&bytes[..len - 8]);
        bytes[len - 8..].copy_from_slice(&sum.to_le_bytes());
    }

    #[test]
    fn rejects_unsorted_records_with_fixed_checksum() {
        // encode_segment debug-asserts sortedness, so build the image by
        // encoding sorted data and swapping records in the byte image.
        let sorted = sample(SegmentOrder::Spo);
        let mut bytes = encode_segment(SegmentOrder::Spo, &sorted);
        let records = 24;
        let (a, b) = (records, records + 12);
        let tmp: Vec<u8> = bytes[a..a + 12].to_vec();
        bytes.copy_within(b..b + 12, a);
        bytes[b..b + 12].copy_from_slice(&tmp);
        refix_checksum(&mut bytes);
        assert!(matches!(
            decode_segment("seg", &bytes, SegmentOrder::Spo),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn rejects_zero_term_id_with_fixed_checksum() {
        let mut bytes = encode_segment(SegmentOrder::Spo, &sample(SegmentOrder::Spo));
        let first_record = 24;
        bytes[first_record..first_record + 4].copy_from_slice(&0u32.to_le_bytes());
        refix_checksum(&mut bytes);
        assert!(matches!(
            decode_segment("seg", &bytes, SegmentOrder::Spo),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn rejects_count_payload_mismatch_with_fixed_checksum() {
        let mut bytes = encode_segment(SegmentOrder::Spo, &sample(SegmentOrder::Spo));
        // Claim one more triple than the payload holds.
        bytes[16..24].copy_from_slice(&5u64.to_le_bytes());
        refix_checksum(&mut bytes);
        assert!(matches!(
            decode_segment("seg", &bytes, SegmentOrder::Spo),
            Err(PersistError::Truncated { .. })
        ));
    }
}
