#![warn(missing_docs)]

//! The eLinda triple store substrate.
//!
//! The paper's eLinda endpoint "contains mirrors of the common knowledge
//! bases … in a Virtuoso SPARQL database" plus "specialized indexes to
//! accelerate heavy queries" (Section 4). This crate is that mirror:
//!
//! * [`TripleStore`] — an in-memory store with three sorted permutation
//!   indexes (SPO / POS / OSP) answering any triple pattern with a binary
//!   search plus a contiguous range scan;
//! * [`pattern`] — triple-pattern matching over the best index;
//! * [`schema`] — the class hierarchy (`rdfs:subClassOf`), instance sets,
//!   root detection (including root-less datasets such as LinkedGeoData);
//! * [`stats`] — the dataset statistics shown when eLinda first connects
//!   to an endpoint (triple count, class count, …);
//! * [`labels`] — `rdfs:label` lookup and the autocomplete class search;
//! * [`aggregates`] — the specialized `(class, property)` aggregate
//!   indexes targeted by the eLinda decomposer;
//! * [`shard`] — a subject-hash-partitioned snapshot of the store whose
//!   per-shard permutation indexes power intra-query parallel
//!   aggregation (map per shard, merge partials);
//! * [`dict`] / [`segment`] / [`persist`] — the persistent
//!   dictionary-encoded layout: the interner serialized as a term
//!   dictionary, the three permutations as checksummed segment files,
//!   committed in immutable numbered generations behind a `CURRENT`
//!   pointer;
//! * [`loader`] — a streaming N-Triples bulk loader building sorted
//!   runs directly (no per-line graph dedup), so restarts skip datagen;
//! * [`backend`] — the [`StoreBackend`] seam: the router, overlay, and
//!   compactor consume `Arc<TripleStore>` snapshots and never see
//!   whether they came from memory or disk;
//! * [`wal`] / [`wal_fault`] — the durable write-ahead log for the
//!   update path (checksummed length-prefixed records, group-commit
//!   fsync, segment rotation at compaction, torn-tail recovery) and its
//!   seeded durability-fault injector.
//!
//! Mutations bump an *epoch* counter; the HVS (in `elinda-endpoint`)
//! invalidates itself whenever the epoch moves, reproducing "the HVS is
//! cleared on any update to the eLinda knowledge bases".

pub mod aggregates;
pub mod backend;
pub mod dict;
pub mod labels;
pub mod loader;
pub mod pattern;
pub mod persist;
pub mod schema;
pub mod segment;
pub mod shard;
pub mod stats;
pub mod store;
pub mod test_dirs;
pub mod wal;
pub mod wal_fault;

pub use aggregates::{PropAgg, PropertyAggregates};
pub use backend::{MemoryBackend, PersistentBackend, StoreBackend};
pub use labels::LabelIndex;
pub use loader::{bulk_load_ntriples, bulk_load_ntriples_path, export_ntriples, BulkLoadReport};
pub use pattern::TriplePattern;
pub use persist::{
    load_current, load_generation, prune_generations, save_generation, PersistError,
};
pub use schema::ClassHierarchy;
pub use shard::{shard_of, Shard, ShardedTripleStore};
pub use stats::DatasetStats;
pub use store::TripleStore;
pub use wal::{
    TornReason, Wal, WalConfig, WalError, WalPos, WalRecord, WalRecovery, WalStats, WalSyncPolicy,
};
pub use wal_fault::{WalFaultInjector, WalFaultKind, WalFaultPlan};
