//! Deterministic durability-fault injection for the write-ahead log.
//!
//! Disks fail in characteristic ways: a crash mid-`write` leaves a torn
//! record, silent media corruption flips bits, `fsync` can report an
//! error, and the volume can run out of space. [`WalFaultPlan`] models
//! all four behind a single seed — the fault assigned to the `n`-th
//! append (or the `n`-th fsync) is a pure function of `(seed, n)`, the
//! same reproducibility contract the query-path `FaultPlan` in
//! `elinda-endpoint` established — and [`WalFaultInjector`] layers
//! scripted one-shot faults on top so the recovery tests can arm an
//! exact kill point ("tear append #3") instead of fishing for one.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// SplitMix64: the per-draw mixing function (same constants as the
/// query-path fault plan in `elinda-endpoint`).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One uniform draw in `[0, 1)` for operation `n` of stream `stream`.
fn unit_draw(seed: u64, stream: u64, n: u64) -> f64 {
    let x = splitmix64(seed ^ stream ^ n.wrapping_mul(0x9e37_79b9));
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// The durability failure modes the WAL can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WalFaultKind {
    /// The append writes only a prefix of the record and then "crashes":
    /// the writer is poisoned and the on-disk tail is torn.
    TornWrite,
    /// The append writes the full record but with one byte corrupted —
    /// silent media corruption that only the recovery checksum catches.
    BitFlip,
    /// The append fails up front with `ENOSPC`; nothing reaches the
    /// file and the writer stays usable (space may free up later).
    Enospc,
    /// The next fsync reports an error; the records it covered are not
    /// durable and the caller must not ack them.
    FsyncError,
}

impl WalFaultKind {
    /// Stable lowercase name, for logs and assertions.
    pub fn name(&self) -> &'static str {
        match self {
            WalFaultKind::TornWrite => "torn-write",
            WalFaultKind::BitFlip => "bit-flip",
            WalFaultKind::Enospc => "enospc",
            WalFaultKind::FsyncError => "fsync-error",
        }
    }
}

/// A seeded, deterministic durability-fault schedule.
///
/// Append faults (torn write / bit flip / ENOSPC) partition a single
/// uniform draw per append, checked in that fixed order; fsync errors
/// draw from an independent stream indexed by fsync number.
#[derive(Debug, Clone, Copy)]
pub struct WalFaultPlan {
    /// Seed of the per-operation draws.
    pub seed: u64,
    /// Probability an append tears mid-record.
    pub torn_write_rate: f64,
    /// Probability an append silently flips a byte.
    pub bit_flip_rate: f64,
    /// Probability an append fails with `ENOSPC`.
    pub enospc_rate: f64,
    /// Probability an fsync reports an error.
    pub fsync_error_rate: f64,
}

const APPEND_STREAM: u64 = 0xA99E_4D00;
const FSYNC_STREAM: u64 = 0xF5C4_1C00;

impl WalFaultPlan {
    /// No faults at all.
    pub fn none(seed: u64) -> Self {
        WalFaultPlan {
            seed,
            torn_write_rate: 0.0,
            bit_flip_rate: 0.0,
            enospc_rate: 0.0,
            fsync_error_rate: 0.0,
        }
    }

    /// A plan injecting only `kind` at `rate`.
    pub fn only(kind: WalFaultKind, rate: f64, seed: u64) -> Self {
        let mut plan = WalFaultPlan::none(seed);
        match kind {
            WalFaultKind::TornWrite => plan.torn_write_rate = rate,
            WalFaultKind::BitFlip => plan.bit_flip_rate = rate,
            WalFaultKind::Enospc => plan.enospc_rate = rate,
            WalFaultKind::FsyncError => plan.fsync_error_rate = rate,
        }
        plan
    }

    /// The fault (if any) scheduled for append number `n` — a pure
    /// function of `(seed, n)`.
    pub fn append_fault_at(&self, n: u64) -> Option<WalFaultKind> {
        let draw = unit_draw(self.seed, APPEND_STREAM, n);
        let mut edge = self.torn_write_rate;
        if draw < edge {
            return Some(WalFaultKind::TornWrite);
        }
        edge += self.bit_flip_rate;
        if draw < edge {
            return Some(WalFaultKind::BitFlip);
        }
        edge += self.enospc_rate;
        if draw < edge {
            return Some(WalFaultKind::Enospc);
        }
        None
    }

    /// Whether fsync number `n` is scheduled to fail — a pure function
    /// of `(seed, n)`.
    pub fn fsync_fault_at(&self, n: u64) -> bool {
        unit_draw(self.seed, FSYNC_STREAM, n) < self.fsync_error_rate
    }
}

/// Shared, thread-safe fault scheduler: numbers appends and fsyncs,
/// resolves the plan, and lets tests arm one-shot scripted faults at
/// exact operation indices (scripted faults win over the plan).
pub struct WalFaultInjector {
    plan: WalFaultPlan,
    next_append: AtomicU64,
    next_fsync: AtomicU64,
    injected: AtomicU64,
    scripted_appends: Mutex<BTreeMap<u64, WalFaultKind>>,
    scripted_fsyncs: Mutex<BTreeSet<u64>>,
}

impl WalFaultInjector {
    /// An injector for the plan.
    pub fn new(plan: WalFaultPlan) -> Self {
        WalFaultInjector {
            plan,
            next_append: AtomicU64::new(0),
            next_fsync: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            scripted_appends: Mutex::new(BTreeMap::new()),
            scripted_fsyncs: Mutex::new(BTreeSet::new()),
        }
    }

    /// An injector with no planned faults, for purely scripted use.
    pub fn scripted() -> Self {
        WalFaultInjector::new(WalFaultPlan::none(0))
    }

    /// The plan.
    pub fn plan(&self) -> &WalFaultPlan {
        &self.plan
    }

    /// Arm a one-shot append fault at append index `n` (0-based).
    pub fn arm_append(&self, n: u64, kind: WalFaultKind) {
        self.scripted_appends
            .lock()
            .expect("wal fault mutex poisoned")
            .insert(n, kind);
    }

    /// Arm a one-shot fsync error at fsync index `n` (0-based).
    pub fn arm_fsync(&self, n: u64) {
        self.scripted_fsyncs
            .lock()
            .expect("wal fault mutex poisoned")
            .insert(n);
    }

    /// The fault to inject for the next append, if any.
    pub fn next_append_fault(&self) -> Option<WalFaultKind> {
        let n = self.next_append.fetch_add(1, Ordering::Relaxed);
        let scripted = self
            .scripted_appends
            .lock()
            .expect("wal fault mutex poisoned")
            .remove(&n);
        let fault = scripted.or_else(|| {
            let planned = self.plan.append_fault_at(n);
            // `FsyncError` belongs to the fsync stream; the append
            // partition can never produce it.
            debug_assert_ne!(planned, Some(WalFaultKind::FsyncError));
            planned
        });
        if fault.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        fault
    }

    /// Whether the next fsync should report an error.
    pub fn next_fsync_fails(&self) -> bool {
        let n = self.next_fsync.fetch_add(1, Ordering::Relaxed);
        let scripted = self
            .scripted_fsyncs
            .lock()
            .expect("wal fault mutex poisoned")
            .remove(&n);
        let fails = scripted || self.plan.fsync_fault_at(n);
        if fails {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        fails
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic_and_partitioned() {
        let plan = WalFaultPlan {
            seed: 42,
            torn_write_rate: 0.2,
            bit_flip_rate: 0.2,
            enospc_rate: 0.2,
            fsync_error_rate: 0.3,
        };
        let first: Vec<_> = (0..256).map(|n| plan.append_fault_at(n)).collect();
        let second: Vec<_> = (0..256).map(|n| plan.append_fault_at(n)).collect();
        assert_eq!(first, second);
        // All three append kinds occur at these rates; fsync never does.
        for kind in [
            WalFaultKind::TornWrite,
            WalFaultKind::BitFlip,
            WalFaultKind::Enospc,
        ] {
            assert!(first.contains(&Some(kind)), "{kind:?} missing");
        }
        assert!(first.iter().all(|f| *f != Some(WalFaultKind::FsyncError)));
        assert!((0..256).any(|n| plan.fsync_fault_at(n)));
        assert!((0..256).any(|n| !plan.fsync_fault_at(n)));
    }

    #[test]
    fn rates_zero_means_no_faults() {
        let plan = WalFaultPlan::none(7);
        assert!((0..1000).all(|n| plan.append_fault_at(n).is_none()));
        assert!((0..1000).all(|n| !plan.fsync_fault_at(n)));
    }

    #[test]
    fn scripted_faults_fire_once_at_their_index() {
        let inj = WalFaultInjector::scripted();
        inj.arm_append(2, WalFaultKind::TornWrite);
        inj.arm_fsync(1);
        assert_eq!(inj.next_append_fault(), None);
        assert_eq!(inj.next_append_fault(), None);
        assert_eq!(inj.next_append_fault(), Some(WalFaultKind::TornWrite));
        assert_eq!(inj.next_append_fault(), None);
        assert!(!inj.next_fsync_fails());
        assert!(inj.next_fsync_fails());
        assert!(!inj.next_fsync_fails());
        assert_eq!(inj.injected(), 2);
    }

    #[test]
    fn only_plan_injects_just_that_kind() {
        let plan = WalFaultPlan::only(WalFaultKind::Enospc, 1.0, 3);
        assert_eq!(plan.append_fault_at(0), Some(WalFaultKind::Enospc));
        assert!(!plan.fsync_fault_at(0));
        let plan = WalFaultPlan::only(WalFaultKind::FsyncError, 1.0, 3);
        assert_eq!(plan.append_fault_at(0), None);
        assert!(plan.fsync_fault_at(0));
    }
}
