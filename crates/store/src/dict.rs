//! The term dictionary: the [`Interner`] serialized to bytes.
//!
//! Records are written **in interning order**, so decoding re-interns
//! every term into the same dense [`TermId`]s the saved store used.
//! That makes the ID-triple segment files meaningful without any
//! remapping, and makes a reloaded store bit-compatible with the one
//! that was saved (same ids, same sorted runs, same query results).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   "ELNDDICT"            8 bytes
//! version u32 = 1
//! terms   u64                   record count
//! records (tag u8, strings…)    tag 0 = IRI      (iri)
//!                               tag 1 = plain    (lexical)
//!                               tag 2 = lang     (lexical, tag)
//!                               tag 3 = typed    (lexical, datatype)
//! checksum u64                  FNV-1a 64 of everything above
//! ```
//!
//! Strings are `u32` length-prefixed UTF-8.

use crate::persist::{fnv1a64, put_str, put_u32, put_u64, ByteReader, PersistError};
use elinda_rdf::{Interner, Literal, LiteralKind, Term};

const MAGIC: &[u8; 8] = b"ELNDDICT";
const VERSION: u32 = 1;

const TAG_IRI: u8 = 0;
const TAG_PLAIN: u8 = 1;
const TAG_LANG: u8 = 2;
const TAG_TYPED: u8 = 3;

/// Serialize `interner` as a dictionary file image (including the
/// trailing checksum).
pub fn encode_dictionary(interner: &Interner) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + interner.len() * 32);
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, VERSION);
    put_u64(&mut out, interner.len() as u64);
    for (_, term) in interner.iter() {
        match term {
            Term::Iri(iri) => {
                out.push(TAG_IRI);
                put_str(&mut out, iri);
            }
            Term::Literal(lit) => match lit.kind() {
                LiteralKind::Plain => {
                    out.push(TAG_PLAIN);
                    put_str(&mut out, lit.lexical());
                }
                LiteralKind::Lang(tag) => {
                    out.push(TAG_LANG);
                    put_str(&mut out, lit.lexical());
                    put_str(&mut out, tag);
                }
                LiteralKind::Typed(dt) => {
                    out.push(TAG_TYPED);
                    put_str(&mut out, lit.lexical());
                    put_str(&mut out, dt);
                }
            },
        }
    }
    let sum = fnv1a64(&out);
    put_u64(&mut out, sum);
    out
}

/// Decode a dictionary file image back into an [`Interner`], verifying
/// magic, version, checksum, record count, and bijectivity (a duplicate
/// record would silently shift every later id, so it is corruption).
pub fn decode_dictionary(file: &str, bytes: &[u8]) -> Result<Interner, PersistError> {
    let payload = crate::persist::verify_checksummed(file, bytes)?;
    let mut r = ByteReader::new(file, payload);
    r.expect_magic(MAGIC)?;
    let version = r.read_u32()?;
    if version != VERSION {
        return Err(PersistError::UnsupportedVersion {
            file: file.to_string(),
            version,
        });
    }
    let count = r.read_u64()?;
    let count = usize::try_from(count)
        .map_err(|_| r.corrupt(format!("term count {count} exceeds addressable memory")))?;
    let mut interner = Interner::with_capacity(count);
    for n in 0..count {
        let tag = r.read_u8()?;
        let term = match tag {
            TAG_IRI => Term::iri(r.read_str()?),
            TAG_PLAIN => Term::Literal(Literal::plain(r.read_str()?)),
            TAG_LANG => {
                let lexical = r.read_str()?;
                let lang = r.read_str()?;
                Term::Literal(Literal::lang(lexical, lang))
            }
            TAG_TYPED => {
                let lexical = r.read_str()?;
                let dt = r.read_str()?;
                Term::Literal(Literal::typed(lexical, dt))
            }
            other => return Err(r.corrupt(format!("unknown term tag {other} in record {n}"))),
        };
        let id = interner.intern(term);
        if id.index() != n {
            return Err(r.corrupt(format!(
                "duplicate term record {n} (re-interned as id {})",
                id.raw()
            )));
        }
    }
    if r.remaining() != 0 {
        return Err(r.corrupt(format!(
            "{} trailing bytes after the last term record",
            r.remaining()
        )));
    }
    Ok(interner)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_interner() -> Interner {
        let mut i = Interner::new();
        i.intern(Term::iri("http://e/a"));
        i.intern(Term::blank("b0"));
        i.intern(Term::Literal(Literal::plain("plain \"quoted\" text")));
        i.intern(Term::Literal(Literal::lang("Philosoph", "de")));
        i.intern(Term::Literal(Literal::integer(42)));
        i.intern(Term::Literal(Literal::plain(""))); // empty lexical form
        i.intern(Term::iri("http://e/ünïcödé/道"));
        i
    }

    #[test]
    fn round_trip_preserves_ids_and_terms() {
        let original = sample_interner();
        let bytes = encode_dictionary(&original);
        let decoded = decode_dictionary("dict", &bytes).unwrap();
        assert_eq!(decoded.len(), original.len());
        for (id, term) in original.iter() {
            assert_eq!(decoded.resolve(id), term);
            assert_eq!(decoded.get(term), Some(id));
        }
    }

    #[test]
    fn empty_interner_round_trips() {
        let bytes = encode_dictionary(&Interner::new());
        assert!(decode_dictionary("dict", &bytes).unwrap().is_empty());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = encode_dictionary(&sample_interner());
        bytes[0] ^= 0xff;
        // Flipping a payload byte also breaks the checksum, which is
        // checked first.
        assert!(matches!(
            decode_dictionary("dict", &bytes),
            Err(PersistError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn rejects_truncation() {
        let bytes = encode_dictionary(&sample_interner());
        for cut in [0, 4, 12, bytes.len() / 2, bytes.len() - 1] {
            let err = decode_dictionary("dict", &bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    PersistError::Truncated { .. } | PersistError::ChecksumMismatch { .. }
                ),
                "cut at {cut} gave {err}"
            );
        }
    }

    #[test]
    fn rejects_unknown_tag_with_fixed_checksum() {
        let mut bytes = encode_dictionary(&sample_interner());
        // First record's tag byte sits right after magic+version+count.
        bytes[20] = 9;
        let len = bytes.len();
        let sum = fnv1a64(&bytes[..len - 8]);
        bytes[len - 8..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            decode_dictionary("dict", &bytes),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn rejects_duplicate_records() {
        // Hand-build a dictionary with the same IRI twice.
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, VERSION);
        put_u64(&mut out, 2);
        for _ in 0..2 {
            out.push(TAG_IRI);
            put_str(&mut out, "http://e/dup");
        }
        let sum = fnv1a64(&out);
        put_u64(&mut out, sum);
        let err = decode_dictionary("dict", &out).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt { .. }), "{err}");
    }
}
