//! The class hierarchy view over a store.
//!
//! eLinda's vertical exploration axis is `rdfs:subClassOf` (paper
//! Section 3.1): datasets that declare a hierarchy with `owl:Class` /
//! `rdfs:Class` and `rdfs:subClassOf` are "better explorable". This module
//! extracts that hierarchy once and serves:
//!
//! * direct and transitive subclass/superclass queries (with cycle
//!   tolerance — open data contains subclass cycles);
//! * instance sets and counts per class;
//! * root detection, including the LinkedGeoData case of a dataset with
//!   *no* root class (paper footnote 7);
//! * the declared-class list feeding the autocomplete search box.

use crate::store::TripleStore;
use elinda_rdf::fx::{FxHashMap, FxHashSet};
use elinda_rdf::{vocab, TermId};

/// An immutable snapshot of the class hierarchy of a store.
///
/// Built once per store epoch; rebuilding after updates is the caller's
/// responsibility (the `Explorer` in `elinda-core` does this).
#[derive(Debug, Clone)]
pub struct ClassHierarchy {
    /// class → direct subclasses (sorted).
    children: FxHashMap<TermId, Vec<TermId>>,
    /// class → direct superclasses (sorted).
    parents: FxHashMap<TermId, Vec<TermId>>,
    /// Every term that appears as a class: declared via `owl:Class` /
    /// `rdfs:Class`, used in `rdfs:subClassOf`, or used as an `rdf:type`
    /// object. Sorted.
    classes: Vec<TermId>,
    /// Terms explicitly declared as classes (`owl:Class` / `rdfs:Class`).
    declared: Vec<TermId>,
    /// Classes with no superclass, sorted (candidate roots).
    roots: Vec<TermId>,
    /// The id of `owl:Thing`, if present in the dataset.
    owl_thing: Option<TermId>,
    /// The id of `rdf:type`, if present.
    rdf_type: Option<TermId>,
}

impl ClassHierarchy {
    /// Extract the hierarchy from a store.
    pub fn build(store: &TripleStore) -> Self {
        let rdf_type = store.lookup_iri(vocab::rdf::TYPE);
        let sub_class_of = store.lookup_iri(vocab::rdfs::SUB_CLASS_OF);
        let owl_class = store.lookup_iri(vocab::owl::CLASS);
        let rdfs_class = store.lookup_iri(vocab::rdfs::CLASS);
        let owl_thing = store.lookup_iri(vocab::owl::THING);

        let mut children: FxHashMap<TermId, Vec<TermId>> = FxHashMap::default();
        let mut parents: FxHashMap<TermId, Vec<TermId>> = FxHashMap::default();
        let mut class_set: FxHashSet<TermId> = FxHashSet::default();

        if let Some(sco) = sub_class_of {
            for t in store.pos_range(sco, None) {
                children.entry(t.o).or_default().push(t.s);
                parents.entry(t.s).or_default().push(t.o);
                class_set.insert(t.s);
                class_set.insert(t.o);
            }
        }
        let mut declared = Vec::new();
        if let Some(ty) = rdf_type {
            for class_decl in [owl_class, rdfs_class].into_iter().flatten() {
                for t in store.pos_range(ty, Some(class_decl)) {
                    class_set.insert(t.s);
                    declared.push(t.s);
                }
            }
            // Every rdf:type object is a class in use.
            for t in store.pos_range(ty, None) {
                class_set.insert(t.o);
            }
        }
        declared.sort_unstable();
        declared.dedup();

        for v in children.values_mut() {
            v.sort_unstable();
            v.dedup();
        }
        for v in parents.values_mut() {
            v.sort_unstable();
            v.dedup();
        }

        let mut classes: Vec<TermId> = class_set.iter().copied().collect();
        classes.sort_unstable();

        // The schema meta-classes are classes *of classes*; they would
        // otherwise always surface as roots in datasets that declare their
        // classes (every `c a owl:Class` makes owl:Class a type object).
        let meta: Vec<TermId> = [
            owl_class,
            rdfs_class,
            store.lookup_iri(vocab::rdf::PROPERTY),
        ]
        .into_iter()
        .flatten()
        .collect();
        let mut roots: Vec<TermId> = classes
            .iter()
            .copied()
            .filter(|c| !parents.contains_key(c) && !meta.contains(c))
            .collect();
        roots.sort_unstable();

        ClassHierarchy {
            children,
            parents,
            classes,
            declared,
            roots,
            owl_thing,
            rdf_type,
        }
    }

    /// Direct subclasses of `class` (sorted; empty if none).
    pub fn direct_subclasses(&self, class: TermId) -> &[TermId] {
        self.children.get(&class).map_or(&[], Vec::as_slice)
    }

    /// Direct superclasses of `class` (sorted; empty if none).
    pub fn direct_superclasses(&self, class: TermId) -> &[TermId] {
        self.parents.get(&class).map_or(&[], Vec::as_slice)
    }

    /// All transitive subclasses of `class`, excluding `class` itself,
    /// sorted. Tolerates cycles.
    pub fn all_subclasses(&self, class: TermId) -> Vec<TermId> {
        let mut seen: FxHashSet<TermId> = FxHashSet::default();
        let mut stack: Vec<TermId> = self.direct_subclasses(class).to_vec();
        while let Some(c) = stack.pop() {
            if c != class && seen.insert(c) {
                stack.extend_from_slice(self.direct_subclasses(c));
            }
        }
        let mut out: Vec<TermId> = seen.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// All transitive superclasses of `class`, excluding `class` itself,
    /// sorted. Tolerates cycles.
    pub fn all_superclasses(&self, class: TermId) -> Vec<TermId> {
        let mut seen: FxHashSet<TermId> = FxHashSet::default();
        let mut stack: Vec<TermId> = self.direct_superclasses(class).to_vec();
        while let Some(c) = stack.pop() {
            if c != class && seen.insert(c) {
                stack.extend_from_slice(self.direct_superclasses(c));
            }
        }
        let mut out: Vec<TermId> = seen.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Number of direct subclasses (the pane's "direct subclasses" stat).
    pub fn direct_subclass_count(&self, class: TermId) -> usize {
        self.direct_subclasses(class).len()
    }

    /// Number of transitive subclasses (the pane's "total subclasses"
    /// stat — e.g. 277 for DBpedia's `Agent`).
    pub fn total_subclass_count(&self, class: TermId) -> usize {
        self.all_subclasses(class).len()
    }

    /// Direct instances of `class`: subjects with `(s, rdf:type, class)`,
    /// sorted and unique.
    pub fn instances(&self, store: &TripleStore, class: TermId) -> Vec<TermId> {
        let Some(ty) = self.rdf_type else {
            return Vec::new();
        };
        let mut out: Vec<TermId> = store.subjects_with(ty, class).collect();
        out.dedup(); // pos range is sorted by s for fixed (p, o)
        out
    }

    /// Number of direct instances, without materializing the set.
    pub fn instance_count(&self, store: &TripleStore, class: TermId) -> usize {
        let Some(ty) = self.rdf_type else { return 0 };
        store.pos_range(ty, Some(class)).len()
    }

    /// Whether `(entity, rdf:type, class)` is in the store — a binary
    /// search in the entity's `rdf:type` SPO run (sorted by object), so
    /// membership checks over a candidate frontier cost `O(log deg)` each.
    pub fn is_instance_of(&self, store: &TripleStore, entity: TermId, class: TermId) -> bool {
        let Some(ty) = self.rdf_type else {
            return false;
        };
        store
            .spo_range(entity, Some(ty))
            .binary_search_by(|t| t.o.cmp(&class))
            .is_ok()
    }

    /// Instances of `class` or any transitive subclass, sorted and unique.
    ///
    /// Datasets like DBpedia materialize transitive types, in which case
    /// this equals [`Self::instances`]; for non-materialized data this
    /// computes the union.
    pub fn instances_transitive(&self, store: &TripleStore, class: TermId) -> Vec<TermId> {
        let mut out = self.instances(store, class);
        for sub in self.all_subclasses(class) {
            out.extend(self.instances(store, sub));
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Classes of an instance: objects of `(s, rdf:type, ·)`, sorted.
    pub fn classes_of(&self, store: &TripleStore, instance: TermId) -> Vec<TermId> {
        let Some(ty) = self.rdf_type else {
            return Vec::new();
        };
        let mut out: Vec<TermId> = store.objects_of(instance, ty).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Every class in use (declared, in a subclass axiom, or an
    /// `rdf:type` object), sorted.
    pub fn classes(&self) -> &[TermId] {
        &self.classes
    }

    /// Classes explicitly declared via `owl:Class` / `rdfs:Class` — the
    /// population of the autocomplete search box (paper Section 3.2).
    pub fn declared_classes(&self) -> &[TermId] {
        &self.declared
    }

    /// Classes with no superclass.
    pub fn roots(&self) -> &[TermId] {
        &self.roots
    }

    /// The root class for the initial chart: `owl:Thing` when the dataset
    /// has it; otherwise `None` and the caller falls back to
    /// [`Self::roots`] (the LinkedGeoData case, paper footnote 7).
    pub fn owl_thing(&self) -> Option<TermId> {
        self.owl_thing
    }

    /// Top-level classes: direct subclasses of `owl:Thing` when present,
    /// otherwise all roots.
    pub fn top_level_classes(&self) -> Vec<TermId> {
        match self.owl_thing {
            Some(thing) => {
                let direct = self.direct_subclasses(thing);
                if direct.is_empty() {
                    // owl:Thing interned but never used as a superclass.
                    self.roots.iter().copied().filter(|&c| c != thing).collect()
                } else {
                    direct.to_vec()
                }
            }
            None => self.roots.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ONTO: &str = r#"
        @prefix ex: <http://e/> .
        @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
        @prefix owl: <http://www.w3.org/2002/07/owl#> .
        ex:Agent a owl:Class ; rdfs:subClassOf owl:Thing .
        ex:Person a owl:Class ; rdfs:subClassOf ex:Agent .
        ex:Philosopher a owl:Class ; rdfs:subClassOf ex:Person .
        ex:Politician a owl:Class ; rdfs:subClassOf ex:Person .
        ex:Place a owl:Class ; rdfs:subClassOf owl:Thing .
        ex:alice a ex:Person ; a ex:Agent ; a owl:Thing .
        ex:plato a ex:Philosopher ; a ex:Person ; a ex:Agent ; a owl:Thing .
        ex:athens a ex:Place ; a owl:Thing .
    "#;

    fn setup() -> (TripleStore, ClassHierarchy) {
        let store = TripleStore::from_turtle(ONTO).unwrap();
        let h = ClassHierarchy::build(&store);
        (store, h)
    }

    fn id(store: &TripleStore, local: &str) -> TermId {
        store.lookup_iri(&format!("http://e/{local}")).unwrap()
    }

    #[test]
    fn direct_and_transitive_subclasses() {
        let (store, h) = setup();
        let agent = id(&store, "Agent");
        let person = id(&store, "Person");
        assert_eq!(h.direct_subclasses(agent), &[person]);
        assert_eq!(h.direct_subclass_count(agent), 1);
        assert_eq!(h.total_subclass_count(agent), 3); // Person, Philosopher, Politician
        let thing = h.owl_thing().unwrap();
        assert_eq!(h.total_subclass_count(thing), 5);
    }

    #[test]
    fn superclasses() {
        let (store, h) = setup();
        let phil = id(&store, "Philosopher");
        let supers = h.all_superclasses(phil);
        assert_eq!(supers.len(), 3); // Person, Agent, owl:Thing
        assert!(supers.contains(&h.owl_thing().unwrap()));
    }

    #[test]
    fn instances_and_counts() {
        let (store, h) = setup();
        let person = id(&store, "Person");
        let inst = h.instances(&store, person);
        assert_eq!(inst.len(), 2); // alice, plato
        assert_eq!(h.instance_count(&store, person), 2);
        let phil = id(&store, "Philosopher");
        assert_eq!(h.instance_count(&store, phil), 1);
    }

    #[test]
    fn instances_transitive_unions_subclasses() {
        // Strip the materialized types: give bob only the leaf type.
        let store = TripleStore::from_turtle(
            r#"
            @prefix ex: <http://e/> .
            @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
            ex:B rdfs:subClassOf ex:A .
            ex:bob a ex:B .
            ex:ann a ex:A .
            "#,
        )
        .unwrap();
        let h = ClassHierarchy::build(&store);
        let a = store.lookup_iri("http://e/A").unwrap();
        assert_eq!(h.instances(&store, a).len(), 1);
        assert_eq!(h.instances_transitive(&store, a).len(), 2);
    }

    #[test]
    fn classes_of_instance() {
        let (store, h) = setup();
        let plato = id(&store, "plato");
        assert_eq!(h.classes_of(&store, plato).len(), 4);
    }

    #[test]
    fn declared_classes_feed_autocomplete() {
        let (store, h) = setup();
        assert_eq!(h.declared_classes().len(), 5);
        assert!(h.declared_classes().contains(&id(&store, "Philosopher")));
        // owl:Thing is used but not declared in this fixture.
        assert!(!h.declared_classes().contains(&h.owl_thing().unwrap()));
    }

    #[test]
    fn top_level_classes_under_owl_thing() {
        let (store, h) = setup();
        let tops = h.top_level_classes();
        assert_eq!(tops.len(), 2);
        assert!(tops.contains(&id(&store, "Agent")));
        assert!(tops.contains(&id(&store, "Place")));
    }

    #[test]
    fn rootless_dataset_falls_back_to_roots() {
        // LinkedGeoData-like: subclass links but no owl:Thing.
        let store = TripleStore::from_turtle(
            r#"
            @prefix ex: <http://e/> .
            @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
            ex:Amenity rdfs:subClassOf ex:Feature .
            ex:Shop rdfs:subClassOf ex:Feature .
            ex:Bakery rdfs:subClassOf ex:Shop .
            ex:x a ex:Bakery .
            "#,
        )
        .unwrap();
        let h = ClassHierarchy::build(&store);
        assert!(h.owl_thing().is_none());
        let feature = store.lookup_iri("http://e/Feature").unwrap();
        assert_eq!(h.top_level_classes(), vec![feature]);
    }

    #[test]
    fn cycles_do_not_hang() {
        let store = TripleStore::from_turtle(
            r#"
            @prefix ex: <http://e/> .
            @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
            ex:A rdfs:subClassOf ex:B .
            ex:B rdfs:subClassOf ex:A .
            "#,
        )
        .unwrap();
        let h = ClassHierarchy::build(&store);
        let a = store.lookup_iri("http://e/A").unwrap();
        let b = store.lookup_iri("http://e/B").unwrap();
        // Each sees the other; the cycle back to itself is excluded.
        assert_eq!(h.all_subclasses(a), vec![b]);
        assert!(h.all_superclasses(a).contains(&b));
        assert!(h.roots().is_empty());
    }

    #[test]
    fn empty_store() {
        let store = TripleStore::new();
        let h = ClassHierarchy::build(&store);
        assert!(h.classes().is_empty());
        assert!(h.roots().is_empty());
        assert!(h.top_level_classes().is_empty());
        assert!(h.owl_thing().is_none());
    }
}
