//! [`TripleStore`]: sorted-permutation-index triple storage.
//!
//! Three fully sorted arrays (SPO, POS, OSP) answer every triple-pattern
//! shape with one binary search and a contiguous scan, the classic layout
//! of RDF stores (and of Virtuoso's quad indexes, which the paper's
//! endpoint mirrors). Bulk load is sort-based; point inserts/removes are
//! `O(n)` memmoves, acceptable because eLinda workloads are read-heavy —
//! updates exist mainly to exercise HVS invalidation.

use elinda_rdf::{Graph, Interner, Term, TermId, Triple};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide source of store lineage identifiers. Every store built
/// from scratch (`new` / `from_graph`) gets a fresh id; clones keep the
/// id, so a clone-and-mutate chain (the novelty overlay's
/// copy-on-write views) forms one lineage with a monotone epoch.
static NEXT_STORE_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_store_id() -> u64 {
    NEXT_STORE_ID.fetch_add(1, Ordering::Relaxed)
}

/// An in-memory indexed RDF triple store.
#[derive(Debug, Clone)]
pub struct TripleStore {
    interner: Interner,
    /// Sorted by (s, p, o).
    spo: Vec<Triple>,
    /// Sorted by (p, o, s).
    pos: Vec<Triple>,
    /// Sorted by (o, s, p).
    osp: Vec<Triple>,
    /// Bumped on every successful mutation; drives HVS invalidation.
    epoch: u64,
    /// Lineage identity: snapshots built against a *different* store
    /// object (e.g. a reload via `from_graph`) must read as stale even
    /// if the epoch numbers happen to coincide.
    store_id: u64,
}

impl TripleStore {
    /// An empty store.
    pub fn new() -> Self {
        TripleStore {
            interner: Interner::new(),
            spo: Vec::new(),
            pos: Vec::new(),
            osp: Vec::new(),
            epoch: 0,
            store_id: fresh_store_id(),
        }
    }

    /// Bulk-load a [`Graph`]. Triples are deduplicated by the graph; here we
    /// only sort the three permutations.
    pub fn from_graph(graph: Graph) -> Self {
        let (interner, triples) = graph.into_parts();
        let mut spo = triples;
        let mut pos = spo.clone();
        let mut osp = spo.clone();
        spo.sort_unstable_by_key(Triple::spo);
        pos.sort_unstable_by_key(Triple::pos);
        osp.sort_unstable_by_key(Triple::osp);
        TripleStore {
            interner,
            spo,
            pos,
            osp,
            epoch: 0,
            store_id: fresh_store_id(),
        }
    }

    /// Assemble a store from already-built index parts: an interner and
    /// the three sorted, deduplicated permutations of one triple set.
    /// Used by the persistence loader ([`crate::persist`]) and the bulk
    /// loader ([`crate::loader`]), which produce the sorted runs
    /// themselves. The `epoch` is restored verbatim (a reloaded store
    /// continues its saved lineage's epoch count); the store id is
    /// fresh, so epoch-tagged snapshots from before a reload always
    /// read as stale.
    ///
    /// The permutations must be sorted by their respective keys and
    /// contain the same triples; debug builds assert this.
    pub fn from_index_parts(
        interner: Interner,
        spo: Vec<Triple>,
        pos: Vec<Triple>,
        osp: Vec<Triple>,
        epoch: u64,
    ) -> Self {
        debug_assert!(spo.windows(2).all(|w| w[0].spo() < w[1].spo()));
        debug_assert!(pos.windows(2).all(|w| w[0].pos() < w[1].pos()));
        debug_assert!(osp.windows(2).all(|w| w[0].osp() < w[1].osp()));
        debug_assert_eq!(spo.len(), pos.len());
        debug_assert_eq!(spo.len(), osp.len());
        TripleStore {
            interner,
            spo,
            pos,
            osp,
            epoch,
            store_id: fresh_store_id(),
        }
    }

    /// Parse and load an N-Triples document.
    pub fn from_ntriples(input: &str) -> Result<Self, elinda_rdf::RdfError> {
        Ok(Self::from_graph(elinda_rdf::ntriples::parse_document(
            input,
        )?))
    }

    /// Parse and load a Turtle document.
    pub fn from_turtle(input: &str) -> Result<Self, elinda_rdf::RdfError> {
        Ok(Self::from_graph(elinda_rdf::turtle::parse_document(input)?))
    }

    /// The term interner.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Intern a term (e.g. before issuing pattern queries with new IRIs).
    pub fn intern(&mut self, term: Term) -> TermId {
        self.interner.intern(term)
    }

    /// Resolve a term id.
    pub fn resolve(&self, id: TermId) -> &Term {
        self.interner.resolve(id)
    }

    /// Look up an IRI without interning.
    pub fn lookup_iri(&self, iri: &str) -> Option<TermId> {
        self.interner.get_iri(iri)
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// True if the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// The current epoch. Any mutation bumps it.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The store's lineage id: shared by clones (whose epochs continue
    /// this store's), distinct for stores built from scratch. Epoch
    /// comparisons are only meaningful within one lineage.
    pub fn store_id(&self) -> u64 {
        self.store_id
    }

    /// Bump the epoch without touching the data — a compaction point.
    /// Folding novelty into a new base does not change what the triples
    /// say, but every epoch-tagged snapshot and cache entry built on the
    /// pre-compaction view must demote, so the fold is made visible as a
    /// mutation. Returns the new epoch.
    pub fn bump_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// The SPO-sorted triple slice. The incremental evaluator treats this
    /// as "the first N triples, the next N triples, …" of the graph.
    pub fn spo_slice(&self) -> &[Triple] {
        &self.spo
    }

    /// The POS-sorted triple slice.
    pub fn pos_slice(&self) -> &[Triple] {
        &self.pos
    }

    /// The OSP-sorted triple slice.
    pub fn osp_slice(&self) -> &[Triple] {
        &self.osp
    }

    /// True if the triple is present.
    pub fn contains(&self, t: Triple) -> bool {
        self.spo.binary_search_by_key(&t.spo(), Triple::spo).is_ok()
    }

    /// Insert a triple of interned ids. Returns `true` (and bumps the
    /// epoch) if the triple was new. `O(n)`.
    pub fn insert(&mut self, s: TermId, p: TermId, o: TermId) -> bool {
        let t = Triple::new(s, p, o);
        let idx = match self.spo.binary_search_by_key(&t.spo(), Triple::spo) {
            Ok(_) => return false,
            Err(idx) => idx,
        };
        self.spo.insert(idx, t);
        let idx = self
            .pos
            .binary_search_by_key(&t.pos(), Triple::pos)
            .expect_err("triple absent from spo must be absent from pos");
        self.pos.insert(idx, t);
        let idx = self
            .osp
            .binary_search_by_key(&t.osp(), Triple::osp)
            .expect_err("triple absent from spo must be absent from osp");
        self.osp.insert(idx, t);
        self.epoch += 1;
        true
    }

    /// Intern three terms and insert the triple.
    pub fn insert_terms(&mut self, s: Term, p: Term, o: Term) -> bool {
        let s = self.interner.intern(s);
        let p = self.interner.intern(p);
        let o = self.interner.intern(o);
        self.insert(s, p, o)
    }

    /// Remove a triple. Returns `true` (and bumps the epoch) if it was
    /// present. `O(n)`.
    pub fn remove(&mut self, t: Triple) -> bool {
        let idx = match self.spo.binary_search_by_key(&t.spo(), Triple::spo) {
            Ok(idx) => idx,
            Err(_) => return false,
        };
        self.spo.remove(idx);
        let idx = self
            .pos
            .binary_search_by_key(&t.pos(), Triple::pos)
            .expect("triple present in spo must be present in pos");
        self.pos.remove(idx);
        let idx = self
            .osp
            .binary_search_by_key(&t.osp(), Triple::osp)
            .expect("triple present in spo must be present in osp");
        self.osp.remove(idx);
        self.epoch += 1;
        true
    }

    /// The contiguous SPO range for subject `s` (optionally narrowed by
    /// predicate `p`).
    pub fn spo_range(&self, s: TermId, p: Option<TermId>) -> &[Triple] {
        match p {
            None => range_by(&self.spo, |t| t.s.cmp(&s)),
            Some(p) => range_by(&self.spo, |t| t.s.cmp(&s).then(t.p.cmp(&p))),
        }
    }

    /// The contiguous POS range for predicate `p` (optionally narrowed by
    /// object `o`).
    pub fn pos_range(&self, p: TermId, o: Option<TermId>) -> &[Triple] {
        match o {
            None => range_by(&self.pos, |t| t.p.cmp(&p)),
            Some(o) => range_by(&self.pos, |t| t.p.cmp(&p).then(t.o.cmp(&o))),
        }
    }

    /// The contiguous OSP range for object `o` (optionally narrowed by
    /// subject `s`).
    pub fn osp_range(&self, o: TermId, s: Option<TermId>) -> &[Triple] {
        match s {
            None => range_by(&self.osp, |t| t.o.cmp(&o)),
            Some(s) => range_by(&self.osp, |t| t.o.cmp(&o).then(t.s.cmp(&s))),
        }
    }

    /// Objects `o` with `(s, p, o)` in the store, in sorted order (may
    /// contain duplicates only if the same object occurs under distinct
    /// triples, which dedup prevents — so: sorted and unique).
    pub fn objects_of(&self, s: TermId, p: TermId) -> impl Iterator<Item = TermId> + '_ {
        self.spo_range(s, Some(p)).iter().map(|t| t.o)
    }

    /// Subjects `s` with `(s, p, o)` in the store, sorted and unique.
    pub fn subjects_with(&self, p: TermId, o: TermId) -> impl Iterator<Item = TermId> + '_ {
        self.pos_range(p, Some(o)).iter().map(|t| t.s)
    }

    /// Distinct predicates in the store, sorted.
    pub fn predicates(&self) -> Vec<TermId> {
        let mut out = Vec::new();
        let mut last = None;
        for t in &self.pos {
            if last != Some(t.p) {
                out.push(t.p);
                last = Some(t.p);
            }
        }
        out
    }

    /// Distinct subjects, sorted.
    pub fn subjects(&self) -> Vec<TermId> {
        let mut out = Vec::new();
        let mut last = None;
        for t in &self.spo {
            if last != Some(t.s) {
                out.push(t.s);
                last = Some(t.s);
            }
        }
        out
    }
}

impl Default for TripleStore {
    fn default() -> Self {
        Self::new()
    }
}

/// Binary-search the maximal contiguous run where `cmp` returns `Equal`,
/// assuming `sorted` is ordered consistently with `cmp`. Shared with the
/// sharded view, whose per-shard permutations obey the same orderings.
pub(crate) fn range_by(
    sorted: &[Triple],
    cmp: impl Fn(&Triple) -> std::cmp::Ordering,
) -> &[Triple] {
    let start = sorted.partition_point(|t| cmp(t) == std::cmp::Ordering::Less);
    let end = start + sorted[start..].partition_point(|t| cmp(t) == std::cmp::Ordering::Equal);
    &sorted[start..end]
}

#[cfg(test)]
mod tests {
    use super::*;
    use elinda_rdf::vocab;

    fn sample() -> TripleStore {
        TripleStore::from_turtle(
            r#"
            @prefix ex: <http://e/> .
            @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
            ex:a a ex:C ; ex:p ex:b , ex:c ; rdfs:label "a" .
            ex:b a ex:C ; ex:p ex:c .
            ex:c a ex:D .
            "#,
        )
        .unwrap()
    }

    fn iri(store: &TripleStore, s: &str) -> TermId {
        store
            .lookup_iri(s)
            .unwrap_or_else(|| panic!("{s} not interned"))
    }

    #[test]
    fn from_graph_counts() {
        let s = sample();
        assert_eq!(s.len(), 7);
        assert!(!s.is_empty());
        assert_eq!(s.epoch(), 0);
    }

    #[test]
    fn permutations_hold_the_same_triples() {
        let s = sample();
        let mut a = s.spo_slice().to_vec();
        let mut b = s.pos_slice().to_vec();
        let mut c = s.osp_slice().to_vec();
        a.sort_unstable();
        b.sort_unstable();
        c.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn indexes_are_sorted() {
        let s = sample();
        assert!(s.spo_slice().windows(2).all(|w| w[0].spo() <= w[1].spo()));
        assert!(s.pos_slice().windows(2).all(|w| w[0].pos() <= w[1].pos()));
        assert!(s.osp_slice().windows(2).all(|w| w[0].osp() <= w[1].osp()));
    }

    #[test]
    fn spo_range_scans() {
        let s = sample();
        let a = iri(&s, "http://e/a");
        let p = iri(&s, "http://e/p");
        assert_eq!(s.spo_range(a, None).len(), 4);
        assert_eq!(s.spo_range(a, Some(p)).len(), 2);
        let objs: Vec<_> = s.objects_of(a, p).collect();
        assert_eq!(objs.len(), 2);
        assert!(objs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn pos_range_scans() {
        let s = sample();
        let ty = iri(&s, vocab::rdf::TYPE);
        let c = iri(&s, "http://e/C");
        assert_eq!(s.pos_range(ty, None).len(), 3);
        let subs: Vec<_> = s.subjects_with(ty, c).collect();
        assert_eq!(subs.len(), 2);
    }

    #[test]
    fn osp_range_scans() {
        let s = sample();
        let c = iri(&s, "http://e/c");
        // c is object of ex:p twice (from a and b).
        assert_eq!(s.osp_range(c, None).len(), 2);
        let a = iri(&s, "http://e/a");
        assert_eq!(s.osp_range(c, Some(a)).len(), 1);
    }

    #[test]
    fn contains_and_insert() {
        let mut s = sample();
        let t = s.spo_slice()[0];
        assert!(s.contains(t));
        assert!(!s.insert(t.s, t.p, t.o));
        assert_eq!(s.epoch(), 0);

        let x = s.intern(Term::iri("http://e/new"));
        let p = iri(&s, "http://e/p");
        assert!(s.insert(x, p, x));
        assert_eq!(s.epoch(), 1);
        assert_eq!(s.len(), 8);
        assert!(s.contains(Triple::new(x, p, x)));
        // All permutations stay sorted after insert.
        assert!(s.pos_slice().windows(2).all(|w| w[0].pos() <= w[1].pos()));
        assert!(s.osp_slice().windows(2).all(|w| w[0].osp() <= w[1].osp()));
    }

    #[test]
    fn remove_bumps_epoch_and_shrinks() {
        let mut s = sample();
        let t = s.spo_slice()[0];
        assert!(s.remove(t));
        assert!(!s.remove(t));
        assert_eq!(s.epoch(), 1);
        assert_eq!(s.len(), 6);
        assert!(!s.contains(t));
    }

    #[test]
    fn predicates_and_subjects_distinct_sorted() {
        let s = sample();
        let preds = s.predicates();
        assert_eq!(preds.len(), 3); // rdf:type, ex:p, rdfs:label
        assert!(preds.windows(2).all(|w| w[0] < w[1]));
        let subs = s.subjects();
        assert_eq!(subs.len(), 3); // a, b, c
    }

    #[test]
    fn empty_store_behaviour() {
        let s = TripleStore::new();
        assert!(s.is_empty());
        assert!(s.predicates().is_empty());
        assert!(s.subjects().is_empty());
    }

    #[test]
    fn range_on_absent_key_is_empty() {
        let mut s = sample();
        let ghost = s.intern(Term::iri("http://e/ghost"));
        assert!(s.spo_range(ghost, None).is_empty());
        assert!(s.pos_range(ghost, None).is_empty());
        assert!(s.osp_range(ghost, None).is_empty());
    }
}
