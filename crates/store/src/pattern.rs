//! Triple-pattern matching over the store's permutation indexes.
//!
//! A [`TriplePattern`] fixes any subset of `{s, p, o}`; [`TriplePattern::scan`]
//! picks the index whose sort order makes the bound positions a contiguous
//! range, then filters any residual position. This is the access-path layer
//! the SPARQL executor builds joins from.

use crate::store::TripleStore;
use elinda_rdf::{TermId, Triple};

/// A triple pattern: each position is either bound to a term or free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TriplePattern {
    /// Bound subject, or `None` for a free position.
    pub s: Option<TermId>,
    /// Bound predicate, or `None`.
    pub p: Option<TermId>,
    /// Bound object, or `None`.
    pub o: Option<TermId>,
}

impl TriplePattern {
    /// A pattern with all positions free (full scan).
    pub fn any() -> Self {
        TriplePattern {
            s: None,
            p: None,
            o: None,
        }
    }

    /// Construct a pattern.
    pub fn new(s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> Self {
        TriplePattern { s, p, o }
    }

    /// Number of bound positions.
    pub fn bound_count(&self) -> u8 {
        self.s.is_some() as u8 + self.p.is_some() as u8 + self.o.is_some() as u8
    }

    /// True if the triple matches every bound position.
    #[inline]
    pub fn matches(&self, t: Triple) -> bool {
        self.s.is_none_or(|s| s == t.s)
            && self.p.is_none_or(|p| p == t.p)
            && self.o.is_none_or(|o| o == t.o)
    }

    /// Iterate over all matching triples using the best index.
    ///
    /// Every pattern shape except `(free, p, free)`+`o`-residual and
    /// `(s, free, o)` is a pure range scan; the two exceptions scan the
    /// tightest available range and filter the residual position.
    pub fn scan<'a>(&self, store: &'a TripleStore) -> PatternIter<'a> {
        let (slice, residual): (&[Triple], Option<TriplePattern>) = match (self.s, self.p, self.o) {
            (Some(s), p, None) => (store.spo_range(s, p), None),
            (Some(s), Some(p), Some(o)) => (
                store.spo_range(s, Some(p)),
                Some(TriplePattern::new(None, None, Some(o))),
            ),
            (Some(s), None, Some(o)) => (store.osp_range(o, Some(s)), None),
            (None, Some(p), o) => (store.pos_range(p, o), None),
            (None, None, Some(o)) => (store.osp_range(o, None), None),
            (None, None, None) => (store.spo_slice(), None),
        };
        PatternIter {
            slice: slice.iter(),
            residual,
        }
    }

    /// Count matching triples. Exact-range shapes answer in `O(log n)`
    /// without iterating.
    pub fn count(&self, store: &TripleStore) -> usize {
        match (self.s, self.p, self.o) {
            (Some(s), p, None) => store.spo_range(s, p).len(),
            (Some(s), None, Some(o)) => store.osp_range(o, Some(s)).len(),
            (None, Some(p), o) => store.pos_range(p, o).len(),
            (None, None, Some(o)) => store.osp_range(o, None).len(),
            (None, None, None) => store.len(),
            (Some(_), Some(_), Some(_)) => self.scan(store).count(),
        }
    }
}

/// Iterator over triples matching a [`TriplePattern`].
pub struct PatternIter<'a> {
    slice: std::slice::Iter<'a, Triple>,
    residual: Option<TriplePattern>,
}

impl Iterator for PatternIter<'_> {
    type Item = Triple;

    fn next(&mut self) -> Option<Triple> {
        match self.residual {
            None => self.slice.next().copied(),
            Some(res) => self.slice.by_ref().copied().find(|t| res.matches(*t)),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let (_, upper) = self.slice.size_hint();
        if self.residual.is_none() {
            self.slice.size_hint()
        } else {
            (0, upper)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TripleStore {
        TripleStore::from_turtle(
            r#"
            @prefix ex: <http://e/> .
            ex:a ex:p ex:b .
            ex:a ex:p ex:c .
            ex:a ex:q ex:b .
            ex:b ex:p ex:c .
            ex:c ex:q ex:a .
            "#,
        )
        .unwrap()
    }

    fn id(store: &TripleStore, iri: &str) -> TermId {
        store.lookup_iri(&format!("http://e/{iri}")).unwrap()
    }

    fn collect(p: TriplePattern, s: &TripleStore) -> Vec<Triple> {
        p.scan(s).collect()
    }

    #[test]
    fn all_eight_shapes_agree_with_brute_force() {
        let store = sample();
        let a = id(&store, "a");
        let p = id(&store, "p");
        let b = id(&store, "b");
        let candidates: Vec<Option<TermId>> = vec![None, Some(a), Some(p), Some(b)];
        for s in &candidates {
            for pp in &candidates {
                for o in &candidates {
                    let pat = TriplePattern::new(*s, *pp, *o);
                    let mut via_index = collect(pat, &store);
                    via_index.sort_unstable();
                    let mut brute: Vec<Triple> = store
                        .spo_slice()
                        .iter()
                        .copied()
                        .filter(|t| pat.matches(*t))
                        .collect();
                    brute.sort_unstable();
                    assert_eq!(via_index, brute, "pattern {pat:?}");
                    assert_eq!(pat.count(&store), brute.len(), "count for {pat:?}");
                }
            }
        }
    }

    #[test]
    fn full_scan_returns_everything() {
        let store = sample();
        assert_eq!(collect(TriplePattern::any(), &store).len(), store.len());
    }

    #[test]
    fn bound_count() {
        let store = sample();
        let a = id(&store, "a");
        assert_eq!(TriplePattern::any().bound_count(), 0);
        assert_eq!(TriplePattern::new(Some(a), None, Some(a)).bound_count(), 2);
    }

    #[test]
    fn exact_triple_lookup() {
        let store = sample();
        let (a, p, b) = (id(&store, "a"), id(&store, "p"), id(&store, "b"));
        let pat = TriplePattern::new(Some(a), Some(p), Some(b));
        assert_eq!(collect(pat, &store).len(), 1);
        let pat = TriplePattern::new(Some(b), Some(p), Some(b));
        assert_eq!(collect(pat, &store).len(), 0);
    }
}
